#!/usr/bin/env bash
# Repo-wide quality gate: formatting, lints (warnings are errors), tests.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> crash-consistency explorer smoke (bounded matrix)"
cargo test -p bcp-core --test crash_consistency -q

echo "==> bcpctl scrub CI exit-code check"
cargo test --test bcpctl_cli -q scrub

echo "==> chaos-soak smoke (bounded, fixed seed, <60s)"
cargo test -p bcp-core --test chaos_soak -q smoke_bounded_soak

echo "==> cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo bench --no-run"
cargo bench --workspace --no-run

echo "==> bench_engine smoke (writes results/BENCH_engine.json)"
cargo run --release -p bcp-bench --bin bench_engine -- --smoke --out results/BENCH_engine.json

echo "==> coordinator smoke (4 concurrent jobs, fairness gate; writes results/BENCH_coordinator.json)"
cargo run --release -p bcp-bench --bin bench_coordinator -- --smoke --out results/BENCH_coordinator.json

echo "All checks passed."
