//! Monitoring and visualization (paper §5.3, Figs. 11–12): run a real
//! 32-rank 3D-parallel checkpoint save with the metrics system attached,
//! then render the per-rank saving-time heat map and the critical-path
//! rank's phase breakdown — **from the persisted `_telemetry.jsonl`
//! artifact the save left next to the checkpoint**, the same way `bcpctl
//! report` works on a dead job's directory.
//!
//! ```text
//! cargo run --release --example monitor_heatmap
//! ```

use bytecheckpoint::core::telemetry::read_step_telemetry;
use bytecheckpoint::monitor::analysis::{critical_path, phase_percentiles};
use bytecheckpoint::monitor::{heatmap, render_breakdown};
use bytecheckpoint::prelude::*;
use bytecheckpoint::storage::{ThrottleProfile, Throttled};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let par = Parallelism::new(2, 4, 4).unwrap(); // TP=2, DP=4, PP=4: 32 ranks
    let fw = Framework::Megatron { distributed_optimizer: true };

    // A scaled-down "HDFS": throttled so phase durations are visible and
    // proportional to bytes.
    let backend: DynBackend = Arc::new(Throttled::new(
        Arc::new(MemoryBackend::new()),
        ThrottleProfile {
            read_bps: 400e6,
            write_bps: 50e6,
            op_latency: Duration::from_micros(300),
        },
        "hdfs-sim",
    ));
    let registry = {
        let mut reg = BackendRegistry::new();
        reg.register(Scheme::Hdfs, backend.clone());
        Arc::new(reg)
    };

    println!("saving a {} checkpoint from 32 instrumented ranks...", par.describe());
    let world = CommWorld::new(32, Backend::Tree { gpus_per_host: 8, branching: 4 });
    let handles: Vec<_> = (0..32)
        .map(|rank| {
            let world = world.clone();
            let registry = registry.clone();
            std::thread::spawn(move || {
                // Telemetry is on by default: the save persists a
                // `_telemetry.jsonl` artifact next to the checkpoint.
                let ckpt = Checkpointer::builder(world.communicator(rank).unwrap())
                    .framework(fw)
                    .parallelism(par)
                    .registry(registry)
                    .build()
                    .unwrap();
                let mut state = build_train_state(&zoo::tiny_gpt_8l(), fw, par, rank, true);
                TrainerConfig::default().run(&mut state, 0, 2);
                // Dataloader holders (tp=0, pp=0) also upload token buffers
                // — the paper's Fig. 11 hot rows.
                let loader = if par.holds_dataloader_state(rank) {
                    let replicated = LoaderReplicatedState {
                        workers_per_rank: 2,
                        dp_size: par.dp,
                        sources: vec![DataSource { name: "web".into(), ratio: 1.0, seed: 3 }],
                        context_window: 4_000_000,
                    };
                    let coords = par.coords(rank).unwrap();
                    let mut dl = Dataloader::new(replicated.clone(), coords.dp);
                    // Accumulate a large token buffer (batch not yet full).
                    for _ in 0..2000 {
                        dl.poll();
                    }
                    // Materialize the real token payloads: this is what makes
                    // dataloader holders the Fig. 11 stragglers.
                    let mut shard = dl.shard_state();
                    for r in &mut shard.readers {
                        r.materialize_tokens();
                    }
                    Some((replicated, shard))
                } else {
                    None
                };
                let extra = ExtraState::new(rank as u64);
                let mut req = SaveRequest::new("hdfs://sim/monitored/step_100", &state, 100)
                    .with_extra(&extra);
                if let Some((r, s)) = loader.as_ref() {
                    req = req.with_loader(r, s);
                }
                ckpt.save(&req).expect("save").wait().expect("tail");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Everything below reads the *persisted* artifact back off storage —
    // no live hub required; `bcpctl report` runs the same queries.
    let doc = read_step_telemetry(&backend, "monitored/step_100", TELEMETRY_SAVE_FILE)
        .expect("artifact readable")
        .expect("save persisted telemetry");
    println!("artifact: {} rank lines, step {:?}", doc.ranks.len(), doc.step());

    // ---- Fig. 11: topology heat map of end-to-end save time. ----
    let by_rank = doc.total_by_rank("save/");
    let spec = heatmap::HeatmapSpec {
        rows: par.pp,
        cols: par.dp * par.tp,
        row_label: "pp stage",
        col_label: "dp*tp",
    };
    println!("\n{}", heatmap::render_heatmap(&spec, &by_rank));
    let stragglers = heatmap::stragglers(&by_rank, 1.3);
    println!("stragglers (>1.3x mean): {stragglers:?} — the dataloader holders (tp=0, pp=0)\n");

    // ---- Fig. 12: phase breakdown of the critical-path rank. ----
    let records = doc.all_records();
    if let Some(cp) = critical_path(&records, "save/") {
        println!(
            "critical path: rank {} at {:.3}s (median {:.3}s), dominated by {}",
            cp.rank,
            cp.total.as_secs_f64(),
            cp.median_total.as_secs_f64(),
            cp.dominant_phase
        );
        println!("{}", render_breakdown(cp.rank, &doc.breakdown_for_rank(cp.rank)));
    }

    // ---- Per-phase percentiles across all 32 ranks. ----
    for (phase, st) in phase_percentiles(&records) {
        println!(
            "{:<18} n={:<3} p50={:.3}s p95={:.3}s p99={:.3}s",
            phase,
            st.count,
            st.p50.as_secs_f64(),
            st.p95.as_secs_f64(),
            st.p99.as_secs_f64()
        );
    }

    // ---- Storage-side alerting (§5.3): flag pathologically slow I/Os. ----
    let slow = doc.slow_ios(50e6);
    println!("I/O records below 50 MB/s: {}", slow.len());
}
