//! Quickstart: genuinely train a small model data-parallel, checkpoint it,
//! "crash", resume bitwise, and keep training.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Two worker threads train an MLP with real backprop and Adam, averaging
//! gradients over the DP group. Checkpoints go to a real directory on disk
//! via `bytecheckpoint::save`; the resume is verified bit-exact.

use bytecheckpoint::model::mlp::{synthetic_sample, Mlp, MlpAdam};
use bytecheckpoint::model::states::TrainState;
use bytecheckpoint::prelude::*;
use std::sync::Arc;

fn batch(seed: u64, start: u64, n: u64, dim: usize) -> Vec<(Vec<f32>, f32)> {
    (start..start + n).map(|i| synthetic_sample(seed, i, dim)).collect()
}

fn main() {
    let dp = 2usize;
    let par = Parallelism::data_parallel(dp).unwrap();
    let ckpt_dir = std::env::temp_dir().join("bcp-quickstart");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let registry = {
        let disk: DynBackend = Arc::new(DiskBackend::new(&ckpt_dir).unwrap());
        let mut reg = BackendRegistry::new();
        reg.register(Scheme::File, disk);
        Arc::new(reg)
    };

    // ---- Phase 1: train 30 steps, checkpointing at step 20. ----
    println!("phase 1: training 2-way data-parallel, checkpoint at step 20");
    let world = CommWorld::new(dp, Backend::Flat);
    let mut handles = Vec::new();
    for rank in 0..dp {
        let world = world.clone();
        let registry = registry.clone();
        handles.push(std::thread::spawn(move || {
            let comm = world.communicator(rank).unwrap();
            let ckpt = Checkpointer::builder(comm.clone())
                .framework(Framework::Ddp)
                .parallelism(par)
                .registry(registry)
                .build()
                .unwrap();
            let mut mlp = Mlp::new(2, 16, 7);
            let adam = MlpAdam::default();
            for step in 0..30u64 {
                // Each rank trains on its own shard of the global batch.
                let b = batch(11, step * 64 + rank as u64 * 32, 32, 2);
                let loss = mlp.train_step(&b, adam, Some(&comm));
                if rank == 0 && step % 10 == 0 {
                    println!("  step {step:>3}: loss {loss:.5}");
                }
                if step == 20 {
                    let (model, optimizer) = mlp.to_state_dicts();
                    let state = TrainState { model, optimizer };
                    let ticket = ckpt
                        .save(&SaveRequest::new("file:///ckpt/step_20", &state, step))
                        .expect("save");
                    if rank == 0 {
                        println!("  checkpoint stall: {:?}", ticket.blocking);
                    }
                    ticket.wait().expect("save tail");
                }
            }
            mlp
        }));
    }
    let phase1: Vec<Mlp> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // ---- Phase 2: "crash" and resume from step 20; training must follow
    // the exact same trajectory. ----
    println!("phase 2: resuming from {} and replaying steps 21..30", ckpt_dir.display());
    let world = CommWorld::new(dp, Backend::Flat);
    let mut handles = Vec::new();
    for rank in 0..dp {
        let world = world.clone();
        let registry = registry.clone();
        handles.push(std::thread::spawn(move || {
            let comm = world.communicator(rank).unwrap();
            let ckpt = Checkpointer::builder(comm.clone())
                .framework(Framework::Ddp)
                .parallelism(par)
                .registry(registry)
                .build()
                .unwrap();
            let mut mlp = Mlp::new(2, 16, 999); // wrong init on purpose
            let (model, optimizer) = mlp.to_state_dicts();
            let mut state = TrainState { model, optimizer };
            ckpt.load(&mut LoadRequest::new("file:///ckpt/step_20", &mut state)).expect("load");
            mlp.load_state_dicts(&state.model, &state.optimizer);
            let adam = MlpAdam::default();
            for step in 21..30u64 {
                let b = batch(11, step * 64 + rank as u64 * 32, 32, 2);
                mlp.train_step(&b, adam, Some(&comm));
            }
            mlp
        }));
    }
    let phase2: Vec<Mlp> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    for rank in 0..dp {
        assert!(phase1[rank].state_eq(&phase2[rank]), "rank {rank}: resumed training diverged");
    }
    println!("resumed run is bitwise identical to the uninterrupted one ✓");
    println!("checkpoint files live under {}", ckpt_dir.display());
}
