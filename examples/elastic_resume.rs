//! Training resumption with a GPU-quota change (paper Fig. 2, scenario 1).
//!
//! ```text
//! cargo run --example elastic_resume
//! ```
//!
//! An 8-worker FSDP (ZeRO-3) job checkpoints model, optimizer, dataloader
//! and extra states; two machines are then "removed" and the job resumes on
//! 6 workers. ByteCheckpoint reshards everything at load time: flat tensor
//! shards are re-cut, the dataloader's token buffers are merged and
//! re-striped so no sample is lost or repeated, and the RNG/step state
//! carries over. GPU states are verified bitwise against an uninterrupted
//! reference run.

use bytecheckpoint::prelude::*;
use std::sync::Arc;

fn make_loader_replicated(dp: usize) -> LoaderReplicatedState {
    LoaderReplicatedState {
        workers_per_rank: 2,
        dp_size: dp,
        sources: vec![
            DataSource { name: "web".into(), ratio: 0.7, seed: 401 },
            DataSource { name: "code".into(), ratio: 0.3, seed: 402 },
        ],
        context_window: 8192,
    }
}

fn run_phase(
    par: Parallelism,
    registry: Arc<BackendRegistry>,
    f: impl Fn(usize, Checkpointer) + Send + Sync + 'static,
) {
    let world = CommWorld::new(par.world_size(), Backend::Tree { gpus_per_host: 4, branching: 2 });
    let f = Arc::new(f);
    let handles: Vec<_> = (0..par.world_size())
        .map(|rank| {
            let world = world.clone();
            let registry = registry.clone();
            let f = f.clone();
            std::thread::spawn(move || {
                let comm = world.communicator(rank).unwrap();
                let ckpt = Checkpointer::builder(comm)
                    .framework(Framework::Fsdp { zero3: true })
                    .parallelism(par)
                    .registry(registry)
                    .build()
                    .unwrap();
                f(rank, ckpt)
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

fn main() {
    let arch = zoo::tiny_gpt();
    let fw = Framework::Fsdp { zero3: true };
    let (par8, par6) =
        (Parallelism::data_parallel(8).unwrap(), Parallelism::data_parallel(6).unwrap());
    let registry = Arc::new(BackendRegistry::all_memory());
    let checkpoint_step = 12u64;

    // ---- Phase 1: 8 workers train and checkpoint. ----
    println!("phase 1: 8 workers, FSDP ZeRO-3, checkpoint at step {checkpoint_step}");
    let arch1 = arch.clone();
    run_phase(par8, registry.clone(), move |rank, ckpt| {
        let mut state = build_train_state(&arch1, fw, par8, rank, true);
        TrainerConfig::default().run(&mut state, 0, checkpoint_step);
        // Dataloader with some consumed data and non-empty buffers.
        let replicated = make_loader_replicated(8);
        let mut dl = Dataloader::new(replicated.clone(), rank);
        for _ in 0..5 {
            dl.next_batch();
        }
        dl.prefetch_states(); // §4.4: prepare a step early
        let (shard, stats) = {
            let mut dl = dl;
            dl.collect_states()
        };
        assert!(stats.prefetched);
        let mut extra = ExtraState::new(77);
        extra.step = checkpoint_step;
        let ticket = ckpt
            .save(
                &SaveRequest::new("mem://cluster/elastic/step_12", &state, checkpoint_step)
                    .with_loader(&replicated, &shard)
                    .with_extra(&extra),
            )
            .expect("save");
        if rank == 0 {
            println!("  stall {:?} (dataloader collection was prefetched)", ticket.blocking);
        }
        ticket.wait().expect("tail");
    });

    // ---- Phase 2: resume on 6 workers. ----
    println!("phase 2: two machines removed — resuming on 6 workers");
    let arch2 = arch.clone();
    run_phase(par6, registry, move |rank, ckpt| {
        let mut state = build_train_state(&arch2, fw, par6, rank, true);
        let out = ckpt
            .load(
                &mut LoadRequest::new("mem://cluster/elastic/step_12", &mut state)
                    .with_loader_target(LoaderTarget::new(6, 2, rank)),
            )
            .expect("load");
        // GPU states: bitwise identical to an uninterrupted 6-way run.
        let mut want = build_train_state(&arch2, fw, par6, rank, true);
        TrainerConfig::default().run(&mut want, 0, checkpoint_step);
        for (fqn, w) in want.model.entries.iter().chain(want.optimizer.entries.iter()) {
            let g = state
                .model
                .get(fqn)
                .or_else(|| state.optimizer.get(fqn))
                .unwrap_or_else(|| panic!("rank {rank}: missing {fqn}"));
            assert!(g.tensor.bitwise_eq(&w.tensor), "rank {rank}: {fqn} differs");
        }
        // Extra state carried over.
        assert_eq!(out.report.extra.expect("extra").step, checkpoint_step);
        // Dataloader resharded 8x2 -> 6x2 readers; buffers merged.
        let (replicated, shard) = out.loader.expect("loader state");
        assert_eq!(replicated.dp_size, 6);
        let mut dl = Dataloader::from_states(replicated, shard);
        let batch = dl.next_batch();
        if rank == 0 {
            println!(
                "  rank 0 resumed: first post-resume batch has {} samples, states verified bitwise ✓",
                batch.len()
            );
        }
        // Continue training from the restored step.
        TrainerConfig::default().run(&mut state, checkpoint_step, 4);
    });
    println!("elastic resumption complete: 8 → 6 workers with zero lost samples");
}
