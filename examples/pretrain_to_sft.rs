//! Cross-stage transition (paper Fig. 2, scenario 2): a 3D-parallel
//! Megatron-LM pre-training checkpoint is loaded — and automatically
//! resharded — into a smaller FSDP fine-tuning job. The unified
//! parallelism-agnostic representation also crosses *frameworks*.
//!
//! ```text
//! cargo run --example pretrain_to_sft
//! ```

use bytecheckpoint::prelude::*;
use std::sync::Arc;

fn main() {
    let arch = zoo::tiny_gpt_8l();
    let registry = Arc::new(BackendRegistry::all_memory());
    let pretrain_steps = 15u64;

    // ---- Pre-training: Megatron-LM, TP=2 × DP=2 × PP=2 on "8 GPUs". ----
    let fw_pre = Framework::Megatron { distributed_optimizer: true };
    let par_pre = Parallelism::new(2, 2, 2).unwrap();
    println!(
        "pre-training: {} under Megatron-LM {} ({} workers)",
        arch.name,
        par_pre.describe(),
        par_pre.world_size()
    );
    {
        let world = CommWorld::new(8, Backend::Tree { gpus_per_host: 8, branching: 4 });
        let registry = registry.clone();
        let arch = arch.clone();
        let handles: Vec<_> = (0..8)
            .map(|rank| {
                let world = world.clone();
                let registry = registry.clone();
                let arch = arch.clone();
                std::thread::spawn(move || {
                    let ckpt = Checkpointer::builder(world.communicator(rank).unwrap())
                        .framework(fw_pre)
                        .parallelism(par_pre)
                        .registry(registry)
                        .build()
                        .unwrap();
                    let mut state = build_train_state(&arch, fw_pre, par_pre, rank, true);
                    TrainerConfig::default().run(&mut state, 0, pretrain_steps);
                    ckpt.save(&SaveRequest::new(
                        "hdfs://cluster-a/pretrain/final",
                        &state,
                        pretrain_steps,
                    ))
                    .expect("save")
                    .wait()
                    .expect("tail");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
    println!("pre-training checkpoint committed at hdfs://cluster-a/pretrain/final");

    // ---- Fine-tuning: FSDP ZeRO-3 on 4 workers, loading the Megatron
    // checkpoint directly. ----
    let fw_sft = Framework::Fsdp { zero3: true };
    let par_sft = Parallelism::data_parallel(4).unwrap();
    println!(
        "fine-tuning: loading into FSDP {} ({} workers, different framework AND parallelism)",
        par_sft.describe(),
        par_sft.world_size()
    );
    let world = CommWorld::new(4, Backend::Flat);
    let handles: Vec<_> = (0..4)
        .map(|rank| {
            let world = world.clone();
            let registry = registry.clone();
            let arch = arch.clone();
            std::thread::spawn(move || {
                let ckpt = Checkpointer::builder(world.communicator(rank).unwrap())
                    .framework(fw_sft)
                    .parallelism(par_sft)
                    .registry(registry)
                    .build()
                    .unwrap();
                let mut state = build_train_state(&arch, fw_sft, par_sft, rank, true);
                ckpt.load(&mut LoadRequest::new("hdfs://cluster-a/pretrain/final", &mut state))
                    .expect("load-time resharding");
                // Verify: the FSDP flat shards must equal the reference
                // evolution of the logical tensors.
                let mut want = build_train_state(&arch, fw_sft, par_sft, rank, true);
                TrainerConfig::default().run(&mut want, 0, pretrain_steps);
                for (fqn, w) in &want.model.entries {
                    let g = state.model.get(fqn).expect("entry");
                    assert!(g.tensor.bitwise_eq(&w.tensor), "rank {rank}: {fqn}");
                }
                // SFT continues from the pre-trained weights.
                TrainerConfig { lr: 1e-3, ..TrainerConfig::default() }.run(
                    &mut state,
                    pretrain_steps,
                    5,
                );
                rank
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    println!(
        "Megatron(TP=2,DP=2,PP=2) -> FSDP(DP=4) reshard verified bitwise; SFT phase ran 5 steps ✓"
    );
}
