//! Evaluation dispatch (paper Fig. 2, scenario 3) and safetensors export
//! (Appendix F).
//!
//! ```text
//! cargo run --example eval_export
//! ```
//!
//! A TP×DP sharded training job checkpoints; an evaluation task then (a)
//! loads the model states into a single worker (model-only consolidation),
//! and (b) exports the checkpoint to the safetensors format for the
//! Hugging Face ecosystem — both without any offline resharding job.

use bytecheckpoint::core::export::{export_safetensors, parse_safetensors};
use bytecheckpoint::prelude::*;
use std::sync::Arc;

fn main() {
    let arch = zoo::tiny_gpt();
    let registry = Arc::new(BackendRegistry::all_memory());
    let fw = Framework::Megatron { distributed_optimizer: true };
    let par = Parallelism::new(2, 2, 1).unwrap();
    let steps = 8u64;

    // ---- Training job saves a sharded checkpoint. ----
    println!("training: {} under {} on {} workers", arch.name, par.describe(), par.world_size());
    let world = CommWorld::new(4, Backend::Flat);
    let handles: Vec<_> = (0..4)
        .map(|rank| {
            let world = world.clone();
            let registry = registry.clone();
            let arch = arch.clone();
            std::thread::spawn(move || {
                let ckpt = Checkpointer::builder(world.communicator(rank).unwrap())
                    .framework(fw)
                    .parallelism(par)
                    .registry(registry)
                    .build()
                    .unwrap();
                let mut state = build_train_state(&arch, fw, par, rank, true);
                TrainerConfig::default().run(&mut state, 0, steps);
                ckpt.save(&SaveRequest::new("mem://prod/eval-demo/step_8", &state, steps))
                    .expect("save")
                    .wait()
                    .expect("tail");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // ---- Evaluation task: a single worker pulls the model states. ----
    println!("evaluation: loading model states into 1 worker (automatic consolidation)");
    let eval_par = Parallelism::data_parallel(1).unwrap();
    let eval_world = CommWorld::new(1, Backend::Flat);
    let ckpt = Checkpointer::builder(eval_world.communicator(0).unwrap())
        .framework(Framework::Ddp)
        .parallelism(eval_par)
        .registry(registry.clone())
        .build()
        .unwrap();
    let mut eval_state = build_train_state(&arch, Framework::Ddp, eval_par, 0, true);
    // Evaluation only needs the model; drop the optimizer target entries.
    eval_state.optimizer.entries.clear();
    ckpt.load(&mut LoadRequest::new("mem://prod/eval-demo/step_8", &mut eval_state)).expect("load");
    let mut want = build_train_state(&arch, Framework::Ddp, eval_par, 0, true);
    TrainerConfig::default().run(&mut want, 0, steps);
    for (fqn, w) in &want.model.entries {
        assert!(eval_state.model.get(fqn).unwrap().tensor.bitwise_eq(&w.tensor), "{fqn}");
    }
    println!("  consolidated model verified bitwise ✓");

    // ---- Safetensors export for the open-source ecosystem. ----
    let uri = StorageUri::parse("mem://prod/eval-demo/step_8").unwrap();
    let backend = {
        // The registry resolves URIs internally; for direct export we grab
        // the same backend it would use.
        let reg = BackendRegistry::all_memory();
        let _ = reg; // (demo keeps a single shared memory backend)
        registry.resolve(&uri).unwrap()
    };
    let blob = export_safetensors(&backend, &uri.key, false).expect("export");
    println!("exported safetensors blob: {} bytes", blob.len());
    let tensors = parse_safetensors(&blob).expect("parse back");
    println!("  {} tensors in the safetensors file", tensors.len());
    let qkv = &tensors["layers.0.attn.qkv.weight"];
    assert_eq!(qkv.shape(), &[3 * arch.hidden, arch.hidden]);
    assert!(qkv.bitwise_eq(&want.model.get("layers.0.attn.qkv.weight").unwrap().tensor));
    assert!(!tensors.keys().any(|k| k.starts_with("optim.")), "model-only export");
    println!("  safetensors round-trip verified bitwise ✓");
}
