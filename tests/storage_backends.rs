//! Checkpointing against every storage backend family: real disk files,
//! the simulated HDFS (with its metadata machinery and tiering), throttled
//! NAS profiles, and failure-injected backends exercising the retry path.

mod common;

use bytecheckpoint::prelude::*;
use bytecheckpoint::storage::flaky::FailureMode;
use bytecheckpoint::storage::hdfs::{HdfsConfig, Tier};
use bytecheckpoint::storage::{FlakyBackend, StorageBackend, ThrottleProfile, Throttled};
use common::{assert_states_eq, reference_state, run_ranks};
use std::sync::Arc;
use std::time::Duration;

fn registry_for(scheme: Scheme, backend: DynBackend) -> Arc<BackendRegistry> {
    let mut reg = BackendRegistry::new();
    reg.register(scheme, backend);
    Arc::new(reg)
}

fn round_trip(path: &'static str, registry: Arc<BackendRegistry>) {
    let arch = zoo::tiny_gpt();
    let fw = Framework::Fsdp { zero3: true };
    let par = Parallelism::data_parallel(2).unwrap();
    run_ranks(par, fw, registry.clone(), move |rank, ckpt| {
        let state = reference_state(&zoo::tiny_gpt(), fw, par, rank, 2);
        ckpt.save(&SaveRequest::new(path, &state, 2)).unwrap().wait().unwrap();
    });
    run_ranks(par, fw, registry, move |rank, ckpt| {
        let mut state = build_train_state(&arch, fw, par, rank, true);
        ckpt.load(&mut LoadRequest::new(path, &mut state)).unwrap();
        assert_states_eq(&state, &reference_state(&arch, fw, par, rank, 2), rank);
    });
}

#[test]
fn disk_backend_end_to_end_with_real_files() {
    let dir = std::env::temp_dir().join(format!("bcp-it-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let disk: DynBackend = Arc::new(DiskBackend::new(&dir).unwrap());
    round_trip("file:///job/disk-ckpt", registry_for(Scheme::File, disk.clone()));
    // The files genuinely exist on disk with the expected layout.
    let files = disk.list("job/disk-ckpt/").unwrap();
    assert!(files.iter().any(|f| f.ends_with("global_metadata.json")), "{files:?}");
    assert!(files.iter().any(|f| f.ends_with("COMPLETE")));
    assert!(files.iter().any(|f| f.contains("model_")));
    assert!(files.iter().any(|f| f.contains("optim_")));
    // And the metadata file on disk is valid JSON our reader accepts.
    let meta_bytes = std::fs::read(dir.join("job/disk-ckpt/global_metadata.json")).unwrap();
    let meta = bytecheckpoint::core::metadata::GlobalMetadata::from_bytes(&meta_bytes).unwrap();
    meta.validate().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hdfs_backend_end_to_end_with_metadata_machinery() {
    let hdfs = Arc::new(HdfsBackend::new(HdfsConfig {
        meta_latency: Duration::from_micros(20),
        meta_qps_limit: None,
        parallel_concat: true,
        nnproxy_cache: true,
        cooldown_retention: Duration::from_millis(1),
    }));
    round_trip("hdfs://prod/job/hdfs-ckpt", registry_for(Scheme::Hdfs, hdfs.clone()));
    let (meta_ops, _, _, _) = hdfs.namenode_stats().snapshot();
    assert!(meta_ops > 0, "checkpointing must exercise the NameNode");
    // Cool-down: age everything, migrate to HDD, and verify the checkpoint
    // still loads through the preserved paths (§5.1).
    for f in hdfs.list("job/hdfs-ckpt/").unwrap() {
        hdfs.age_object(&f, Duration::from_secs(60)).unwrap();
    }
    let migrated = hdfs.cool_down();
    assert!(migrated > 0);
    assert_eq!(hdfs.tier_of("job/hdfs-ckpt/COMPLETE").unwrap(), Tier::Hdd);
    // Post-cool-down load works unchanged.
    let arch = zoo::tiny_gpt();
    let fw = Framework::Fsdp { zero3: true };
    let par = Parallelism::data_parallel(2).unwrap();
    run_ranks(par, fw, registry_for(Scheme::Hdfs, hdfs), move |rank, ckpt| {
        let mut state = build_train_state(&arch, fw, par, rank, true);
        ckpt.load(&mut LoadRequest::new("hdfs://prod/job/hdfs-ckpt", &mut state)).unwrap();
        assert_states_eq(&state, &reference_state(&arch, fw, par, rank, 2), rank);
    });
}

#[test]
fn nas_profile_backend_round_trip() {
    let nas: DynBackend = Arc::new(Throttled::new(
        Arc::new(MemoryBackend::new()),
        ThrottleProfile {
            read_bps: f64::INFINITY,
            write_bps: f64::INFINITY,
            op_latency: Duration::from_micros(50),
        },
        "nas",
    ));
    round_trip("nas://mount0/job/nas-ckpt", registry_for(Scheme::Nas, nas));
}

#[test]
fn flaky_storage_is_absorbed_by_retries() {
    let flaky: DynBackend = Arc::new(FlakyBackend::new(
        Arc::new(MemoryBackend::new()),
        FailureMode::All,
        2, // default retry policy allows 3 attempts
    ));
    let registry = registry_for(Scheme::Hdfs, flaky);
    let arch = zoo::tiny_gpt();
    let fw = Framework::Ddp;
    let par = Parallelism::data_parallel(2).unwrap();
    let failures: Vec<usize> = run_ranks(par, fw, registry.clone(), move |rank, ckpt| {
        let state = reference_state(&zoo::tiny_gpt(), fw, par, rank, 1);
        ckpt.save(&SaveRequest::new("hdfs://flaky/job/ckpt", &state, 1)).unwrap().wait().unwrap();
        ckpt.failures().len()
    });
    assert!(failures.iter().sum::<usize>() > 0, "failures must be logged");
    // Loads also retry through read failures.
    run_ranks(par, fw, registry, move |rank, ckpt| {
        let mut state = build_train_state(&arch, fw, par, rank, true);
        ckpt.load(&mut LoadRequest::new("hdfs://flaky/job/ckpt", &mut state)).unwrap();
        assert_states_eq(&state, &reference_state(&arch, fw, par, rank, 1), rank);
    });
}

#[test]
fn authority_routing_selects_clusters() {
    // Two HDFS "clusters"; the URI authority picks the right one.
    let a: DynBackend = Arc::new(MemoryBackend::new());
    let b: DynBackend = Arc::new(MemoryBackend::new());
    let mut reg = BackendRegistry::new();
    reg.register(Scheme::Hdfs, a.clone());
    reg.register_authority(Scheme::Hdfs, "cluster-b", b.clone());
    let registry = Arc::new(reg);
    let fw = Framework::Ddp;
    let par = Parallelism::data_parallel(1).unwrap();
    run_ranks(par, fw, registry, move |rank, ckpt| {
        let state = reference_state(&zoo::tiny_gpt(), fw, par, rank, 1);
        ckpt.save(&SaveRequest::new("hdfs://cluster-b/routed/ckpt", &state, 1))
            .unwrap()
            .wait()
            .unwrap();
    });
    assert!(b.exists("routed/ckpt/COMPLETE").unwrap());
    assert!(!a.exists("routed/ckpt/COMPLETE").unwrap());
}
