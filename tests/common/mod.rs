//! Shared helpers for the workspace-level integration tests.
//!
//! Each integration test binary compiles its own copy of this module, and
//! not every binary uses every helper.
#![allow(dead_code)]

use bytecheckpoint::prelude::*;
use std::sync::Arc;

/// Spawn one thread per rank with a `Checkpointer` each; join and collect.
pub fn run_ranks<F, T>(
    par: Parallelism,
    fw: Framework,
    registry: Arc<BackendRegistry>,
    f: F,
) -> Vec<T>
where
    F: Fn(usize, Checkpointer) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    let world = CommWorld::new(par.world_size(), Backend::Tree { gpus_per_host: 4, branching: 2 });
    let f = Arc::new(f);
    let handles: Vec<_> = (0..par.world_size())
        .map(|rank| {
            let world = world.clone();
            let registry = registry.clone();
            let f = f.clone();
            std::thread::spawn(move || {
                let comm = world.communicator(rank).unwrap();
                let ckpt = Checkpointer::builder(comm)
                    .framework(fw)
                    .parallelism(par)
                    .registry(registry)
                    .build()
                    .unwrap();
                f(rank, ckpt)
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// Reference (uninterrupted) state at `steps` for bitwise comparison.
pub fn reference_state(
    arch: &bytecheckpoint::model::TransformerConfig,
    fw: Framework,
    par: Parallelism,
    rank: usize,
    steps: u64,
) -> TrainState {
    let mut s = build_train_state(arch, fw, par, rank, true);
    TrainerConfig::default().run(&mut s, 0, steps);
    s
}

/// Assert two states agree bitwise on every entry the reference holds.
pub fn assert_states_eq(got: &TrainState, want: &TrainState, rank: usize) {
    for (name, got_d, want_d) in
        [("model", &got.model, &want.model), ("optimizer", &got.optimizer, &want.optimizer)]
    {
        assert_eq!(got_d.entries.len(), want_d.entries.len(), "rank {rank} {name} entry count");
        for (fqn, w) in &want_d.entries {
            let g = got_d.get(fqn).unwrap_or_else(|| panic!("rank {rank}: missing {fqn}"));
            assert!(g.tensor.bitwise_eq(&w.tensor), "rank {rank} {name} {fqn} differs");
        }
    }
}
