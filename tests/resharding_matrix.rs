//! The resharding correctness matrix: every (framework, parallelism) →
//! (framework, parallelism) transition the paper's scenarios imply, verified
//! bitwise through real save/load cycles — plus property-based random
//! transitions.

mod common;

use bytecheckpoint::prelude::*;
use common::{assert_states_eq, reference_state, run_ranks};
use std::sync::Arc;

fn transition(
    arch: bytecheckpoint::model::TransformerConfig,
    fw_a: Framework,
    par_a: Parallelism,
    fw_b: Framework,
    par_b: Parallelism,
) {
    let registry = Arc::new(BackendRegistry::all_memory());
    let steps = 2u64;
    let arch1 = arch.clone();
    run_ranks(par_a, fw_a, registry.clone(), move |rank, ckpt| {
        let state = reference_state(&arch1, fw_a, par_a, rank, steps);
        ckpt.save(&SaveRequest::new("mem://matrix/ckpt", &state, steps)).unwrap().wait().unwrap();
    });
    let arch2 = arch.clone();
    run_ranks(par_b, fw_b, registry, move |rank, ckpt| {
        let mut state = build_train_state(&arch2, fw_b, par_b, rank, true);
        ckpt.load(&mut LoadRequest::new("mem://matrix/ckpt", &mut state)).unwrap();
        assert_states_eq(&state, &reference_state(&arch2, fw_b, par_b, rank, steps), rank);
    });
}

const MEG: Framework = Framework::Megatron { distributed_optimizer: true };
const MEG_PLAIN: Framework = Framework::Megatron { distributed_optimizer: false };
const Z3: Framework = Framework::Fsdp { zero3: true };
const Z2: Framework = Framework::Fsdp { zero3: false };

fn p(tp: usize, dp: usize, pp: usize) -> Parallelism {
    Parallelism::new(tp, dp, pp).unwrap()
}

#[test]
fn megatron_tp_grow_and_shrink() {
    transition(zoo::tiny_gpt(), MEG, p(1, 2, 2), MEG, p(2, 2, 1));
    transition(zoo::tiny_gpt(), MEG, p(2, 2, 1), MEG, p(1, 2, 2));
    // TP 2 -> 4 across the attention/MLP split dims.
    transition(zoo::tiny_gpt(), MEG_PLAIN, p(2, 1, 1), MEG_PLAIN, p(4, 1, 1));
}

#[test]
fn megatron_pp_grow_and_shrink() {
    transition(zoo::tiny_gpt_8l(), MEG, p(1, 2, 2), MEG, p(1, 1, 4));
    transition(zoo::tiny_gpt_8l(), MEG, p(1, 1, 4), MEG, p(1, 2, 2));
    transition(zoo::tiny_gpt_8l(), MEG, p(1, 1, 8), MEG, p(1, 4, 2));
}

#[test]
fn megatron_dp_changes_with_distributed_optimizer() {
    // DP changes re-cut the FlatOfBox optimizer shards.
    transition(zoo::tiny_gpt(), MEG, p(2, 2, 1), MEG, p(2, 3, 1));
    transition(zoo::tiny_gpt(), MEG, p(2, 3, 1), MEG, p(2, 1, 1));
}

#[test]
fn fsdp_dp_elasticity() {
    transition(
        zoo::tiny_gpt(),
        Z3,
        Parallelism::data_parallel(5).unwrap(),
        Z3,
        Parallelism::data_parallel(3).unwrap(),
    );
    transition(
        zoo::tiny_gpt(),
        Z2,
        Parallelism::data_parallel(2).unwrap(),
        Z2,
        Parallelism::data_parallel(6).unwrap(),
    );
    transition(
        zoo::tiny_dit(),
        Z2,
        Parallelism::data_parallel(3).unwrap(),
        Z3,
        Parallelism::data_parallel(2).unwrap(),
    );
}

#[test]
fn cross_framework_all_pairs() {
    // Megatron -> FSDP (pre-training to fine-tuning).
    transition(zoo::tiny_gpt(), MEG, p(2, 1, 2), Z3, Parallelism::data_parallel(3).unwrap());
    // FSDP -> Megatron (scaling a fine-tuned model back up).
    transition(zoo::tiny_gpt(), Z3, Parallelism::data_parallel(4).unwrap(), MEG, p(2, 1, 2));
    // DDP -> Megatron and back.
    transition(
        zoo::tiny_gpt(),
        Framework::Ddp,
        Parallelism::data_parallel(2).unwrap(),
        MEG,
        p(2, 1, 2),
    );
    transition(
        zoo::tiny_gpt(),
        MEG,
        p(2, 2, 1),
        Framework::Ddp,
        Parallelism::data_parallel(1).unwrap(),
    );
    // veScale in and out.
    transition(
        zoo::tiny_gpt(),
        Framework::VeScale,
        p(2, 2, 1),
        Z3,
        Parallelism::data_parallel(2).unwrap(),
    );
}

#[test]
fn dtype_coverage_bf16() {
    transition(zoo::tiny_gpt_bf16(), Z3, Parallelism::data_parallel(3).unwrap(), MEG, p(2, 1, 2));
}

#[test]
fn randomized_transitions() {
    // Deterministic pseudo-random sweep over transition space (a fixed
    // seed keeps CI stable while covering odd degree combinations).
    let frameworks = [MEG, MEG_PLAIN, Z3, Z2, Framework::Ddp];
    let mut rng: u64 = 0xC0FFEE;
    let mut next = |m: usize| {
        rng = bytecheckpoint::tensor::fill::splitmix64(rng);
        (rng as usize) % m
    };
    for _ in 0..6 {
        let fw_a = frameworks[next(frameworks.len())];
        let fw_b = frameworks[next(frameworks.len())];
        let par_of = |fw: Framework, n: &mut dyn FnMut(usize) -> usize| match fw {
            Framework::Megatron { .. } => {
                let tp = [1, 2][n(2)];
                let pp = [1, 2, 4][n(3)];
                p(tp, 1 + n(3), pp)
            }
            _ => Parallelism::data_parallel(1 + n(5)).unwrap(),
        };
        let pa = par_of(fw_a, &mut next);
        let pb = par_of(fw_b, &mut next);
        // 8-layer tiny model divides evenly under every pp above.
        transition(zoo::tiny_gpt_8l(), fw_a, pa, fw_b, pb);
    }
}

#[test]
fn moe_expert_parallel_resharding() {
    // Appendix A's MoE scenario: checkpoints saved under one expert-parallel
    // degree load into another (experts re-cut along dim 0), with the fp32
    // router replicated — prev_tp=2 -> target_tp=4 and back down to 1.
    transition(zoo::tiny_moe(), MEG, p(2, 2, 1), MEG, p(4, 1, 1));
    transition(zoo::tiny_moe(), MEG, p(4, 1, 1), MEG, p(1, 2, 2));
    // MoE checkpoints also cross frameworks (fine-tune the experts on FSDP).
    transition(zoo::tiny_moe(), MEG, p(2, 1, 2), Z3, Parallelism::data_parallel(3).unwrap());
}

#[test]
fn moe_router_stays_fp32_and_replicated() {
    let arch = zoo::tiny_moe();
    let par = p(2, 1, 1);
    let state = build_train_state(&arch, MEG, par, 0, false);
    let router = state.model.get("layers.0.moe.router.weight").expect("router");
    assert_eq!(router.dtype, bytecheckpoint::tensor::DType::F32);
    assert_eq!(router.spec, ShardSpec::Replicated);
    // Experts split along dim 0 across the model-parallel group.
    let experts = state.model.get("layers.0.moe.experts.up.weight").expect("experts");
    let (off, len) = experts.spec.grid_box(&experts.global_shape).unwrap();
    assert_eq!(len[0], arch.num_experts / 2);
    assert_eq!(off[0], 0);
}
