//! Failure injection across the stack: worker death mid-save, torn
//! checkpoints, corrupted storage files — every case must surface a clean
//! error (never silent corruption), and previously committed checkpoints
//! must stay loadable (Appendix B's integrity guarantee).

mod common;

use bytecheckpoint::core::metadata::GlobalMetadata;
use bytecheckpoint::prelude::*;
use common::{assert_states_eq, reference_state, run_ranks};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn worker_death_during_save_leaves_no_committed_checkpoint() {
    let arch = zoo::tiny_gpt();
    let fw = Framework::Ddp;
    let par = Parallelism::data_parallel(3).unwrap();
    let mem: DynBackend = Arc::new(MemoryBackend::new());
    let registry = {
        let mut reg = BackendRegistry::new();
        reg.register(Scheme::Memory, mem.clone());
        Arc::new(reg)
    };

    // A good checkpoint first.
    let arch_c = arch.clone();
    run_ranks(par, fw, registry.clone(), move |rank, ckpt| {
        let state = reference_state(&arch_c, fw, par, rank, 1);
        ckpt.save(&SaveRequest::new("mem://x/j/good", &state, 1)).unwrap().wait().unwrap();
    });

    // Now a save where rank 2 "dies" before participating: the survivors'
    // barrier aborts and nothing is committed.
    let world = CommWorld::with_timeout(3, Backend::Flat, Duration::from_secs(5));
    let mut handles = Vec::new();
    for rank in 0..2 {
        // rank 2 never starts
        let world = world.clone();
        let registry = registry.clone();
        let arch = arch.clone();
        handles.push(std::thread::spawn(move || {
            let comm = world.communicator(rank).unwrap();
            let ckpt = Checkpointer::builder(comm)
                .framework(fw)
                .parallelism(par)
                .registry(registry)
                .build()
                .unwrap();
            let state = reference_state(&arch, fw, par, rank, 2);
            let result =
                ckpt.save(&SaveRequest::new("mem://x/j/torn", &state, 2)).and_then(|t| t.wait());
            result.err().map(|e| e.to_string())
        }));
    }
    world.inject_failure(2);
    for h in handles {
        let err = h.join().unwrap().expect("save must fail when a peer dies");
        assert!(err.contains("peer") || err.contains("timed out"), "{err}");
    }
    // The torn attempt never committed; the good checkpoint still loads.
    assert!(!mem.exists("j/torn/COMPLETE").unwrap());
    let arch_c = arch.clone();
    run_ranks(par, fw, registry, move |rank, ckpt| {
        let mut state = build_train_state(&arch_c, fw, par, rank, true);
        ckpt.load(&mut LoadRequest::new("mem://x/j/good", &mut state)).unwrap();
        assert_states_eq(&state, &reference_state(&arch_c, fw, par, rank, 1), rank);
    });
}

#[test]
fn corrupted_storage_file_is_detected_at_load() {
    let arch = zoo::tiny_gpt();
    let fw = Framework::Ddp;
    let par = Parallelism::data_parallel(1).unwrap();
    let mem: DynBackend = Arc::new(MemoryBackend::new());
    let registry = {
        let mut reg = BackendRegistry::new();
        reg.register(Scheme::Memory, mem.clone());
        Arc::new(reg)
    };
    let arch_c = arch.clone();
    run_ranks(par, fw, registry.clone(), move |rank, ckpt| {
        let state = reference_state(&arch_c, fw, par, rank, 1);
        ckpt.save(&SaveRequest::new("mem://x/j/c", &state, 1)).unwrap().wait().unwrap();
    });
    // Corrupt the metadata JSON: load must fail loudly.
    let original_meta = mem.read("j/c/global_metadata.json").unwrap();
    mem.write("j/c/global_metadata.json", bytes::Bytes::from_static(b"{broken")).unwrap();
    let arch_c = arch.clone();
    let errs = run_ranks(par, fw, registry.clone(), move |rank, ckpt| {
        let mut state = build_train_state(&arch_c, fw, par, rank, true);
        ckpt.load(&mut LoadRequest::new("mem://x/j/c", &mut state)).err().map(|e| e.to_string())
    });
    assert!(errs[0].as_ref().unwrap().contains("metadata parse error"));

    // Restore metadata but truncate a tensor file: ranged reads go out of
    // bounds -> storage error, not silent zeros.
    mem.write("j/c/global_metadata.json", original_meta).unwrap();
    let file = mem.read("j/c/model_0.bin").unwrap();
    mem.write("j/c/model_0.bin", file.slice(0..file.len() / 2)).unwrap();
    let arch_c = arch.clone();
    let errs = run_ranks(par, fw, registry, move |rank, ckpt| {
        let mut state = build_train_state(&arch_c, fw, par, rank, true);
        ckpt.load(&mut LoadRequest::new("mem://x/j/c", &mut state)).err().map(|e| e.to_string())
    });
    assert!(errs[0].is_some(), "truncated file must fail the load");
}

#[test]
fn metadata_tampering_is_caught_by_validation() {
    let arch = zoo::tiny_gpt();
    let fw = Framework::Ddp;
    let par = Parallelism::data_parallel(1).unwrap();
    let mem: DynBackend = Arc::new(MemoryBackend::new());
    let registry = {
        let mut reg = BackendRegistry::new();
        reg.register(Scheme::Memory, mem.clone());
        Arc::new(reg)
    };
    let arch_c = arch.clone();
    run_ranks(par, fw, registry.clone(), move |rank, ckpt| {
        let state = reference_state(&arch_c, fw, par, rank, 1);
        ckpt.save(&SaveRequest::new("mem://x/j/t", &state, 1)).unwrap().wait().unwrap();
    });
    // Tamper: inflate one shard's byte length so it no longer matches its
    // element count — validate() must reject.
    let mut meta =
        GlobalMetadata::from_bytes(&mem.read("j/t/global_metadata.json").unwrap()).unwrap();
    let first = meta.tensor_map.values_mut().next().unwrap();
    first[0].byte.length += 4;
    mem.write("j/t/global_metadata.json", bytes::Bytes::from(meta.to_bytes())).unwrap();
    let arch_c = arch.clone();
    let errs = run_ranks(par, fw, registry, move |rank, ckpt| {
        let mut state = build_train_state(&arch_c, fw, par, rank, true);
        ckpt.load(&mut LoadRequest::new("mem://x/j/t", &mut state)).err().map(|e| e.to_string())
    });
    assert!(errs[0].as_ref().unwrap().contains("byte length"), "{errs:?}");
}

#[test]
fn frame_level_crc_catches_bit_flips() {
    // Direct frame-level recovery check: decode_frames detects a flipped
    // payload bit that ranged loads wouldn't notice.
    let arch = zoo::tiny_gpt();
    let fw = Framework::Ddp;
    let par = Parallelism::data_parallel(1).unwrap();
    let mem: DynBackend = Arc::new(MemoryBackend::new());
    let registry = {
        let mut reg = BackendRegistry::new();
        reg.register(Scheme::Memory, mem.clone());
        Arc::new(reg)
    };
    let arch_c = arch.clone();
    run_ranks(par, fw, registry, move |rank, ckpt| {
        let state = reference_state(&arch_c, fw, par, rank, 1);
        ckpt.save(&SaveRequest::new("mem://x/j/f", &state, 1)).unwrap().wait().unwrap();
    });
    let clean = mem.read("j/f/model_0.bin").unwrap();
    assert!(bytecheckpoint::core::format::decode_frames(&clean).is_ok());
    let mut flipped = clean.to_vec();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    let err = bytecheckpoint::core::format::decode_frames(&bytes::Bytes::from(flipped));
    assert!(err.is_err(), "bit flip must fail CRC verification");
}
