//! The full LFM development pipeline of paper Fig. 1 / Fig. 2, end to end:
//! pre-training (Megatron 3D) → elastic resumption (quota change) →
//! cross-stage SFT (FSDP, fewer GPUs) → evaluation (single worker) →
//! safetensors export — one checkpoint lineage, every hop resharded at load
//! time and verified bitwise, with dataloader and extra states carried
//! through the training hops.

mod common;

use bytecheckpoint::core::export::{export_safetensors, parse_safetensors};
use bytecheckpoint::prelude::*;
use common::{assert_states_eq, reference_state, run_ranks};
use std::sync::Arc;

fn loader_replicated(dp: usize) -> LoaderReplicatedState {
    LoaderReplicatedState {
        workers_per_rank: 2,
        dp_size: dp,
        sources: vec![
            DataSource { name: "web".into(), ratio: 0.5, seed: 1 },
            DataSource { name: "code".into(), ratio: 0.3, seed: 2 },
            DataSource { name: "math".into(), ratio: 0.2, seed: 3 },
        ],
        context_window: 8192,
    }
}

#[test]
fn pretrain_resume_sft_eval_export() {
    let arch = zoo::tiny_gpt_8l();
    let registry = Arc::new(BackendRegistry::all_memory());

    // ---- Stage 1: pre-training, Megatron TP=2 DP=2 PP=2 (8 workers). ----
    let fw1 = Framework::Megatron { distributed_optimizer: true };
    let par1 = Parallelism::new(2, 2, 2).unwrap();
    let s1_steps = 10u64;
    let arch_c = arch.clone();
    run_ranks(par1, fw1, registry.clone(), move |rank, ckpt| {
        let state = reference_state(&arch_c, fw1, par1, rank, s1_steps);
        let loader = if par1.holds_dataloader_state(rank) {
            let coords = par1.coords(rank).unwrap();
            let rep = loader_replicated(par1.dp);
            let mut dl = Dataloader::new(rep.clone(), coords.dp);
            for _ in 0..6 {
                dl.next_batch();
            }
            Some((rep, dl.shard_state()))
        } else {
            None
        };
        let mut extra = ExtraState::new(42);
        extra.step = s1_steps;
        let mut req = SaveRequest::new("hdfs://prod/lineage/pretrain_10", &state, s1_steps)
            .with_extra(&extra);
        if let Some((r, s)) = loader.as_ref() {
            req = req.with_loader(r, s);
        }
        ckpt.save(&req).unwrap().wait().unwrap();
    });

    // ---- Stage 2: quota change — resume on 6 workers, TP=1 DP=3 PP=2. ----
    let par2 = Parallelism::new(1, 3, 2).unwrap();
    let s2_steps = 16u64;
    let arch_c = arch.clone();
    run_ranks(par2, fw1, registry.clone(), move |rank, ckpt| {
        let mut state = build_train_state(&arch_c, fw1, par2, rank, true);
        let coords = par2.coords(rank).unwrap();
        let loader_target = par2.holds_dataloader_state(rank).then_some(LoaderTarget {
            dp_size: par2.dp,
            workers_per_rank: 2,
            my_dp_rank: coords.dp,
        });
        let out = ckpt
            .load(&mut LoadRequest {
                location: "hdfs://prod/lineage/pretrain_10".into(),
                state: &mut state,
                loader_target,
            })
            .unwrap();
        assert_states_eq(&state, &reference_state(&arch_c, fw1, par2, rank, s1_steps), rank);
        assert_eq!(out.report.extra.as_ref().unwrap().step, s1_steps);
        if let Some((rep, shard)) = out.loader {
            assert_eq!(rep.dp_size, 3);
            let mut dl = Dataloader::from_states(rep, shard);
            dl.next_batch(); // resumed loader produces data
        }
        // Continue pre-training, then checkpoint again.
        TrainerConfig::default().run(&mut state, s1_steps, s2_steps - s1_steps);
        let mut extra = ExtraState::new(42);
        extra.step = s2_steps;
        ckpt.save(
            &SaveRequest::new("hdfs://prod/lineage/pretrain_16", &state, s2_steps)
                .with_extra(&extra),
        )
        .unwrap()
        .wait()
        .unwrap();
    });

    // ---- Stage 3: cross-stage SFT — FSDP ZeRO-3 on 4 workers. ----
    let fw3 = Framework::Fsdp { zero3: true };
    let par3 = Parallelism::data_parallel(4).unwrap();
    let s3_steps = 20u64;
    let arch_c = arch.clone();
    run_ranks(par3, fw3, registry.clone(), move |rank, ckpt| {
        let mut state = build_train_state(&arch_c, fw3, par3, rank, true);
        ckpt.load(&mut LoadRequest::new("hdfs://prod/lineage/pretrain_16", &mut state)).unwrap();
        assert_states_eq(&state, &reference_state(&arch_c, fw3, par3, rank, s2_steps), rank);
        TrainerConfig::default().run(&mut state, s2_steps, s3_steps - s2_steps);
        ckpt.save(&SaveRequest::new("hdfs://prod/lineage/sft_20", &state, s3_steps))
            .unwrap()
            .wait()
            .unwrap();
    });

    // ---- Stage 4: evaluation — a single worker pulls the SFT model. ----
    let par4 = Parallelism::data_parallel(1).unwrap();
    let arch_c = arch.clone();
    run_ranks(par4, Framework::Ddp, registry.clone(), move |rank, ckpt| {
        let mut state = build_train_state(&arch_c, Framework::Ddp, par4, rank, true);
        state.optimizer.entries.clear(); // eval needs the model only
        ckpt.load(&mut LoadRequest::new("hdfs://prod/lineage/sft_20", &mut state)).unwrap();
        let want = reference_state(&arch_c, Framework::Ddp, par4, rank, s3_steps);
        for (fqn, w) in &want.model.entries {
            assert!(state.model.get(fqn).unwrap().tensor.bitwise_eq(&w.tensor), "{fqn}");
        }
    });

    // ---- Stage 5: safetensors export of the final model. ----
    let uri = StorageUri::parse("hdfs://prod/lineage/sft_20").unwrap();
    let backend = registry.resolve(&uri).unwrap();
    let blob = export_safetensors(&backend, &uri.key, false).unwrap();
    let tensors = parse_safetensors(&blob).unwrap();
    let want = reference_state(&arch, Framework::Ddp, par4, 0, s3_steps);
    assert_eq!(tensors.len(), want.model.entries.len());
    for (fqn, w) in &want.model.entries {
        assert!(tensors[fqn].bitwise_eq(&w.tensor), "{fqn} in safetensors export");
    }
}

#[test]
fn checkpoint_history_supports_multiple_steps() {
    // Several checkpoints of one job coexist under distinct prefixes and
    // each loads the right snapshot (failure recovery picks any of them).
    let arch = zoo::tiny_gpt();
    let fw = Framework::Ddp;
    let par = Parallelism::data_parallel(2).unwrap();
    let registry = Arc::new(BackendRegistry::all_memory());
    let arch_c = arch.clone();
    run_ranks(par, fw, registry.clone(), move |rank, ckpt| {
        let mut state = build_train_state(&arch_c, fw, par, rank, true);
        for step in 1..=3u64 {
            TrainerConfig::default().step(&mut state, step - 1);
            ckpt.save(&SaveRequest::new(format!("mem://job/history/step_{step}"), &state, step))
                .unwrap()
                .wait()
                .unwrap();
        }
    });
    // Load the middle snapshot and confirm it is step 2, not step 3.
    let arch_c = arch.clone();
    run_ranks(par, fw, registry, move |rank, ckpt| {
        let mut state = build_train_state(&arch_c, fw, par, rank, true);
        let out = ckpt.load(&mut LoadRequest::new("mem://job/history/step_2", &mut state)).unwrap();
        assert_eq!(out.resumed_step(), 2);
        assert_states_eq(&state, &reference_state(&arch_c, fw, par, rank, 2), rank);
    });
}

#[test]
fn huggingface_import_seeds_distributed_training() {
    // Appendix F both ways: export a checkpoint to safetensors, import the
    // blob as a fresh checkpoint, and load it into a 3D-parallel job.
    use bytecheckpoint::core::export::import_safetensors;
    let arch = zoo::tiny_gpt();
    let registry = Arc::new(BackendRegistry::all_memory());
    let fw = Framework::Ddp;
    let par1 = Parallelism::data_parallel(1).unwrap();
    let steps = 3u64;
    let arch_c = arch.clone();
    run_ranks(par1, fw, registry.clone(), move |rank, ckpt| {
        let state = reference_state(&arch_c, fw, par1, rank, steps);
        ckpt.save(&SaveRequest::new("mem://x/hf/src", &state, steps)).unwrap().wait().unwrap();
    });
    let uri = StorageUri::parse("mem://x/hf/src").unwrap();
    let backend = registry.resolve(&uri).unwrap();
    let blob = export_safetensors(&backend, &uri.key, false).unwrap();
    let meta = import_safetensors(&backend, "hf/imported", &blob, 0).unwrap();
    meta.validate().unwrap();

    // Load the imported (model-only) checkpoint into Megatron TP=2 PP=2.
    let fw2 = Framework::Megatron { distributed_optimizer: false };
    let par2 = Parallelism::new(2, 1, 2).unwrap();
    let arch_c = arch.clone();
    run_ranks(par2, fw2, registry, move |rank, ckpt| {
        let mut state = build_train_state(&arch_c, fw2, par2, rank, true);
        state.optimizer.entries.clear(); // the import carries model weights only
        ckpt.load(&mut LoadRequest::new("mem://x/hf/imported", &mut state)).unwrap();
        let want = reference_state(&arch_c, fw2, par2, rank, steps);
        for (fqn, w) in &want.model.entries {
            assert!(state.model.get(fqn).unwrap().tensor.bitwise_eq(&w.tensor), "{fqn}");
        }
    });
}

#[test]
fn two_tier_memory_plus_hdfs_checkpointing() {
    // Gemini-style layered persistence: every step checkpoints to in-memory
    // storage (fast recovery), every 2nd step also to "HDFS" (durable).
    // After a "machine loss" the job recovers the newest snapshot from
    // memory; after a "cluster loss" it recovers from HDFS.
    use bytecheckpoint::core::manager::CheckpointManager;
    let arch = zoo::tiny_gpt();
    let fw = Framework::Ddp;
    let par = Parallelism::data_parallel(2).unwrap();
    let mem: DynBackend = Arc::new(MemoryBackend::new());
    let hdfs: DynBackend = Arc::new(bytecheckpoint::storage::HdfsBackend::with_defaults());
    let registry = {
        let mut reg = BackendRegistry::new();
        reg.register(Scheme::Memory, mem.clone());
        reg.register(Scheme::Hdfs, hdfs.clone());
        Arc::new(reg)
    };
    let arch_c = arch.clone();
    run_ranks(par, fw, registry.clone(), move |rank, ckpt| {
        let mut state = build_train_state(&arch_c, fw, par, rank, true);
        for step in 1..=4u64 {
            TrainerConfig::default().step(&mut state, step - 1);
            ckpt.save(&SaveRequest::new(format!("mem://gemini/job/step_{step}"), &state, step))
                .unwrap()
                .wait()
                .unwrap();
            if step % 2 == 0 {
                ckpt.save(&SaveRequest::new(
                    format!("hdfs://cluster/job/step_{step}"),
                    &state,
                    step,
                ))
                .unwrap()
                .wait()
                .unwrap();
            }
        }
    });
    // Fast tier has steps 1..=4; durable tier has 2 and 4.
    let fast = CheckpointManager::new(mem, "job");
    let durable = CheckpointManager::new(hdfs, "job");
    assert_eq!(fast.latest().unwrap().unwrap().step, 4);
    assert_eq!(durable.list().unwrap().iter().map(|c| c.step).collect::<Vec<_>>(), vec![2, 4]);
    // Recover from the durable tier and verify.
    let arch_c = arch.clone();
    run_ranks(par, fw, registry, move |rank, ckpt| {
        let mut state = build_train_state(&arch_c, fw, par, rank, true);
        let out =
            ckpt.load(&mut LoadRequest::new("hdfs://cluster/job/step_4", &mut state)).unwrap();
        assert_eq!(out.resumed_step(), 4);
        assert_states_eq(&state, &reference_state(&arch_c, fw, par, rank, 4), rank);
    });
}
