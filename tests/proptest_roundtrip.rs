//! Property-based end-to-end round trips: random (framework, parallelism)
//! source/target pairs pushed through the *real* save → load-time-reshard
//! pipeline, with bitwise verification. Small worlds keep the case count
//! tractable; shrinking pins down minimal failing transitions.

mod common;

use bytecheckpoint::prelude::*;
use common::{assert_states_eq, reference_state, run_ranks};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone, Copy)]
struct JobShape {
    fw: Framework,
    par: Parallelism,
}

fn arb_shape() -> impl Strategy<Value = JobShape> {
    prop_oneof![
        // Megatron: tp in {1,2}, dp in 1..=3, pp in {1,2,4} (8-layer model).
        (
            prop_oneof![Just(1usize), Just(2)],
            1usize..=3,
            prop_oneof![Just(1usize), Just(2), Just(4)],
            any::<bool>()
        )
            .prop_map(|(tp, dp, pp, dist_opt)| JobShape {
                fw: Framework::Megatron { distributed_optimizer: dist_opt },
                par: Parallelism::new(tp, dp, pp).unwrap(),
            }),
        // FSDP: dp in 1..=6, zero2 or zero3.
        (1usize..=6, any::<bool>()).prop_map(|(dp, zero3)| JobShape {
            fw: Framework::Fsdp { zero3 },
            par: Parallelism::data_parallel(dp).unwrap(),
        }),
        // DDP: dp in 1..=3.
        (1usize..=3).prop_map(|dp| JobShape {
            fw: Framework::Ddp,
            par: Parallelism::data_parallel(dp).unwrap(),
        }),
    ]
}

proptest! {
    // Each case runs two real multi-threaded jobs; keep the count modest.
    #![proptest_config(ProptestConfig { cases: 12, max_shrink_iters: 24, ..ProptestConfig::default() })]
    #[test]
    fn any_transition_round_trips_bitwise(a in arb_shape(), b in arb_shape(), steps in 1u64..3) {
        let registry = Arc::new(BackendRegistry::all_memory());
        let arch = zoo::tiny_gpt_8l();
        let arch1 = arch.clone();
        run_ranks(a.par, a.fw, registry.clone(), move |rank, ckpt| {
            let state = reference_state(&arch1, a.fw, a.par, rank, steps);
            ckpt.save(&SaveRequest::new("mem://prop/ckpt", &state, steps))
                .unwrap()
                .wait()
                .unwrap();
        });
        let arch2 = arch.clone();
        run_ranks(b.par, b.fw, registry, move |rank, ckpt| {
            let mut state = build_train_state(&arch2, b.fw, b.par, rank, true);
            ckpt.load(&mut LoadRequest::new("mem://prop/ckpt", &mut state)).unwrap();
            assert_states_eq(&state, &reference_state(&arch2, b.fw, b.par, rank, steps), rank);
        });
    }
}
