//! End-to-end observability test (§5.3): a multi-rank save/load with one
//! storage-throttled straggler rank persists `_telemetry.jsonl` artifacts
//! next to the checkpoint, the span trees in the artifact are well-formed,
//! and the offline `bcpctl report` — fed nothing but the job directory —
//! renders the heat map, per-rank breakdown, and critical path, naming the
//! straggler.

use bytecheckpoint::prelude::*;
use bytecheckpoint::storage::{ThrottleProfile, Throttled};
use std::process::Command;
use std::sync::Arc;
use std::time::Duration;

const WORLD: usize = 4;
const STRAGGLER: usize = 2;

/// Save steps 10 and 20 (then load 20 back) with per-rank registries:
/// every rank writes to the same on-disk job dir, but the straggler's
/// backend is wrapped in a hard write/read throttle.
fn run_job(dir: &std::path::Path) {
    let fw = Framework::Ddp;
    let par = Parallelism::data_parallel(WORLD).unwrap();
    let world = CommWorld::new(WORLD, Backend::Tree { gpus_per_host: 4, branching: 2 });
    let handles: Vec<_> = (0..WORLD)
        .map(|rank| {
            let world = world.clone();
            let dir = dir.to_path_buf();
            std::thread::spawn(move || {
                let disk: DynBackend = Arc::new(DiskBackend::new(&dir).unwrap());
                let backend: DynBackend = if rank == STRAGGLER {
                    // The throttle must dominate filesystem noise on the
                    // tiny test state (a few KB per shard), so it is far
                    // harsher than a realistic slow disk.
                    Arc::new(Throttled::new(
                        disk,
                        ThrottleProfile {
                            read_bps: 2e6,
                            write_bps: 4e5,
                            op_latency: Duration::from_millis(5),
                        },
                        "slow-disk",
                    ))
                } else {
                    disk
                };
                let registry = {
                    let mut reg = BackendRegistry::new();
                    reg.register(Scheme::File, backend);
                    Arc::new(reg)
                };
                let ckpt = Checkpointer::builder(world.communicator(rank).unwrap())
                    .framework(fw)
                    .parallelism(par)
                    .registry(registry)
                    .build()
                    .unwrap();
                for step in [10u64, 20] {
                    let mut state = build_train_state(&zoo::tiny_gpt(), fw, par, rank, true);
                    TrainerConfig::default().run(&mut state, 0, step);
                    ckpt.save(&SaveRequest::new(format!("file:///job/step_{step}"), &state, step))
                        .unwrap()
                        .wait()
                        .unwrap();
                }
                let mut target = build_train_state(&zoo::tiny_gpt(), fw, par, rank, true);
                ckpt.load(&mut LoadRequest::new("file:///job/step_20", &mut target)).unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

fn bcpctl(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bcpctl")).args(args).output().expect("bcpctl runs");
    let text =
        format!("{}{}", String::from_utf8_lossy(&out.stdout), String::from_utf8_lossy(&out.stderr));
    (out.status.success(), text)
}

#[test]
fn persisted_telemetry_drives_offline_report() {
    let dir = std::env::temp_dir().join(format!("bcp-telemetry-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    run_job(&dir);
    let job = dir.join("job");

    // ---- The artifacts sit next to the checkpoints, one line per rank. ----
    for step in [10u64, 20] {
        let artifact = job.join(format!("step_{step}")).join(TELEMETRY_SAVE_FILE);
        let text = std::fs::read_to_string(&artifact)
            .unwrap_or_else(|e| panic!("{artifact:?} missing: {e}"));
        let doc = StepTelemetry::from_jsonl(&text).unwrap();
        assert_eq!(doc.ranks.len(), WORLD);
        assert_eq!(doc.step(), Some(step));
        assert_eq!(doc.op(), Some("save"));

        // Span validity per rank line: exactly one root (named "save"),
        // every parent id resolves within the line, phases sit under the
        // root, and storage ops are uncounted details.
        for line in &doc.ranks {
            assert!(!line.spans.is_empty(), "rank {} has no spans", line.rank);
            let ids: std::collections::HashSet<u64> = line.spans.iter().map(|s| s.id).collect();
            assert_eq!(ids.len(), line.spans.len(), "duplicate span ids");
            let roots: Vec<_> = line.spans.iter().filter(|s| s.parent.is_none()).collect();
            assert_eq!(roots.len(), 1, "rank {}: {roots:?}", line.rank);
            assert_eq!(roots[0].name, "save");
            assert!(!roots[0].counted, "root must not double-count phase time");
            for s in &line.spans {
                assert_eq!(s.rank, line.rank);
                assert_eq!(s.step, step);
                if let Some(p) = s.parent {
                    assert!(ids.contains(&p), "orphan span {} (parent {p})", s.name);
                }
                if s.name.starts_with("storage/") {
                    assert!(!s.counted, "storage detail span counted: {}", s.name);
                }
            }
            let root_id = roots[0].id;
            for phase in ["save/dump", "save/upload", "sync/save_barrier"] {
                let span = line
                    .spans
                    .iter()
                    .find(|s| s.name == phase)
                    .unwrap_or_else(|| panic!("rank {} lacks {phase}", line.rank));
                assert_eq!(span.parent, Some(root_id), "{phase} not under the root");
            }
        }

        // The straggler dominates the per-rank totals.
        let by_rank = doc.total_by_rank("save/");
        let slowest = by_rank.iter().max_by_key(|(_, d)| **d).map(|(r, _)| *r);
        assert_eq!(slowest, Some(STRAGGLER), "totals: {by_rank:?}");
    }

    // The load pass left its own artifact.
    let load_artifact = job.join("step_20").join(TELEMETRY_LOAD_FILE);
    let doc = StepTelemetry::from_jsonl(&std::fs::read_to_string(&load_artifact).unwrap()).unwrap();
    assert_eq!(doc.op(), Some("load"));
    assert_eq!(doc.ranks.len(), WORLD);
    assert!(doc.all_spans().iter().any(|s| s.name == "load/read"));

    // ---- The offline report: heat map + breakdown + critical path. ----
    let job_s = job.to_string_lossy().to_string();
    let trace_out = dir.join("trace.json").to_string_lossy().to_string();
    let csv_out = dir.join("records.csv").to_string_lossy().to_string();
    let (ok, text) = bcpctl(&["report", &job_s, "--trace", &trace_out, "--csv", &csv_out]);
    assert!(ok, "{text}");
    assert!(text.contains("step 20 (save)"), "{text}");
    assert!(text.contains("heatmap rows="), "{text}");
    assert!(
        text.contains(&format!("critical path: rank {STRAGGLER} ")),
        "straggler not identified: {text}"
    );
    assert!(text.contains("save/upload"), "{text}");
    assert!(text.contains("p50"), "no percentile table: {text}");
    // Two artifacts → the regression check has a baseline to compare against.
    assert!(
        text.contains("regression") || text.contains("ALERT regression"),
        "no regression section: {text}"
    );

    // Exports parse / have the expected shape.
    let trace: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace_out).unwrap()).unwrap();
    assert!(!trace["traceEvents"].as_array().unwrap().is_empty());
    let csv = std::fs::read_to_string(&csv_out).unwrap();
    assert!(csv.starts_with("name,rank,step,duration_s,io_bytes,path"), "{csv}");

    // Report a specific earlier step, and the load-side artifact.
    let (ok, text) = bcpctl(&["report", &job_s, "--step", "10"]);
    assert!(ok, "{text}");
    assert!(text.contains("step 10 (save)"), "{text}");
    let (ok, text) = bcpctl(&["report", &job_s, "--load"]);
    assert!(ok, "{text}");
    assert!(text.contains("step 20 (load)"), "{text}");
    assert!(text.contains("heatmap rows="), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}
