//! End-to-end tests of the `bcpctl` CLI against real on-disk checkpoints.

mod common;

use bytecheckpoint::prelude::*;
use common::{reference_state, run_ranks};
use std::process::Command;
use std::sync::Arc;

/// Save two real checkpoints (steps 10 and 20) under `<dir>/job/step_<N>`.
fn make_job_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bcpctl-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let disk: DynBackend = Arc::new(DiskBackend::new(&dir).unwrap());
    let registry = {
        let mut reg = BackendRegistry::new();
        reg.register(Scheme::File, disk);
        Arc::new(reg)
    };
    let fw = Framework::Ddp;
    let par = Parallelism::data_parallel(2).unwrap();
    run_ranks(par, fw, registry, move |rank, ckpt| {
        for step in [10u64, 20] {
            let state = reference_state(&zoo::tiny_gpt(), fw, par, rank, step);
            ckpt.save(&SaveRequest::new(format!("file:///job/step_{step}"), &state, step))
                .unwrap()
                .wait()
                .unwrap();
        }
    });
    dir
}

fn bcpctl(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bcpctl"))
        .args(args)
        .output()
        .expect("bcpctl runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn list_inspect_verify_export_retain() {
    let dir = make_job_dir();
    let job = dir.join("job");
    let job_s = job.to_string_lossy().to_string();

    // list: both steps committed, latest = 20.
    let (ok, text) = bcpctl(&["list", &job_s]);
    assert!(ok, "{text}");
    assert!(text.contains("latest committed: step 20"), "{text}");
    assert_eq!(text.matches("committed").count(), 3, "{text}"); // 2 rows + summary

    // inspect: framework and shard counts.
    let step20 = job.join("step_20").to_string_lossy().to_string();
    let (ok, text) = bcpctl(&["inspect", &step20]);
    assert!(ok, "{text}");
    assert!(text.contains("framework    ddp"), "{text}");
    assert!(text.contains("largest tensors"), "{text}");

    // verify: all CRCs good.
    let (ok, text) = bcpctl(&["verify", &step20]);
    assert!(ok, "{text}");
    assert!(text.contains("all CRCs verified"), "{text}");

    // verify catches corruption.
    let victim = job.join("step_10/model_0.bin");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&victim, bytes).unwrap();
    let step10 = job.join("step_10").to_string_lossy().to_string();
    let (ok, text) = bcpctl(&["verify", &step10]);
    assert!(!ok, "corrupted checkpoint must fail verify: {text}");

    // export: a parseable safetensors file.
    let out_file = dir.join("model.safetensors").to_string_lossy().to_string();
    let (ok, text) = bcpctl(&["export", &step20, &out_file]);
    assert!(ok, "{text}");
    let blob = bytes::Bytes::from(std::fs::read(&out_file).unwrap());
    let tensors = bytecheckpoint::core::export::parse_safetensors(&blob).unwrap();
    assert!(tensors.contains_key("layers.0.attn.qkv.weight"));

    // retain 1: step 10 (older) is deleted, step 20 stays.
    let (ok, text) = bcpctl(&["retain", &job_s, "1"]);
    assert!(ok, "{text}");
    assert!(text.contains("deleted steps: [10]"), "{text}");
    assert!(!job.join("step_10").join("COMPLETE").exists());
    assert!(job.join("step_20").join("COMPLETE").exists());

    // bad usage exits non-zero.
    let (ok, _) = bcpctl(&["frobnicate"]);
    assert!(!ok);

    let _ = std::fs::remove_dir_all(&dir);
}
