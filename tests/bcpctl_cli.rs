//! End-to-end tests of the `bcpctl` CLI against real on-disk checkpoints.

mod common;

use bytecheckpoint::prelude::*;
use common::{reference_state, run_ranks};
use std::process::Command;
use std::sync::Arc;

/// Save two real checkpoints (steps 10 and 20) under `<dir>/job/step_<N>`.
/// `tag` keeps concurrently running tests in separate trees.
fn make_job_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bcpctl-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let disk: DynBackend = Arc::new(DiskBackend::new(&dir).unwrap());
    let registry = {
        let mut reg = BackendRegistry::new();
        reg.register(Scheme::File, disk);
        Arc::new(reg)
    };
    let fw = Framework::Ddp;
    let par = Parallelism::data_parallel(2).unwrap();
    run_ranks(par, fw, registry, move |rank, ckpt| {
        for step in [10u64, 20] {
            let state = reference_state(&zoo::tiny_gpt(), fw, par, rank, step);
            ckpt.save(&SaveRequest::new(format!("file:///job/step_{step}"), &state, step))
                .unwrap()
                .wait()
                .unwrap();
        }
    });
    dir
}

fn bcpctl(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bcpctl")).args(args).output().expect("bcpctl runs");
    let text =
        format!("{}{}", String::from_utf8_lossy(&out.stdout), String::from_utf8_lossy(&out.stderr));
    (out.status.success(), text)
}

#[test]
fn list_inspect_verify_export_retain() {
    let dir = make_job_dir("main");
    let job = dir.join("job");
    let job_s = job.to_string_lossy().to_string();

    // list: both steps committed, latest = 20.
    let (ok, text) = bcpctl(&["list", &job_s]);
    assert!(ok, "{text}");
    assert!(text.contains("latest committed: step 20"), "{text}");
    assert_eq!(text.matches("committed").count(), 3, "{text}"); // 2 rows + summary

    // inspect: framework and shard counts.
    let step20 = job.join("step_20").to_string_lossy().to_string();
    let (ok, text) = bcpctl(&["inspect", &step20]);
    assert!(ok, "{text}");
    assert!(text.contains("framework    ddp"), "{text}");
    assert!(text.contains("largest tensors"), "{text}");

    // verify: all CRCs good.
    let (ok, text) = bcpctl(&["verify", &step20]);
    assert!(ok, "{text}");
    assert!(text.contains("all CRCs verified"), "{text}");

    // verify catches corruption.
    let victim = job.join("step_10/model_0.bin");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&victim, bytes).unwrap();
    let step10 = job.join("step_10").to_string_lossy().to_string();
    let (ok, text) = bcpctl(&["verify", &step10]);
    assert!(!ok, "corrupted checkpoint must fail verify: {text}");

    // export: a parseable safetensors file.
    let out_file = dir.join("model.safetensors").to_string_lossy().to_string();
    let (ok, text) = bcpctl(&["export", &step20, &out_file]);
    assert!(ok, "{text}");
    let blob = bytes::Bytes::from(std::fs::read(&out_file).unwrap());
    let tensors = bytecheckpoint::core::export::parse_safetensors(&blob).unwrap();
    assert!(tensors.contains_key("layers.0.attn.qkv.weight"));

    // retain 1: step 10 (older) is deleted, step 20 stays.
    let (ok, text) = bcpctl(&["retain", &job_s, "1"]);
    assert!(ok, "{text}");
    assert!(text.contains("deleted steps: [10]"), "{text}");
    assert!(!job.join("step_10").join("COMPLETE").exists());
    assert!(job.join("step_20").join("COMPLETE").exists());

    // bad usage exits non-zero.
    let (ok, _) = bcpctl(&["frobnicate"]);
    assert!(!ok);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scrub_fails_ci_on_corruption_and_quarantines() {
    let dir = make_job_dir("scrub");
    let job = dir.join("job");
    let job_s = job.to_string_lossy().to_string();

    // A clean tree scrubs clean: exit zero, every step summarized.
    let (ok, text) = bcpctl(&["scrub", &job_s]);
    assert!(ok, "{text}");
    assert!(text.contains("step 10:"), "{text}");
    assert!(text.contains("step 20:"), "{text}");
    assert!(text.contains("2 clean committed"), "{text}");

    // Flip one byte of a step-20 shard file. The sweep must exit non-zero
    // (CI gate) and name the corrupt file.
    let victim = std::fs::read_dir(job.join("step_20"))
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "bin"))
        .expect("step 20 holds at least one shard file");
    let victim_name = victim.file_name().unwrap().to_string_lossy().to_string();
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&victim, bytes).unwrap();

    let (ok, text) = bcpctl(&["scrub", &job_s]);
    assert!(!ok, "a corrupt committed step must fail the sweep: {text}");
    assert!(text.contains(&victim_name), "output must name the corrupt shard file: {text}");

    // --quarantine moves the corrupt step aside (still exiting non-zero so
    // CI sees the incident), after which the tree scrubs clean on step 10.
    let (ok, text) = bcpctl(&["scrub", &job_s, "--quarantine"]);
    assert!(!ok, "{text}");
    assert!(text.contains("quarantined step 20"), "{text}");
    assert!(!job.join("step_20").join("COMPLETE").exists(), "step 20 must leave the live tree");
    assert!(
        job.join("quarantine").join("step_20").join(&victim_name).exists(),
        "the corrupt shard must be preserved under quarantine/"
    );

    let (ok, text) = bcpctl(&["scrub", &job_s]);
    assert!(ok, "after quarantine the tree must scrub clean: {text}");
    assert!(text.contains("1 clean committed"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// `bcpctl serve` + `jobs` + `status`: a live control plane driven purely
/// through the CLI and the typed wire client.
#[test]
fn serve_jobs_status() {
    use bytecheckpoint::coordinator::CoordinatorClient;
    use bytecheckpoint::prelude::JobSpec;
    use std::io::BufRead;

    let mut child = Command::new(env!("CARGO_BIN_EXE_bcpctl"))
        .args(["serve", "127.0.0.1:0", "--max-jobs", "4", "--for-seconds", "30"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("serve starts");
    let addr = {
        let stdout = child.stdout.as_mut().expect("piped stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout).read_line(&mut line).expect("banner line");
        line.trim().strip_prefix("listening on ").expect("banner format").to_string()
    };

    let (ok, text) = bcpctl(&["jobs", &addr]);
    assert!(ok, "{text}");
    assert!(text.contains("no jobs registered"), "{text}");

    // Register through the typed client, observe through the CLI.
    let mut client = CoordinatorClient::connect(&addr).unwrap();
    assert!(client.register(JobSpec::new("cli-job", "mem://jobs/cli-job")).unwrap().is_admitted());
    client.report_commit("cli-job", 7, 4096, 12).unwrap();

    let (ok, text) = bcpctl(&["jobs", &addr]);
    assert!(ok, "{text}");
    assert!(text.contains("cli-job"), "{text}");

    let (ok, text) = bcpctl(&["status", &addr, "cli-job"]);
    assert!(ok, "{text}");
    assert!(text.contains("commits      1"), "{text}");
    assert!(text.contains("last step    7"), "{text}");

    let (ok, text) = bcpctl(&["status", &addr, "ghost"]);
    assert!(!ok, "unknown job must exit non-zero: {text}");

    let _ = child.kill();
    let _ = child.wait();
}
