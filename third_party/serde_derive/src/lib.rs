//! Minimal offline stand-in for `serde_derive`, written without `syn` or
//! `quote`: the item is hand-parsed from the raw `TokenStream` and the
//! generated impl is rendered as a string, then re-parsed.
//!
//! Supported input shapes (everything this workspace derives on):
//! - non-generic structs: named fields, tuple/newtype, unit;
//! - non-generic enums: unit, newtype, tuple, and struct variants
//!   (externally tagged representation);
//! - field attributes `#[serde(default)]`, `#[serde(default = "path")]`,
//!   and `#[serde(skip_serializing_if = "path")]`.
//!
//! Generated code targets the `Content`-tree traits of the companion
//! `serde` stand-in rather than real serde's visitor API.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (stand-in surface: `fn ser(&self) -> Content`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` (stand-in surface: `fn deser(&Content)`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsed shape
// ---------------------------------------------------------------------------

#[derive(Default)]
struct FieldAttrs {
    /// `#[serde(default)]` → `Some(None)`; `#[serde(default = "p")]` → `Some(Some(p))`.
    default: Option<Option<String>>,
    /// `#[serde(skip_serializing_if = "p")]`.
    skip_serializing_if: Option<String>,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum Shape {
    Unit,
    /// Tuple struct / tuple variant with this arity.
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Body {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs(&toks, &mut i);
    skip_visibility(&toks, &mut i);

    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stand-in derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stand-in derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive: generic type `{name}` is not supported");
    }

    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_struct_shape(&toks, &mut i)),
        "enum" => {
            let group = expect_group(&toks, &mut i, Delimiter::Brace, "enum body");
            Body::Enum(parse_variants(group))
        }
        other => panic!("serde stand-in derive: cannot derive on `{other}` items"),
    };
    let _ = toks.pop();
    Item { name, body }
}

fn parse_struct_shape(toks: &[TokenTree], i: &mut usize) -> Shape {
    match toks.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(g.stream());
            *i += 1;
            Shape::Named(fields)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = tuple_arity(g.stream());
            *i += 1;
            Shape::Tuple(arity)
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
            *i += 1;
            Shape::Unit
        }
        other => panic!("serde stand-in derive: unexpected struct body {other:?}"),
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stand-in derive: expected variant name, found {other}"),
        };
        i += 1;
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                i += 1;
                Shape::Tuple(arity)
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let attrs = collect_field_attrs(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stand-in derive: expected field name, found {other}"),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde stand-in derive: expected `:` after field, found {other}"),
        }
        skip_type(&toks, &mut i);
        fields.push(Field { name, attrs });
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Count top-level comma-separated entries in a tuple body.
fn tuple_arity(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut depth = 0i32;
    let mut trailing_comma = false;
    for t in &toks {
        trailing_comma = false;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    arity += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if trailing_comma {
        arity -= 1;
    }
    arity
}

/// Consume a field type: everything until a top-level comma.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            },
            _ => {}
        }
        *i += 1;
    }
}

fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if matches!(&toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            toks.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while matches!(&toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        *i += 1; // [...]
    }
}

fn collect_field_attrs(toks: &[TokenTree], i: &mut usize) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while matches!(&toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        let group = match &toks[*i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket => g.stream(),
            other => panic!("serde stand-in derive: expected attribute body, found {other}"),
        };
        *i += 1;
        parse_serde_attr(group, &mut attrs);
    }
    attrs
}

/// Inspect one attribute body; record serde options, ignore everything else.
fn parse_serde_attr(stream: TokenStream, attrs: &mut FieldAttrs) {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let inner = match toks.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return,
    };
    let inner: Vec<TokenTree> = inner.into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        let key = match &inner[j] {
            TokenTree::Ident(id) => id.to_string(),
            _ => {
                j += 1;
                continue;
            }
        };
        j += 1;
        let value = if matches!(inner.get(j), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            j += 1;
            let lit = match &inner[j] {
                TokenTree::Literal(l) => l.to_string(),
                other => {
                    panic!("serde stand-in derive: expected string after `{key} =`, found {other}")
                }
            };
            j += 1;
            Some(lit.trim_matches('"').to_string())
        } else {
            None
        };
        match key.as_str() {
            "default" => attrs.default = Some(value),
            "skip_serializing_if" => {
                attrs.skip_serializing_if = Some(value.expect("skip_serializing_if needs a path"));
            }
            other => panic!("serde stand-in derive: unsupported serde attribute `{other}`"),
        }
        if matches!(inner.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            j += 1;
        }
    }
}

fn expect_group(toks: &[TokenTree], i: &mut usize, delim: Delimiter, what: &str) -> TokenStream {
    match &toks[*i] {
        TokenTree::Group(g) if g.delimiter() == delim => {
            *i += 1;
            g.stream()
        }
        other => panic!("serde stand-in derive: expected {what}, found {other}"),
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Shape::Unit) => "serde::Content::Null".to_string(),
        Body::Struct(Shape::Tuple(1)) => "serde::Serialize::ser(&self.0)".to_string(),
        Body::Struct(Shape::Tuple(n)) => {
            let elems: Vec<String> =
                (0..*n).map(|k| format!("serde::Serialize::ser(&self.{k})")).collect();
            format!("serde::Content::Seq(vec![{}])", elems.join(", "))
        }
        Body::Struct(Shape::Named(fields)) => ser_named_fields(fields, "self.", ""),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => serde::Content::Str(String::from(\"{vn}\")),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => serde::Content::Map(vec![(serde::Content::Str(String::from(\"{vn}\")), serde::Serialize::ser(__f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|k| format!("serde::Serialize::ser(__f{k})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::Content::Map(vec![(serde::Content::Str(String::from(\"{vn}\")), serde::Content::Seq(vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let inner = ser_named_fields(fields, "", "");
                            format!(
                                "{name}::{vn} {{ {} }} => {{ let __payload = {inner}; serde::Content::Map(vec![(serde::Content::Str(String::from(\"{vn}\")), __payload)]) }},",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::Serialize for {name} {{\n\
             fn ser(&self) -> serde::Content {{ {body} }}\n\
         }}"
    )
}

/// Render named fields into a `Content::Map` expression. `access` is the
/// prefix before each field name (`self.` for structs, empty for bound
/// pattern variables in enum struct variants).
fn ser_named_fields(fields: &[Field], access: &str, deref: &str) -> String {
    let mut out =
        String::from("{ let mut __m: Vec<(serde::Content, serde::Content)> = Vec::new();\n");
    for f in fields {
        let fname = &f.name;
        let value = format!("serde::Serialize::ser(&{deref}{access}{fname})");
        let push = format!("__m.push((serde::Content::Str(String::from(\"{fname}\")), {value}));");
        if let Some(pred) = &f.attrs.skip_serializing_if {
            out.push_str(&format!("if !{pred}(&{deref}{access}{fname}) {{ {push} }}\n"));
        } else {
            out.push_str(&push);
            out.push('\n');
        }
    }
    out.push_str("serde::Content::Map(__m) }");
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(Shape::Unit) => format!("std::result::Result::Ok({name})"),
        Body::Struct(Shape::Tuple(1)) => {
            format!("std::result::Result::Ok({name}(serde::Deserialize::deser(__c)?))")
        }
        Body::Struct(Shape::Tuple(n)) => {
            let elems: Vec<String> =
                (0..*n).map(|k| format!("serde::Deserialize::deser(&__items[{k}])?")).collect();
            format!(
                "{{ let __items = __c.as_seq().ok_or_else(|| serde::DeError::new(\"{name}: expected sequence\"))?;\n\
                 if __items.len() != {n} {{ return Err(serde::DeError::new(\"{name}: wrong tuple arity\")); }}\n\
                 std::result::Result::Ok({name}({})) }}",
                elems.join(", ")
            )
        }
        Body::Struct(Shape::Named(fields)) => {
            format!(
                "{{ let __m = __c.as_map().ok_or_else(|| serde::DeError::new(\"{name}: expected map\"))?;\n\
                 std::result::Result::Ok({name} {{ {} }}) }}",
                de_named_fields(fields)
            )
        }
        Body::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::Deserialize<'de> for {name} {{\n\
             fn deser(__c: &serde::Content) -> std::result::Result<Self, serde::DeError> {{ {body} }}\n\
         }}"
    )
}

fn de_named_fields(fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        let fname = &f.name;
        let fallback = match &f.attrs.default {
            Some(None) => "std::default::Default::default()".to_string(),
            Some(Some(path)) => format!("{path}()"),
            None => format!("serde::Deserialize::deser_missing(\"{fname}\")?"),
        };
        out.push_str(&format!(
            "{fname}: match serde::__content_get(__m, \"{fname}\") {{\n\
                 std::option::Option::Some(__v) => serde::Deserialize::deser(__v)?,\n\
                 std::option::Option::None => {fallback},\n\
             }},\n"
        ));
    }
    out
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    // Unit variants arrive as bare strings.
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| format!("\"{0}\" => std::result::Result::Ok({name}::{0}),", v.name))
        .collect();
    // Payload variants arrive as single-entry maps.
    let map_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.shape {
                Shape::Unit => None,
                Shape::Tuple(1) => Some(format!(
                    "\"{vn}\" => std::result::Result::Ok({name}::{vn}(serde::Deserialize::deser(__v)?)),"
                )),
                Shape::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("serde::Deserialize::deser(&__items[{k}])?"))
                        .collect();
                    Some(format!(
                        "\"{vn}\" => {{ let __items = __v.as_seq().ok_or_else(|| serde::DeError::new(\"{name}::{vn}: expected sequence\"))?;\n\
                         if __items.len() != {n} {{ return Err(serde::DeError::new(\"{name}::{vn}: wrong arity\")); }}\n\
                         std::result::Result::Ok({name}::{vn}({})) }},",
                        elems.join(", ")
                    ))
                }
                Shape::Named(fields) => Some(format!(
                    "\"{vn}\" => {{ let __m = __v.as_map().ok_or_else(|| serde::DeError::new(\"{name}::{vn}: expected map\"))?;\n\
                     std::result::Result::Ok({name}::{vn} {{ {} }}) }},",
                    de_named_fields(fields)
                )),
            }
        })
        .collect();
    format!(
        "match __c {{\n\
             serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {unit}\n\
                 __other => Err(serde::DeError::new(format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
             }},\n\
             serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__k, __v) = &__entries[0];\n\
                 let __k = match __k {{ serde::Content::Str(__s) => __s.as_str(), _ => return Err(serde::DeError::new(\"{name}: non-string variant tag\")) }};\n\
                 match __k {{\n\
                     {maps}\n\
                     __other => Err(serde::DeError::new(format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                 }}\n\
             }}\n\
             __other => Err(serde::DeError::new(format!(\"{name}: expected variant tag, found {{}}\", __other.kind()))),\n\
         }}",
        unit = unit_arms.join("\n"),
        maps = map_arms.join("\n"),
    )
}
