//! Minimal offline stand-in for the `rand` crate.
//!
//! A deterministic SplitMix64-based [`StdRng`] behind the subset of the
//! rand 0.8 API this workspace uses: `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool, fill}`, `thread_rng`, and
//! `rngs::StdRng`. Distribution quality is adequate for tests and
//! simulation, not cryptography.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction of RNGs from seed material.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Build from OS entropy; here, from the system clock.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw a uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range. Panics if empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw from a range (`gen_range(0..n)` / `gen_range(0..=n)`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic RNG: SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        StdRng { state: seed }
    }
}

/// RNG namespace mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;

    /// Thread-local RNG handle (freshly time-seeded here).
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl super::RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Get a time-seeded RNG (not actually thread-local in this stand-in).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng(StdRng::from_entropy())
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::{thread_rng, Rng, RngCore, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = r.gen_range(0..10);
            assert!(x < 10);
            let y: usize = r.gen_range(3..=5);
            assert!((3..=5).contains(&y));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let z: i64 = r.gen_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_slice() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
