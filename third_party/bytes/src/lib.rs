//! Minimal offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply-cloneable immutable byte buffer (Arc-backed,
//! zero-copy `clone`/`slice`); [`BytesMut`] is a growable buffer that
//! freezes into `Bytes`. [`BufMut`] covers the little-endian put
//! methods this workspace uses. Equality and hashing are content-based.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

enum Repr {
    /// Borrowed from a `'static` slice — no allocation, no refcount.
    Static(&'static [u8]),
    /// Shared heap storage; `offset..offset+len` is this handle's view.
    Shared(Arc<Vec<u8>>),
    /// Arbitrary owner kept alive while a view into it exists.
    Owner(Arc<dyn AsRef<[u8]> + Send + Sync>),
}

impl Clone for Repr {
    fn clone(&self) -> Repr {
        match self {
            Repr::Static(s) => Repr::Static(s),
            Repr::Shared(a) => Repr::Shared(a.clone()),
            Repr::Owner(a) => Repr::Owner(a.clone()),
        }
    }
}

/// Cheaply cloneable, immutable contiguous byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// Empty buffer; does not allocate.
    pub const fn new() -> Bytes {
        Bytes { repr: Repr::Static(&[]), offset: 0, len: 0 }
    }

    /// Wrap a `'static` slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes { repr: Repr::Static(bytes), offset: 0, len: bytes.len() }
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Keep `owner` alive and view its bytes without copying.
    pub fn from_owner<T>(owner: T) -> Bytes
    where
        T: AsRef<[u8]> + Send + Sync + 'static,
    {
        let arc: Arc<dyn AsRef<[u8]> + Send + Sync> = Arc::new(owner);
        let len = (*arc).as_ref().as_ref().len();
        Bytes { repr: Repr::Owner(arc), offset: 0, len }
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether this view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Zero-copy sub-view. Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds for {}",
            self.len
        );
        Bytes { repr: self.repr.clone(), offset: self.offset + start, len: end - start }
    }

    /// View as a plain byte slice.
    pub fn as_ref_slice(&self) -> &[u8] {
        let full: &[u8] = match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a.as_slice(),
            Repr::Owner(a) => (**a).as_ref(),
        };
        &full[self.offset..self.offset + self.len]
    }

    /// Copy this view into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref_slice().to_vec()
    }

    /// Reclaim the allocation as a [`BytesMut`] if this handle is the sole
    /// owner; otherwise return `self` unchanged.
    pub fn try_into_mut(self) -> Result<BytesMut, Bytes> {
        let Bytes { repr, offset, len } = self;
        match repr {
            Repr::Shared(arc) => match Arc::try_unwrap(arc) {
                Ok(mut v) => {
                    if offset > 0 {
                        v.drain(..offset);
                    }
                    v.truncate(len);
                    Ok(BytesMut { buf: v })
                }
                Err(arc) => Err(Bytes { repr: Repr::Shared(arc), offset, len }),
            },
            repr => Err(Bytes { repr, offset, len }),
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes { repr: Repr::Shared(Arc::new(v)), offset: 0, len }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Bytes {
        Bytes::from(b.into_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(m: BytesMut) -> Bytes {
        m.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref_slice() == other.as_ref_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref_slice() == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_ref_slice().cmp(other.as_ref_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref_slice().iter().take(64) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len > 64 {
            write!(f, "…({} bytes)", self.len)?;
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref_slice().iter()
    }
}

/// Write-side trait: append primitive values to a growable buffer.
pub trait BufMut {
    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Buffer of `len` zero bytes.
    pub fn zeroed(len: usize) -> BytesMut {
        BytesMut { buf: vec![0; len] }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Reserve additional capacity.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Shorten to `len` (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Clear contents, keeping capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Set length, zero-filling any growth.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut { buf: s.to_vec() }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut { buf: v }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.buf.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_is_zero_copy_view() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(..2);
        assert_eq!(&s2[..], &[2, 3]);
    }

    #[test]
    fn static_and_owner() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(b.len(), 5);
        let o = Bytes::from_owner(vec![9u8, 8, 7]);
        assert_eq!(&o[..], &[9, 8, 7]);
    }

    #[test]
    fn eq_and_hash_by_content() {
        use std::collections::HashSet;
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::from_static(&[1, 2, 3]);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn bytesmut_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u32_le(0xdeadbeef);
        m.put_u8(7);
        m.put_slice(b"xy");
        m.truncate(6);
        let b = m.freeze();
        assert_eq!(&b[..4], &0xdeadbeef_u32.to_le_bytes());
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn zeroed_len() {
        let z = BytesMut::zeroed(10);
        assert_eq!(z.len(), 10);
        assert!(z.iter().all(|&b| b == 0));
    }
}
