//! Minimal offline stand-in for the `criterion` crate.
//!
//! Keeps the bench-authoring surface (`Criterion`, `benchmark_group`,
//! `Bencher::iter`/`iter_batched`, `Throughput`, `black_box`,
//! `criterion_group!`/`criterion_main!`) but replaces the statistical
//! machinery with a simple calibrated wall-clock loop: per benchmark it
//! runs a short warm-up to size the iteration count, measures
//! `sample_size` samples, and prints the median per-iteration time (plus
//! derived throughput when one was declared).
//!
//! `--bench` and benchmark-name filter arguments from `cargo bench` are
//! accepted; everything else is ignored.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared work-per-iteration, used to report derived throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How much setup output to build per batch in [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// One setup per measured iteration.
    SmallInput,
    /// One setup per measured iteration (alias here).
    LargeInput,
    /// One setup per measured iteration (alias here).
    PerIteration,
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher<'a> {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Measure `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: find an iteration count that runs long enough to time.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Measure `routine` on fresh input from `setup` each iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iters_per_sample = 1;
        self.samples.clear();
        for _ in 0..self.sample_size.max(1) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median_per_iter(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        Some(median / u32::try_from(self.iters_per_sample).unwrap_or(u32::MAX))
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<String>,
        F: FnOnce(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into());
        if !self.criterion.matches_filter(&full) {
            return self;
        }
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size: self.sample_size,
            _marker: std::marker::PhantomData,
        };
        f(&mut b);
        match b.median_per_iter() {
            Some(per_iter) => {
                let rate = self.throughput.map(|t| describe_rate(t, per_iter));
                println!(
                    "bench {full:<50} {:>12}/iter{}",
                    format_duration(per_iter),
                    rate.map(|r| format!("   {r}")).unwrap_or_default()
                );
            }
            None => println!("bench {full:<50} (no samples)"),
        }
        self
    }

    /// Finish the group (no-op; samples print as they run).
    pub fn finish(&mut self) {}
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

fn describe_rate(t: Throughput, per_iter: Duration) -> String {
    let secs = per_iter.as_secs_f64().max(1e-12);
    match t {
        Throughput::Bytes(b) => {
            let mibps = b as f64 / secs / (1024.0 * 1024.0);
            format!("{mibps:.1} MiB/s")
        }
        Throughput::Elements(n) => {
            let eps = n as f64 / secs;
            format!("{eps:.0} elem/s")
        }
    }
}

/// The bench harness handle.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    /// Parse `cargo bench` CLI arguments (`--bench`, optional name filter).
    fn default() -> Criterion {
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--test" | "--nocapture" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
            criterion: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<String>,
        F: FnOnce(&mut Bencher<'_>),
    {
        let id = id.into();
        self.benchmark_group(&id).bench_function("single", f);
        self
    }

    fn matches_filter(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }

    /// Final configuration hook (no-op).
    pub fn final_summary(&self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: Some("nomatch".into()) };
        let mut g = c.benchmark_group("demo");
        g.bench_function("skipped", |_b| panic!("must not run"));
        g.finish();
    }
}
