//! Case runner and configuration for the proptest stand-in.

use rand::{SeedableRng, StdRng};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Accepted for compatibility; this stand-in never shrinks.
    pub max_shrink_iters: u32,
    /// Cap on `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256, max_shrink_iters: 1024, max_global_rejects: 65536 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// A `prop_assert*` failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` failed: discard this case.
    Reject(String),
}

impl TestCaseError {
    /// Property violation.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// Case discard.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

/// Stable seed derived from the test name (FNV-1a), so every run samples
/// the same cases — reproducibility instead of OS entropy.
fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `config.cases` sampled cases of `case`, which returns the debug
/// rendering of the sampled inputs plus the case outcome. Panics (like a
/// failed `#[test]`) on the first `Fail`, printing the inputs.
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut StdRng) -> (String, Result<(), TestCaseError>),
) {
    let mut rng = StdRng::seed_from_u64(seed_for(name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        if rejected > config.max_global_rejects {
            panic!(
                "proptest '{name}': too many prop_assume! rejections \
                 ({rejected} rejects for {passed} passes)"
            );
        }
        let (dbg, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(reason)) => {
                panic!("proptest case failed: {reason}\n  test: {name}\n  inputs: {dbg}");
            }
        }
    }
}
