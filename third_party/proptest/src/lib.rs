//! Minimal offline stand-in for the `proptest` crate.
//!
//! Deterministic seeded sampling with the proptest surface this workspace
//! uses: `proptest!` (with `#![proptest_config(..)]`), `Strategy` with
//! `prop_map`/`boxed`, ranges, `Just`, `any`, tuple strategies,
//! `collection::vec`, `prop_oneof!`, the `prop_assert*` family,
//! `prop_assume!`, and `prop::sample::Index`.
//!
//! Differences from real proptest: cases are sampled from a seed derived
//! from the test name (fully reproducible), and failing cases are NOT
//! shrunk — the failing arguments are printed instead.

use rand::{Rng, RngCore, StdRng};
use std::fmt::Debug;

pub mod test_runner;

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform produced values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Build from the alternatives; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].sample(rng)
    }
}

// ---- range strategies ----------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

// ---- tuple strategies ----------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($idx:tt $name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---- any / Arbitrary -----------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.gen::<f64>()
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---- collection ----------------------------------------------------------

/// `proptest::collection`: sized collection strategies.
pub mod collection {
    use super::*;

    /// Acceptable length specifications for [`vec`].
    pub trait SizeRange {
        /// Draw a length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for vectors of `element` with length drawn from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vector strategy constructor (`proptest::collection::vec`).
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

// ---- sample --------------------------------------------------------------

/// `proptest::sample`: index selection.
pub mod sample {
    /// An abstract index, resolved against a concrete length at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(pub(crate) usize);

    impl Index {
        /// Map onto `0..len`. Panics if `len == 0`, as real proptest does.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl super::Arbitrary for Index {
        fn arbitrary(rng: &mut super::StdRng) -> Index {
            use rand::RngCore;
            Index(rng.next_u64() as usize)
        }
    }
}

// ---- macros --------------------------------------------------------------

/// Choose uniformly among alternative strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assert inside a proptest body; failure reports the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` == `{:?}`", __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (`{:?}` != `{:?}`)", format!($($fmt)+), __a, __b),
            ));
        }
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{:?}` != `{:?}`", __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a != *__b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (`{:?}` == `{:?}`)", format!($($fmt)+), __a, __b),
            ));
        }
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($argp:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run_cases(
                    &__config,
                    stringify!($name),
                    |__rng| {
                        let __vals = ($($crate::Strategy::sample(&($strat), __rng),)+);
                        let __dbg = format!("{:?}", __vals);
                        let ($($argp,)+) = __vals;
                        let __result = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                            { $body }
                            ::core::result::Result::Ok(())
                        })();
                        (__dbg, __result)
                    },
                );
            }
        )*
    };
}

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn composite() -> impl Strategy<Value = (usize, bool)> {
        prop_oneof![(1usize..4).prop_map(|v| (v, true)), Just((0usize, false)),]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 1usize..10, y in 0u8..=3, v in prop::collection::vec(any::<u8>(), 0..5)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(y <= 3);
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn oneof_and_map(pair in composite()) {
            let (v, flag) = pair;
            if flag {
                prop_assert!((1..4).contains(&v));
            } else {
                prop_assert_eq!(v, 0);
            }
        }

        #[test]
        fn assume_rejects(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn index_resolves(ix in any::<prop::sample::Index>()) {
            prop_assert!(ix.index(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_case_panics_with_args() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100, "impossible");
            }
        }
        inner();
    }
}
