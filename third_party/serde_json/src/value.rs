//! `Value`, `Map`, and `Number` — the JSON document model.

use serde::Content;
use std::fmt;

/// An insertion-ordered string-keyed map (the `Value::Object` payload).
///
/// Backed by a `Vec` of pairs: JSON documents in this workspace are small
/// and order-preserving output is worth more than O(1) lookup.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// Empty map.
    pub fn new() -> Map<String, Value> {
        Map { entries: Vec::new() }
    }

    /// Insert, replacing any existing entry with the same key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find_map(|(k, v)| (k == key).then_some(v))
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries.iter_mut().find_map(|(k, v)| (k.as_str() == key).then_some(v))
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Remove and return the entry with this key.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterate keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterate values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// A JSON number: either integer (signed/unsigned) or float.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// As u64 if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::PosInt(v) => Some(*v),
            Number::NegInt(v) => u64::try_from(*v).ok(),
            Number::Float(_) => None,
        }
    }

    /// As i64 if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::PosInt(v) => i64::try_from(*v).ok(),
            Number::NegInt(v) => Some(*v),
            Number::Float(_) => None,
        }
    }

    /// As f64 (always representable, possibly lossy).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Number::PosInt(v) => Some(*v as f64),
            Number::NegInt(v) => Some(*v as f64),
            Number::Float(v) => Some(*v),
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self, other) {
            (Number::Float(a), Number::Float(b)) => a == b,
            (Number::Float(_), _) | (_, Number::Float(_)) => self.as_f64() == other.as_f64(),
            _ => match (self.as_i64(), other.as_i64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_u64() == other.as_u64(),
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            // {:?} gives the shortest string that round-trips the float;
            // non-finite values are not representable in JSON.
            Number::Float(v) if v.is_finite() => write!(f, "{v:?}"),
            Number::Float(_) => write!(f, "null"),
        }
    }
}

/// A JSON document node.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Build from a serde `Content` tree.
    pub fn from_content(c: &Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::I64(v) => Value::Number(Number::NegInt(*v)),
            Content::U64(v) => Value::Number(Number::PosInt(*v)),
            Content::F64(v) => Value::Number(Number::Float(*v)),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => Value::Array(items.iter().map(Value::from_content).collect()),
            Content::Map(entries) => {
                let mut m = Map::new();
                for (k, v) in entries {
                    let key = match k {
                        Content::Str(s) => s.clone(),
                        Content::U64(n) => n.to_string(),
                        Content::I64(n) => n.to_string(),
                        Content::Bool(b) => b.to_string(),
                        other => crate::print::print(other, false),
                    };
                    m.insert(key, Value::from_content(v));
                }
                Value::Object(m)
            }
        }
    }

    /// Convert into a serde `Content` tree.
    pub fn into_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::Number(Number::PosInt(v)) => Content::U64(*v),
            Value::Number(Number::NegInt(v)) => Content::I64(*v),
            Value::Number(Number::Float(v)) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(items) => Content::Seq(items.iter().map(Value::into_content).collect()),
            Value::Object(m) => Content::Map(
                m.iter().map(|(k, v)| (Content::Str(k.clone()), v.into_content())).collect(),
            ),
        }
    }

    /// Object field lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Whether this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// As bool if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As &str if string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As u64 if a representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As i64 if a representable number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As f64 if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// As array slice if an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// As object map if an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::print::print(&self.into_content(), f.alternate()))
    }
}

impl serde::Serialize for Value {
    fn ser(&self) -> Content {
        self.into_content()
    }
}

impl<'de> serde::Deserialize<'de> for Value {
    fn deser(c: &Content) -> Result<Value, serde::DeError> {
        Ok(Value::from_content(c))
    }
}

// --- Literal comparisons used in tests: value == "str" / 500 / true -------

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => {
                        i128::from(*other) >= 0 && n.as_u64() == u64::try_from(i128::from(*other)).ok()
                            || i128::from(*other) < 0 && n.as_i64().map(i128::from) == Some(i128::from(*other))
                    }
                    _ => false,
                }
            }
        }
    )*};
}
eq_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        self.as_u64() == Some(*other as u64)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

// --- Conversions ----------------------------------------------------------

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Number(Number::PosInt(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        if v >= 0 {
            Value::Number(Number::PosInt(v as u64))
        } else {
            Value::Number(Number::NegInt(v))
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}
