//! JSON printer (compact and 2-space-indented pretty form).

use serde::Content;

pub(crate) fn print(c: &Content, pretty: bool) -> String {
    let mut out = String::new();
    write_value(&mut out, c, pretty, 0);
    out
}

fn write_value(out: &mut String, c: &Content, pretty: bool, indent: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // {:?} prints the shortest representation that round-trips.
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    newline_indent(out, indent + 1);
                }
                write_value(out, item, pretty, indent + 1);
            }
            if pretty {
                newline_indent(out, indent);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    newline_indent(out, indent + 1);
                }
                write_key(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, v, pretty, indent + 1);
            }
            if pretty {
                newline_indent(out, indent);
            }
            out.push('}');
        }
    }
}

/// JSON object keys must be strings; stringify non-string keys (this is
/// how integer-keyed maps round-trip, matching real serde_json).
fn write_key(out: &mut String, k: &Content) {
    match k {
        Content::Str(s) => write_string(out, s),
        Content::U64(v) => write_string(out, &v.to_string()),
        Content::I64(v) => write_string(out, &v.to_string()),
        Content::Bool(v) => write_string(out, &v.to_string()),
        Content::F64(v) => write_string(out, &format!("{v:?}")),
        other => write_string(out, &print(other, false)),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}
