//! Minimal offline stand-in for the `serde_json` crate, built on the
//! `Content`-tree stand-in `serde`.
//!
//! Provides [`Value`]/[`Map`]/[`Number`], the `to_string`/`to_vec`
//! (+`_pretty`) and `from_str`/`from_slice` entry points, a recursive
//! descent JSON parser, and a [`json!`] macro with the classic
//! token-muncher shape so nested object literals work.

use std::fmt;

mod macros;
mod parse;
mod print;
mod value;

pub use value::{Map, Number, Value};

/// Error raised by JSON parsing or serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(print::print(&value.ser(), false))
}

/// Serialize to a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(print::print(&value.ser(), true))
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Serialize into a writer (compact).
pub fn to_writer<W: std::io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    writer.write_all(to_string(value)?.as_bytes()).map_err(|e| Error::new(e.to_string()))
}

/// Deserialize from a JSON string.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T> {
    let content = parse::parse(s)?;
    T::deser(&content).map_err(Error::from)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Convert any serializable value into a [`Value`] tree (infallible here;
/// used by the `json!` macro).
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    Value::from_content(&value.ser())
}

/// Convert a [`Value`] tree into any deserializable type.
pub fn from_value<T: serde::de::DeserializeOwned>(value: Value) -> Result<T> {
    T::deser(&value.into_content()).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v: Value =
            from_str(r#"{"a": [1, -2, 3.5], "b": null, "c": "x\ny", "d": true}"#).unwrap();
        let s = to_string(&v).unwrap();
        let v2: Value = from_str(&s).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn json_macro_shapes() {
        let n = 7u64;
        let v = json!({
            "flat": n,
            "nested": { "deep": [1, 2], "flag": false },
            "s": "hi",
        });
        assert_eq!(v["flat"], 7);
        assert_eq!(v["nested"]["deep"][1], 2);
        assert_eq!(v["nested"]["flag"], false);
        assert_eq!(v["s"], "hi");
        assert!(v["missing"].is_null());
    }

    #[test]
    fn pretty_parses_back() {
        let v = json!({"k": [true, null, {"x": 1.25}]});
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn float_roundtrip() {
        let v = json!({"f": 0.1, "g": 1e300, "h": 1.0});
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back["f"].as_f64(), Some(0.1));
        assert_eq!(back["g"].as_f64(), Some(1e300));
        assert_eq!(back["h"].as_f64(), Some(1.0));
    }

    #[test]
    fn string_escapes() {
        let v: Value = from_str(r#""a\"b\\cA\n\té""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\cA\n\t\u{e9}"));
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }
}
