//! Recursive-descent JSON parser producing a serde `Content` tree.

use crate::Error;
use serde::Content;

pub(crate) fn parse(input: &str) -> Result<Content, Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Content::Str),
            Some(b't') | Some(b'f') => {
                if self.eat_keyword("true") {
                    Ok(Content::Bool(true))
                } else if self.eat_keyword("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Content::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected JSON value")),
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Content::Map(entries)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Content::Seq(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the unescaped run in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low surrogate.
                            if !(self.bump() == Some(b'\\') && self.bump() == Some(b'u')) {
                                return Err(self.err("unpaired surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code).ok_or_else(|| self.err("invalid codepoint"))?,
                        );
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>().map(Content::F64).map_err(|_| self.err("invalid number"))
    }
}
