//! The `json!` macro: a token-muncher so object/array literals can nest
//! and values can be arbitrary expressions (the standard construction for
//! JSON literal macros; `$value:expr` alone cannot absorb `{ .. }`).

/// Build a [`crate::Value`] from a JSON-like literal.
///
/// Supports `null`, booleans, numbers, strings, arbitrary serializable
/// expressions, arrays `[ .. ]`, and nested objects `{ "key": value }`.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => {
        $crate::json_internal!($($tt)+)
    };
}

/// Implementation detail of [`json!`]; do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- terminals -------------------------------------------------------
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };

    // ---- arrays ----------------------------------------------------------
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };

    // ---- objects ---------------------------------------------------------
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut __object = $crate::Map::new();
        $crate::json_internal!(@object __object () ($($tt)+));
        $crate::Value::Object(__object)
    }};

    // ---- any other expression -------------------------------------------
    ($other:expr) => { $crate::to_value(&$other) };

    // ======================================================================
    // @array: accumulate parsed elements in [$($elems),*]
    // ======================================================================
    // Done (ignore optional trailing comma already consumed).
    (@array [$($elems:expr,)*]) => {
        <[_]>::into_vec(::std::boxed::Box::new([$($elems,)*]))
    };
    // Next element is a nested array.
    (@array [$($elems:expr,)*] [$($arr:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($arr)*]),] $($($rest)*)?)
    };
    // Next element is a nested object.
    (@array [$($elems:expr,)*] {$($map:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*}),] $($($rest)*)?)
    };
    // Next element is `null` / `true` / `false`.
    (@array [$($elems:expr,)*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Null,] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] true $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Bool(true),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] false $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Bool(false),] $($($rest)*)?)
    };
    // Next element is an expression followed by comma (or last).
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::to_value(&$next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::to_value(&$last),])
    };

    // ======================================================================
    // @object: munch `key: value` pairs into $object
    // (current key accumulates in the () group until `:` is seen)
    // ======================================================================
    // Done.
    (@object $object:ident () ()) => {};
    // Value is a nested object.
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $(, $($rest:tt)*)?)) => {
        $object.insert(($($key)+).into(), $crate::json_internal!({$($map)*}));
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    // Value is a nested array.
    (@object $object:ident ($($key:tt)+) (: [$($arr:tt)*] $(, $($rest:tt)*)?)) => {
        $object.insert(($($key)+).into(), $crate::json_internal!([$($arr)*]));
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    // Value is `null` / `true` / `false`.
    (@object $object:ident ($($key:tt)+) (: null $(, $($rest:tt)*)?)) => {
        $object.insert(($($key)+).into(), $crate::Value::Null);
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    (@object $object:ident ($($key:tt)+) (: true $(, $($rest:tt)*)?)) => {
        $object.insert(($($key)+).into(), $crate::Value::Bool(true));
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    (@object $object:ident ($($key:tt)+) (: false $(, $($rest:tt)*)?)) => {
        $object.insert(($($key)+).into(), $crate::Value::Bool(false));
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    // Value is an expression followed by a comma.
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*)) => {
        $object.insert(($($key)+).into(), $crate::to_value(&$value));
        $crate::json_internal!(@object $object () ($($rest)*));
    };
    // Value is the last expression (no trailing comma).
    (@object $object:ident ($($key:tt)+) (: $value:expr)) => {
        $object.insert(($($key)+).into(), $crate::to_value(&$value));
    };
    // Munch one token into the current key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*)) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*));
    };
}
