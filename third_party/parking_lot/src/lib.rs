//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API
//! (no lock poisoning: a poisoned std lock is recovered into its inner
//! guard). Only the surface this workspace uses is provided: [`Mutex`],
//! [`RwLock`] and [`Condvar`].

use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Outcome of a timed [`Condvar`] wait.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable paired with [`Mutex`] guards.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified. The guard is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(guard, |g| self.0.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(guard, |g| {
            let (g, r) = self.0.wait_timeout(g, timeout).unwrap_or_else(PoisonError::into_inner);
            timed_out = r.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wake one waiter.
    ///
    /// Divergence from real parking_lot: that `notify_one` returns
    /// `bool` (whether a thread was woken). std exposes no wake count,
    /// so rather than fabricate a value callers could branch on, this
    /// stub returns `()` — code consuming the result fails to compile
    /// here instead of silently misbehaving.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    ///
    /// Divergence from real parking_lot: that `notify_all` returns
    /// `usize` (number of threads woken); see [`Condvar::notify_one`]
    /// for why this stub returns `()` instead.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Move the guard out of `&mut`, run `f` on it, and put the result back.
/// std's condvar consumes the guard; parking_lot's borrows it.
fn take_guard<'a, T: ?Sized>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // Aborts if dropped; disarmed with `mem::forget` once the slot is
    // whole again. While `f` runs, `*slot` holds a bit-copy of a guard
    // that `f` owns: unwinding out of `f` (std::sync::Condvar panics if
    // one condvar is paired with two different mutexes) would drop the
    // moved-out guard and later the stale copy — a double unlock, UB.
    // Aborting is the only sound exit on that path.
    struct AbortOnUnwind;
    impl Drop for AbortOnUnwind {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    // SAFETY: we need ownership of the guard to call std's wait, so read
    // a copy out of the slot and hand it to `f`. Sound because `f`
    // returns a guard for the same mutex which overwrites the slot, the
    // moved-out value is never dropped here, and a panic in `f` aborts
    // before the caller can observe (and drop) the stale copy.
    unsafe {
        let owned = std::ptr::read(slot);
        let bomb = AbortOnUnwind;
        let back = f(owned);
        std::mem::forget(bomb);
        std::ptr::write(slot, back);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
