/root/repo/third_party/parking_lot/target/debug/deps/parking_lot-fa1319cb2f61dd41.d: src/lib.rs

/root/repo/third_party/parking_lot/target/debug/deps/libparking_lot-fa1319cb2f61dd41.rlib: src/lib.rs

/root/repo/third_party/parking_lot/target/debug/deps/libparking_lot-fa1319cb2f61dd41.rmeta: src/lib.rs

src/lib.rs:
