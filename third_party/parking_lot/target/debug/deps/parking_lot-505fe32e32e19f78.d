/root/repo/third_party/parking_lot/target/debug/deps/parking_lot-505fe32e32e19f78.d: src/lib.rs

/root/repo/third_party/parking_lot/target/debug/deps/parking_lot-505fe32e32e19f78: src/lib.rs

src/lib.rs:
