//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Provides only `crossbeam::channel` with MPMC [`channel::Sender`] /
//! [`channel::Receiver`] built on a `Mutex<VecDeque>` + `Condvar`.
//! Semantics match what this workspace relies on:
//! - receivers are cloneable (work-stealing consumers),
//! - `send` fails once every receiver is dropped,
//! - `recv` fails once every sender is dropped and the queue is empty,
//! - `bounded(cap)` blocks senders at capacity; `try_send` reports `Full`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream crossbeam, Debug elides the payload so `T: Debug` is
    // not required (the payload may be an unsized closure box).
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and at capacity.
        Full(T),
        /// All receivers were dropped.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "Full(..)"),
                TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    impl<T> std::error::Error for TrySendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is drained
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders were dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half of a channel. Cloneable (multi-producer).
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of a channel. Cloneable (multi-consumer).
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            // Decrement under the queue lock so a receiver cannot observe a
            // live sender and then miss this wakeup (lost-notify race).
            let guard = self.0.lock();
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.0.not_empty.notify_all();
            }
            drop(guard);
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let guard = self.0.lock();
            if self.0.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.0.not_full.notify_all();
                // Blocked receivers on other clones must also re-check.
                self.0.not_empty.notify_all();
            }
            drop(guard);
        }
    }

    impl<T> Sender<T> {
        /// Send, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let sh = &*self.0;
            let mut q = sh.lock();
            loop {
                if sh.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(value));
                }
                match sh.capacity {
                    Some(cap) if q.len() >= cap => {
                        q = sh.not_full.wait(q).unwrap_or_else(PoisonError::into_inner);
                    }
                    _ => break,
                }
            }
            q.push_back(value);
            drop(q);
            sh.not_empty.notify_one();
            Ok(())
        }

        /// Send without blocking.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let sh = &*self.0;
            let mut q = sh.lock();
            if sh.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = sh.capacity {
                if q.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            q.push_back(value);
            drop(q);
            sh.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.lock().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until a message arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let sh = &*self.0;
            let mut q = sh.lock();
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    sh.not_full.notify_one();
                    return Ok(v);
                }
                if sh.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = sh.not_empty.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let sh = &*self.0;
            let mut q = sh.lock();
            if let Some(v) = q.pop_front() {
                drop(q);
                sh.not_full.notify_one();
                return Ok(v);
            }
            if sh.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.0.lock().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator over messages until disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Non-blocking iterator draining currently queued messages.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Non-blocking iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Create a bounded MPMC channel with the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn mpmc_roundtrip() {
        let (tx, rx) = channel::unbounded();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx2.recv(), Ok(2));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn recv_fails_after_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, _rx) = channel::bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(channel::TrySendError::Full(2))));
    }

    #[test]
    fn workers_drain_shared_queue() {
        let (tx, rx) = channel::unbounded();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut n = 0u32;
                    while rx.recv().is_ok() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100);
    }
}
