//! Minimal offline stand-in for the `serde` crate.
//!
//! Instead of serde's visitor-based zero-copy architecture, this stand-in
//! routes everything through one owned tree type, [`Content`] (the same
//! role as `serde_json::Value`, but format-agnostic). `Serialize` renders
//! a value into a `Content` tree; `Deserialize` rebuilds a value from one.
//! The companion `serde_derive` stand-in generates impls against exactly
//! this surface, and the `serde_json` stand-in converts `Content` to and
//! from JSON text.
//!
//! Fidelity notes (matching real serde where this workspace depends on it):
//! - structs ↔ string-keyed maps; missing fields honor `#[serde(default)]`
//!   and `Option` fields fall back to `None`;
//! - enums use the externally-tagged representation (`"Variant"` for unit
//!   variants, `{"Variant": payload}` otherwise);
//! - `Duration` serializes as `{"secs": u64, "nanos": u32}`;
//! - integer map keys round-trip through their string form, as they do
//!   through JSON.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;
use std::time::Duration;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The owned data-model tree every value serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (negative values land here).
    I64(i64),
    /// Unsigned integer (non-negative integers land here).
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, tuples, tuple structs).
    Seq(Vec<Content>),
    /// Ordered key/value pairs (structs, maps, tagged enum payloads).
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// Borrow the map entries if this is a map.
    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow the elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short name of this node's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) => "integer",
            Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Look up a string key in map entries (helper for generated code).
pub fn __content_get<'a>(entries: &'a [(Content, Content)], key: &str) -> Option<&'a Content> {
    entries.iter().find_map(|(k, v)| match k {
        Content::Str(s) if s == key => Some(v),
        _ => None,
    })
}

/// Deserialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Build an error from any message.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }

    /// serde-compatible constructor name.
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Render `self` into a [`Content`] tree.
pub trait Serialize {
    /// Produce the data-model tree for this value.
    fn ser(&self) -> Content;
}

/// Rebuild `Self` from a [`Content`] tree. The lifetime mirrors real
/// serde's signature; this owned-tree stand-in never borrows from input.
pub trait Deserialize<'de>: Sized {
    /// Parse from the data-model tree.
    fn deser(content: &Content) -> Result<Self, DeError>;

    /// Value to use when a struct field is absent (no `#[serde(default)]`).
    /// Errors for everything except `Option`, matching serde semantics.
    fn deser_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError::new(format!("missing field `{field}`")))
    }
}

/// Owned deserialization marker, as in `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Mirror of `serde::de`.
pub mod de {
    pub use super::{DeError as Error, Deserialize, DeserializeOwned};
}

/// Mirror of `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser(&self) -> Content {
        (**self).ser()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn ser(&self) -> Content {
        (**self).ser()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn ser(&self) -> Content {
        (**self).ser()
    }
}

impl Serialize for bool {
    fn ser(&self) -> Content {
        Content::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn ser(&self) -> Content {
        if *self <= u64::MAX as u128 {
            Content::U64(*self as u64)
        } else {
            Content::F64(*self as f64)
        }
    }
}

impl Serialize for f64 {
    fn ser(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for f32 {
    fn ser(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Serialize for char {
    fn ser(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for str {
    fn ser(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn ser(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for () {
    fn ser(&self) -> Content {
        Content::Null
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn ser(&self) -> Content {
        match self {
            Some(v) => v.ser(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn ser(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn ser(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::ser).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($idx:tt $name:ident),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn ser(&self) -> Content {
                Content::Seq(vec![$(self.$idx.ser()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn ser(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.ser(), v.ser())).collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn ser(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.ser(), v.ser())).collect())
    }
}

impl Serialize for Duration {
    fn ser(&self) -> Content {
        Content::Map(vec![
            (Content::Str("secs".into()), Content::U64(self.as_secs())),
            (Content::Str("nanos".into()), Content::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

fn want(expected: &str, got: &Content) -> DeError {
    DeError::new(format!("expected {expected}, found {}", got.kind()))
}

impl<'de> Deserialize<'de> for bool {
    fn deser(c: &Content) -> Result<bool, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(want("bool", c)),
        }
    }
}

/// Integers accept either integer node and, for JSON map keys, the string
/// form (JSON object keys are always strings).
macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deser(c: &Content) -> Result<$t, DeError> {
                let out_of_range = || DeError::new(format!(
                    "integer out of range for {}", stringify!($t)
                ));
                match c {
                    Content::U64(v) => <$t>::try_from(*v).map_err(|_| out_of_range()),
                    Content::I64(v) => <$t>::try_from(*v).map_err(|_| out_of_range()),
                    Content::F64(v) if v.fract() == 0.0 => Ok(*v as $t),
                    Content::Str(s) => s.parse::<$t>().map_err(|_| want("integer", c)),
                    _ => Err(want("integer", c)),
                }
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for u128 {
    fn deser(c: &Content) -> Result<u128, DeError> {
        match c {
            Content::U64(v) => Ok(u128::from(*v)),
            Content::I64(v) => u128::try_from(*v).map_err(|_| want("u128", c)),
            Content::F64(v) if *v >= 0.0 => Ok(*v as u128),
            Content::Str(s) => s.parse::<u128>().map_err(|_| want("u128", c)),
            _ => Err(want("u128", c)),
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deser(c: &Content) -> Result<f64, DeError> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            _ => Err(want("float", c)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deser(c: &Content) -> Result<f32, DeError> {
        f64::deser(c).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deser(c: &Content) -> Result<char, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(want("single-char string", c)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deser(c: &Content) -> Result<String, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(want("string", c)),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deser(c: &Content) -> Result<(), DeError> {
        match c {
            Content::Null => Ok(()),
            _ => Err(want("null", c)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deser(c: &Content) -> Result<Option<T>, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::deser(other).map(Some),
        }
    }

    fn deser_missing(_field: &str) -> Result<Option<T>, DeError> {
        Ok(None)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deser(c: &Content) -> Result<Box<T>, DeError> {
        T::deser(c).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {
    fn deser(c: &Content) -> Result<std::sync::Arc<T>, DeError> {
        T::deser(c).map(std::sync::Arc::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deser(c: &Content) -> Result<Vec<T>, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::deser).collect(),
            _ => Err(want("sequence", c)),
        }
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deser(c: &Content) -> Result<[T; N], DeError> {
        let v = Vec::<T>::deser(c)?;
        <[T; N]>::try_from(v)
            .map_err(|v: Vec<T>| DeError::new(format!("expected {N} elements, found {}", v.len())))
    }
}

macro_rules! de_tuple {
    ($(($len:literal: $($idx:tt $name:ident),+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deser(c: &Content) -> Result<($($name,)+), DeError> {
                let items = c.as_seq().ok_or_else(|| want("sequence", c))?;
                if items.len() != $len {
                    return Err(DeError::new(format!(
                        "expected tuple of {}, found {} elements", $len, items.len()
                    )));
                }
                Ok(($($name::deser(&items[$idx])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1: 0 A)
    (2: 0 A, 1 B)
    (3: 0 A, 1 B, 2 C)
    (4: 0 A, 1 B, 2 C, 3 D)
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
{
    fn deser(c: &Content) -> Result<HashMap<K, V>, DeError> {
        match c {
            Content::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((K::deser(k)?, V::deser(v)?))).collect()
            }
            _ => Err(want("map", c)),
        }
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deser(c: &Content) -> Result<BTreeMap<K, V>, DeError> {
        match c {
            Content::Map(entries) => {
                entries.iter().map(|(k, v)| Ok((K::deser(k)?, V::deser(v)?))).collect()
            }
            _ => Err(want("map", c)),
        }
    }
}

impl<'de> Deserialize<'de> for Duration {
    fn deser(c: &Content) -> Result<Duration, DeError> {
        let m = c.as_map().ok_or_else(|| want("duration map", c))?;
        let secs = __content_get(m, "secs").ok_or_else(|| DeError::new("missing field `secs`"))?;
        let nanos =
            __content_get(m, "nanos").ok_or_else(|| DeError::new("missing field `nanos`"))?;
        Ok(Duration::new(u64::deser(secs)?, u32::deser(nanos)?))
    }
}

impl Serialize for Content {
    fn ser(&self) -> Content {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Content {
    fn deser(c: &Content) -> Result<Content, DeError> {
        Ok(c.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_is_none() {
        assert_eq!(Option::<u32>::deser_missing("x"), Ok(None));
        assert!(u32::deser_missing("x").is_err());
    }

    #[test]
    fn numeric_widening_and_keys() {
        assert_eq!(u64::deser(&Content::Str("17".into())), Ok(17));
        assert_eq!(i64::deser(&Content::U64(5)), Ok(5));
        assert_eq!(f64::deser(&Content::I64(-2)), Ok(-2.0));
        assert!(u8::deser(&Content::U64(300)).is_err());
    }

    #[test]
    fn duration_roundtrip() {
        let d = Duration::new(3, 500);
        assert_eq!(Duration::deser(&d.ser()), Ok(d));
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![(1usize, "a".to_string()), (2, "b".to_string())];
        let m: HashMap<usize, String> = v.into_iter().collect();
        assert_eq!(HashMap::<usize, String>::deser(&m.ser()), Ok(m));
        let t = (1u32, "x".to_string(), 2.5f64);
        assert_eq!(<(u32, String, f64)>::deser(&t.ser()), Ok(t));
    }
}
