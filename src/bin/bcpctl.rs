//! `bcpctl` — inspect, verify, and manage ByteCheckpoint checkpoints on a
//! local filesystem.
//!
//! ```text
//! bcpctl list    <job-root-dir>          # discover step_<N> checkpoints
//! bcpctl inspect <checkpoint-dir>        # metadata summary
//! bcpctl verify  <checkpoint-dir>        # decode every frame, check CRCs
//! bcpctl export  <checkpoint-dir> <out>  # consolidate into a .safetensors
//! bcpctl retain  <job-root-dir> <k>      # keep newest k, delete the rest
//! bcpctl gc      <job-root-dir>          # delete every torn (uncommitted) step
//! ```
//!
//! All commands run against the real on-disk checkpoint layout produced by
//! `bytecheckpoint::save` (per-rank frame files + global metadata + the
//! `COMPLETE` marker).

use bytecheckpoint::core::export::export_safetensors;
use bytecheckpoint::core::format::decode_frames;
use bytecheckpoint::core::metadata::{GlobalMetadata, METADATA_FILE};
use bytecheckpoint::prelude::{CheckpointManager, DiskBackend, DynBackend};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [cmd, dir] if cmd == "list" => cmd_list(dir),
        [cmd, dir] if cmd == "inspect" => cmd_inspect(dir),
        [cmd, dir] if cmd == "verify" => cmd_verify(dir),
        [cmd, dir, out] if cmd == "export" => cmd_export(dir, out),
        [cmd, dir, k] if cmd == "retain" => cmd_retain(dir, k),
        [cmd, dir] if cmd == "gc" => cmd_gc(dir),
        _ => {
            eprintln!(
                "usage: bcpctl <list|inspect|verify|gc> <dir> | export <dir> <out> | retain <dir> <k>"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bcpctl: {e}");
            ExitCode::FAILURE
        }
    }
}

type AnyError = Box<dyn std::error::Error>;

/// Open `dir` as (backend rooted at its parent, key prefix = its basename).
fn open(dir: &str) -> Result<(DynBackend, String), AnyError> {
    let path = Path::new(dir);
    let parent = path.parent().filter(|p| !p.as_os_str().is_empty()).unwrap_or(Path::new("."));
    let name = path
        .file_name()
        .ok_or_else(|| format!("{dir:?} has no final path component"))?
        .to_string_lossy()
        .to_string();
    let backend: DynBackend = Arc::new(DiskBackend::new(parent)?);
    Ok((backend, name))
}

fn human_bytes(n: u64) -> String {
    match n {
        0..=1023 => format!("{n} B"),
        1024..=1048575 => format!("{:.1} KiB", n as f64 / 1024.0),
        1048576..=1073741823 => format!("{:.1} MiB", n as f64 / 1048576.0),
        _ => format!("{:.2} GiB", n as f64 / 1073741824.0),
    }
}

fn cmd_list(dir: &str) -> Result<(), AnyError> {
    let (backend, root) = open(dir)?;
    let mgr = CheckpointManager::new(backend, root);
    let list = mgr.list()?;
    if list.is_empty() {
        println!("no step_<N> checkpoints under {dir}");
        return Ok(());
    }
    println!("{:>10}  {:<11}  {:>10}  prefix", "step", "state", "size");
    for c in &list {
        let size = mgr.stored_bytes(c.step).unwrap_or(0);
        println!(
            "{:>10}  {:<11}  {:>10}  {}/{}",
            c.step,
            if c.committed { "committed" } else { "UNCOMMITTED" },
            human_bytes(size),
            dir.trim_end_matches('/'),
            c.prefix.rsplit('/').next().unwrap_or(&c.prefix),
        );
    }
    if let Some(latest) = mgr.latest()? {
        println!("latest committed: step {}", latest.step);
    }
    Ok(())
}

fn read_metadata(backend: &DynBackend, prefix: &str) -> Result<GlobalMetadata, AnyError> {
    let bytes = backend.read(&format!("{prefix}/{METADATA_FILE}"))?;
    Ok(GlobalMetadata::from_bytes(&bytes)?)
}

fn cmd_inspect(dir: &str) -> Result<(), AnyError> {
    let (backend, prefix) = open(dir)?;
    let meta = read_metadata(&backend, &prefix)?;
    let committed = backend.exists(&format!("{prefix}/COMPLETE"))?;
    println!("checkpoint   {dir}");
    println!("framework    {}", meta.framework);
    println!("step         {}", meta.step);
    println!("parallelism  {} ({} ranks)", meta.source_parallelism, meta.source_world_size);
    println!("committed    {committed}");
    let tensors = meta.tensor_map.len();
    let shards: usize = meta.tensor_map.values().map(Vec::len).sum();
    println!("tensors      {tensors} logical, {shards} stored shards");
    println!("tensor bytes {}", human_bytes(meta.total_tensor_bytes()));
    if let Some(rep) = &meta.loader_map.replicated_file {
        println!(
            "dataloader   {} shard files + replicated ({rep})",
            meta.loader_map.shards.len()
        );
    }
    if !meta.extra_files.is_empty() {
        println!("extra state  {} rank files", meta.extra_files.len());
    }
    // Top tensors by size.
    let mut sizes: Vec<(&String, u64)> = meta
        .tensor_map
        .iter()
        .map(|(fqn, entries)| (fqn, entries.iter().map(|e| e.byte.length).sum()))
        .collect();
    sizes.sort_by_key(|(_, s)| std::cmp::Reverse(*s));
    println!("largest tensors:");
    for (fqn, s) in sizes.iter().take(5) {
        println!("  {:<48} {}", fqn, human_bytes(*s));
    }
    Ok(())
}

fn cmd_verify(dir: &str) -> Result<(), AnyError> {
    let (backend, prefix) = open(dir)?;
    let meta = read_metadata(&backend, &prefix)?;
    meta.validate().map_err(|e| format!("metadata invalid: {e}"))?;
    if !backend.exists(&format!("{prefix}/COMPLETE"))? {
        return Err("checkpoint has no COMPLETE marker (torn or in-progress save)".into());
    }
    // Decode every referenced storage file frame by frame (CRC-checked) and
    // cross-check that each ByteMeta points at a frame payload.
    let mut files: Vec<&String> =
        meta.tensor_map.values().flatten().map(|e| &e.byte.file).collect();
    files.sort();
    files.dedup();
    let mut total_frames = 0usize;
    for file in &files {
        let data = backend.read(&format!("{prefix}/{file}"))?;
        let frames = decode_frames(&data).map_err(|e| format!("{file}: {e}"))?;
        total_frames += frames.len();
    }
    let referenced: usize = meta.tensor_map.values().map(Vec::len).sum();
    if total_frames != referenced {
        return Err(format!(
            "frame count mismatch: files hold {total_frames}, metadata references {referenced}"
        )
        .into());
    }
    println!(
        "OK: {} files, {} frames, {} — all CRCs verified, metadata consistent",
        files.len(),
        total_frames,
        human_bytes(meta.total_tensor_bytes())
    );
    Ok(())
}

fn cmd_export(dir: &str, out: &str) -> Result<(), AnyError> {
    let (backend, prefix) = open(dir)?;
    let blob = export_safetensors(&backend, &prefix, false)?;
    std::fs::write(out, &blob)?;
    println!("wrote {} ({})", out, human_bytes(blob.len() as u64));
    Ok(())
}

fn cmd_retain(dir: &str, k: &str) -> Result<(), AnyError> {
    let keep: usize = k.parse().map_err(|_| format!("retain count {k:?} is not a number"))?;
    let (backend, root) = open(dir)?;
    let mgr = CheckpointManager::new(backend, root);
    let deleted = mgr.retain_last(keep)?;
    if deleted.is_empty() {
        println!("nothing to delete (≤{keep} committed checkpoints present)");
    } else {
        println!("deleted steps: {deleted:?}");
    }
    Ok(())
}

fn cmd_gc(dir: &str) -> Result<(), AnyError> {
    let (backend, root) = open(dir)?;
    let mgr = CheckpointManager::new(backend, root);
    let deleted = mgr.gc_torn()?;
    if deleted.is_empty() {
        println!("no torn checkpoints under {dir}");
    } else {
        println!("garbage-collected torn steps: {deleted:?}");
    }
    Ok(())
}
