//! `bcpctl` — inspect, verify, and manage ByteCheckpoint checkpoints on a
//! local filesystem.
//!
//! ```text
//! bcpctl list    <job-root-dir>          # discover step_<N> checkpoints
//! bcpctl inspect <checkpoint-dir>        # metadata summary
//! bcpctl verify  <checkpoint-dir>        # decode every frame, check CRCs
//! bcpctl export  <checkpoint-dir> <out>  # consolidate into a .safetensors
//! bcpctl retain  <job-root-dir> <k>      # keep newest k, delete the rest
//! bcpctl gc      <job-root-dir>          # delete every torn (uncommitted) step
//! bcpctl scrub   <job-root-dir> [flags]  # full-sweep integrity check (CI)
//! bcpctl report  <job-root-dir> [flags]  # offline telemetry report (§5.3)
//! bcpctl serve   <addr> [flags]          # run the checkpoint control plane
//! bcpctl jobs    <addr>                  # list jobs on a running coordinator
//! bcpctl status  <addr> <job-id>         # one job's control-plane status
//! ```
//!
//! All commands run against the real on-disk checkpoint layout produced by
//! `bytecheckpoint::save` (per-rank frame files + global metadata + the
//! `COMPLETE` marker). `report` additionally reads the `_telemetry.jsonl`
//! artifacts each committed save persists next to the checkpoint, and needs
//! no live process: heat map, per-rank breakdown, critical path, percentile
//! histograms, slow-I/O alerts, and regressions against the prior steps are
//! all reconstructed from the persisted spans and records. Flags:
//! `--step <N>` (default: latest committed), `--load` (analyze the load
//! artifact instead of the save one), `--min-mbps <X>` (slow-I/O threshold,
//! default 10), `--trace <out.json>` (dump a Chrome/Perfetto trace),
//! `--csv <out.csv>` (dump the flat records).
//!
//! `scrub` sweeps every `step_<N>` under the job root: metadata must parse
//! and validate, every `ByteMeta` file/offset/length must exist and land on
//! a CRC-verified frame payload, and unreferenced files are reported as
//! orphans. Any defect in a *committed* step makes the process exit
//! non-zero (for CI); uncommitted torn debris is named but only fails the
//! run when no committed step exists. `--quarantine` moves each corrupt
//! committed step aside to `<root>/quarantine/` so the next `load_latest`
//! resumes from the newest clean step.
//!
//! `serve` runs the multi-job checkpoint control plane (`bcp-coordinator`):
//! a JSON-lines-over-TCP daemon doing job registration with typed
//! admission/backpressure, per-job commit telemetry, and global fair-share
//! storage-bandwidth scheduling. Flags: `--max-jobs <N>` (admission slots,
//! default 64), `--rate-mbps <X>` (shared bandwidth envelope, default 256),
//! `--for-seconds <S>` (exit after S seconds; default: run until killed).
//! `jobs` and `status` are thin wire clients against a running `serve`.

use bytecheckpoint::coordinator::{
    AdmissionPolicy, CoordinatorClient, CoordinatorServer, CoordinatorService, SchedulerConfig,
};
use bytecheckpoint::core::export::export_safetensors;
use bytecheckpoint::core::format::decode_frames;
use bytecheckpoint::core::metadata::{GlobalMetadata, METADATA_FILE};
use bytecheckpoint::core::telemetry::read_step_telemetry;
use bytecheckpoint::monitor::analysis::{critical_path, phase_percentiles, regressions};
use bytecheckpoint::monitor::export::{chrome_trace, records_csv};
use bytecheckpoint::monitor::{
    render_breakdown, render_heatmap, HeatmapSpec, StepTelemetry, TELEMETRY_LOAD_FILE,
    TELEMETRY_SAVE_FILE,
};
use bytecheckpoint::prelude::{scrub_tree, CheckpointManager, DiskBackend, DynBackend};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [cmd, dir] if cmd == "list" => cmd_list(dir),
        [cmd, dir] if cmd == "inspect" => cmd_inspect(dir),
        [cmd, dir] if cmd == "verify" => cmd_verify(dir),
        [cmd, dir, out] if cmd == "export" => cmd_export(dir, out),
        [cmd, dir, k] if cmd == "retain" => cmd_retain(dir, k),
        [cmd, dir] if cmd == "gc" => cmd_gc(dir),
        [cmd, dir, flags @ ..] if cmd == "scrub" => cmd_scrub(dir, flags),
        [cmd, dir, flags @ ..] if cmd == "report" => cmd_report(dir, flags),
        [cmd, addr, flags @ ..] if cmd == "serve" => cmd_serve(addr, flags),
        [cmd, addr] if cmd == "jobs" => cmd_jobs(addr),
        [cmd, addr, job_id] if cmd == "status" => cmd_status(addr, job_id),
        _ => {
            eprintln!(
                "usage: bcpctl <list|inspect|verify|gc> <dir> | export <dir> <out> | retain <dir> <k> | scrub <dir> [--quarantine] | report <dir> [--step N] [--load] [--min-mbps X] [--trace out.json] [--csv out.csv] | serve <addr> [--max-jobs N] [--rate-mbps X] [--for-seconds S] | jobs <addr> | status <addr> <job-id>"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bcpctl: {e}");
            ExitCode::FAILURE
        }
    }
}

type AnyError = Box<dyn std::error::Error>;

/// Open `dir` as (backend rooted at its parent, key prefix = its basename).
fn open(dir: &str) -> Result<(DynBackend, String), AnyError> {
    let path = Path::new(dir);
    let parent = path.parent().filter(|p| !p.as_os_str().is_empty()).unwrap_or(Path::new("."));
    let name = path
        .file_name()
        .ok_or_else(|| format!("{dir:?} has no final path component"))?
        .to_string_lossy()
        .to_string();
    let backend: DynBackend = Arc::new(DiskBackend::new(parent)?);
    Ok((backend, name))
}

fn human_bytes(n: u64) -> String {
    match n {
        0..=1023 => format!("{n} B"),
        1024..=1048575 => format!("{:.1} KiB", n as f64 / 1024.0),
        1048576..=1073741823 => format!("{:.1} MiB", n as f64 / 1048576.0),
        _ => format!("{:.2} GiB", n as f64 / 1073741824.0),
    }
}

fn cmd_list(dir: &str) -> Result<(), AnyError> {
    let (backend, root) = open(dir)?;
    let mgr = CheckpointManager::new(backend, root);
    let list = mgr.list()?;
    if list.is_empty() {
        println!("no step_<N> checkpoints under {dir}");
        return Ok(());
    }
    println!("{:>10}  {:<11}  {:>10}  prefix", "step", "state", "size");
    for c in &list {
        let size = mgr.stored_bytes(c.step).unwrap_or(0);
        println!(
            "{:>10}  {:<11}  {:>10}  {}/{}",
            c.step,
            if c.committed { "committed" } else { "UNCOMMITTED" },
            human_bytes(size),
            dir.trim_end_matches('/'),
            c.prefix.rsplit('/').next().unwrap_or(&c.prefix),
        );
    }
    if let Some(latest) = mgr.latest()? {
        println!("latest committed: step {}", latest.step);
    }
    Ok(())
}

fn read_metadata(backend: &DynBackend, prefix: &str) -> Result<GlobalMetadata, AnyError> {
    let bytes = backend.read(&format!("{prefix}/{METADATA_FILE}"))?;
    Ok(GlobalMetadata::from_bytes(&bytes)?)
}

fn cmd_inspect(dir: &str) -> Result<(), AnyError> {
    let (backend, prefix) = open(dir)?;
    let meta = read_metadata(&backend, &prefix)?;
    let committed = backend.exists(&format!("{prefix}/COMPLETE"))?;
    println!("checkpoint   {dir}");
    println!("framework    {}", meta.framework);
    println!("step         {}", meta.step);
    println!("parallelism  {} ({} ranks)", meta.source_parallelism, meta.source_world_size);
    println!("committed    {committed}");
    let tensors = meta.tensor_map.len();
    let shards: usize = meta.tensor_map.values().map(Vec::len).sum();
    println!("tensors      {tensors} logical, {shards} stored shards");
    println!("tensor bytes {}", human_bytes(meta.total_tensor_bytes()));
    if let Some(rep) = &meta.loader_map.replicated_file {
        println!("dataloader   {} shard files + replicated ({rep})", meta.loader_map.shards.len());
    }
    if !meta.extra_files.is_empty() {
        println!("extra state  {} rank files", meta.extra_files.len());
    }
    // Top tensors by size.
    let mut sizes: Vec<(&String, u64)> = meta
        .tensor_map
        .iter()
        .map(|(fqn, entries)| (fqn, entries.iter().map(|e| e.byte.length).sum()))
        .collect();
    sizes.sort_by_key(|(_, s)| std::cmp::Reverse(*s));
    println!("largest tensors:");
    for (fqn, s) in sizes.iter().take(5) {
        println!("  {:<48} {}", fqn, human_bytes(*s));
    }
    Ok(())
}

fn cmd_verify(dir: &str) -> Result<(), AnyError> {
    let (backend, prefix) = open(dir)?;
    let meta = read_metadata(&backend, &prefix)?;
    meta.validate().map_err(|e| format!("metadata invalid: {e}"))?;
    if !backend.exists(&format!("{prefix}/COMPLETE"))? {
        return Err("checkpoint has no COMPLETE marker (torn or in-progress save)".into());
    }
    // Decode every referenced storage file frame by frame (CRC-checked) and
    // cross-check that each ByteMeta points at a frame payload.
    let mut files: Vec<&String> =
        meta.tensor_map.values().flatten().map(|e| &e.byte.file).collect();
    files.sort();
    files.dedup();
    let mut total_frames = 0usize;
    for file in &files {
        let data = backend.read(&format!("{prefix}/{file}"))?;
        let frames = decode_frames(&data).map_err(|e| format!("{file}: {e}"))?;
        total_frames += frames.len();
    }
    let referenced: usize = meta.tensor_map.values().map(Vec::len).sum();
    if total_frames != referenced {
        return Err(format!(
            "frame count mismatch: files hold {total_frames}, metadata references {referenced}"
        )
        .into());
    }
    println!(
        "OK: {} files, {} frames, {} — all CRCs verified, metadata consistent",
        files.len(),
        total_frames,
        human_bytes(meta.total_tensor_bytes())
    );
    Ok(())
}

fn cmd_export(dir: &str, out: &str) -> Result<(), AnyError> {
    let (backend, prefix) = open(dir)?;
    let blob = export_safetensors(&backend, &prefix, false)?;
    std::fs::write(out, &blob)?;
    println!("wrote {} ({})", out, human_bytes(blob.len() as u64));
    Ok(())
}

fn cmd_retain(dir: &str, k: &str) -> Result<(), AnyError> {
    let keep: usize = k.parse().map_err(|_| format!("retain count {k:?} is not a number"))?;
    let (backend, root) = open(dir)?;
    let mgr = CheckpointManager::new(backend, root);
    let deleted = mgr.retain_last(keep)?;
    if deleted.is_empty() {
        println!("nothing to delete (≤{keep} committed checkpoints present)");
    } else {
        println!("deleted steps: {deleted:?}");
    }
    Ok(())
}

fn cmd_gc(dir: &str) -> Result<(), AnyError> {
    let (backend, root) = open(dir)?;
    let mgr = CheckpointManager::new(backend, root);
    let deleted = mgr.gc_torn()?;
    if deleted.is_empty() {
        println!("no torn checkpoints under {dir}");
    } else {
        println!("garbage-collected torn steps: {deleted:?}");
    }
    Ok(())
}

fn cmd_scrub(dir: &str, flags: &[String]) -> Result<(), AnyError> {
    let mut quarantine = false;
    for flag in flags {
        match flag.as_str() {
            "--quarantine" => quarantine = true,
            other => return Err(format!("unknown scrub flag {other:?}").into()),
        }
    }
    let (backend, root) = open(dir)?;
    let reports = scrub_tree(&backend, &root)?;
    if reports.is_empty() {
        return Err(format!("no step_<N> checkpoints under {dir}").into());
    }
    let mgr = CheckpointManager::new(backend, root);
    let mut bad_committed = 0usize;
    let mut clean_committed = 0usize;
    for r in &reports {
        println!("{}", r.summary());
        for issue in &r.issues {
            println!("  [{}] {}: {}", issue.kind, issue.path, issue.detail);
        }
        if !r.committed {
            println!("  torn save (no COMPLETE marker) — `bcpctl gc` removes it");
            continue;
        }
        if r.is_clean() {
            clean_committed += 1;
        } else {
            bad_committed += 1;
            if quarantine {
                let dest = mgr.quarantine(r.step)?;
                println!("  quarantined step {} -> {dest}", r.step);
            }
        }
    }
    println!(
        "scrubbed {} step(s): {clean_committed} clean committed, {bad_committed} corrupt",
        reports.len()
    );
    if bad_committed > 0 {
        return Err(format!(
            "{bad_committed} committed step(s) failed verification (see defects above)"
        )
        .into());
    }
    if clean_committed == 0 {
        return Err("no committed step verifies: nothing to resume from".into());
    }
    Ok(())
}

fn cmd_serve(addr: &str, flags: &[String]) -> Result<(), AnyError> {
    let mut policy = AdmissionPolicy::default();
    let mut sched = SchedulerConfig::default();
    let mut for_seconds: Option<u64> = None;
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().map(|s| s.to_string()).ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--max-jobs" => policy.max_jobs = value("--max-jobs")?.parse()?,
            "--rate-mbps" => sched.rate_bps = value("--rate-mbps")?.parse::<u64>()? * 1024 * 1024,
            "--for-seconds" => for_seconds = Some(value("--for-seconds")?.parse()?),
            other => return Err(format!("unknown serve flag {other:?}").into()),
        }
    }
    let service = CoordinatorService::new(policy, sched);
    let server = CoordinatorServer::bind(addr, service)?;
    println!("listening on {}", server.local_addr());
    println!(
        "admission: {} job slots; envelope: {}/s shared",
        policy.max_jobs,
        human_bytes(sched.rate_bps)
    );
    match for_seconds {
        Some(s) => {
            std::thread::sleep(std::time::Duration::from_secs(s));
            server.shutdown();
        }
        None => loop {
            std::thread::park();
        },
    }
    Ok(())
}

fn cmd_jobs(addr: &str) -> Result<(), AnyError> {
    let mut client = CoordinatorClient::connect(addr)?;
    let jobs = client.jobs()?;
    if jobs.is_empty() {
        println!("no jobs registered on {addr}");
        return Ok(());
    }
    println!(
        "{:<20} {:>5} {:>6} {:>3} {:>7} {:>9} {:>10} {:>8} {:>8}",
        "job", "world", "weight", "gen", "commits", "last step", "committed", "p50 ms", "p99 ms"
    );
    for j in &jobs {
        println!(
            "{:<20} {:>5} {:>6} {:>3} {:>7} {:>9} {:>10} {:>8.1} {:>8.1}",
            j.job_id,
            j.world_size,
            j.weight,
            j.generation,
            j.commits,
            j.last_step.map_or("-".to_string(), |s| s.to_string()),
            human_bytes(j.bytes_committed),
            j.latency.p50_ms,
            j.latency.p99_ms,
        );
    }
    Ok(())
}

fn cmd_status(addr: &str, job_id: &str) -> Result<(), AnyError> {
    let mut client = CoordinatorClient::connect(addr)?;
    let j = client.status(job_id)?;
    println!("job          {}", j.job_id);
    println!("world size   {}", j.world_size);
    println!("weight       {}", j.weight);
    println!("generation   {}", j.generation);
    println!("registered   {:.1}s ago", j.registered_for_s);
    println!("commits      {}", j.commits);
    println!("last step    {}", j.last_step.map_or("-".to_string(), |s| s.to_string()));
    println!("committed    {}", human_bytes(j.bytes_committed));
    println!(
        "latency      p50 {:.1} ms, p90 {:.1} ms, p99 {:.1} ms, max {:.1} ms over {} commits",
        j.latency.p50_ms, j.latency.p90_ms, j.latency.p99_ms, j.latency.max_ms, j.latency.count
    );
    Ok(())
}

/// Parsed `report` flags.
struct ReportFlags {
    step: Option<u64>,
    load: bool,
    min_mbps: f64,
    trace: Option<String>,
    csv: Option<String>,
}

fn parse_report_flags(flags: &[String]) -> Result<ReportFlags, AnyError> {
    let mut out = ReportFlags { step: None, load: false, min_mbps: 10.0, trace: None, csv: None };
    let mut it = flags.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().map(|s| s.to_string()).ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--step" => out.step = Some(value("--step")?.parse::<u64>()?),
            "--load" => out.load = true,
            "--min-mbps" => out.min_mbps = value("--min-mbps")?.parse::<f64>()?,
            "--trace" => out.trace = Some(value("--trace")?),
            "--csv" => out.csv = Some(value("--csv")?),
            other => return Err(format!("unknown report flag {other:?}").into()),
        }
    }
    Ok(out)
}

/// Heat-map geometry from the checkpoint's parallelism string
/// (`"TP=a,DP=b,PP=c"`): PP rows, DP·TP columns, matching the paper's
/// Fig. 11 layout. Falls back to one row over the whole world.
fn heatmap_spec(meta: &GlobalMetadata) -> HeatmapSpec {
    let mut tp = 1usize;
    let mut dp = 1usize;
    let mut pp = 1usize;
    for part in meta.source_parallelism.split(',') {
        if let Some((key, v)) = part.split_once('=') {
            if let Ok(n) = v.trim().parse::<usize>() {
                match key.trim() {
                    "TP" => tp = n.max(1),
                    "DP" => dp = n.max(1),
                    "PP" => pp = n.max(1),
                    _ => {}
                }
            }
        }
    }
    if tp * dp * pp == meta.source_world_size && meta.source_world_size > 0 {
        HeatmapSpec { rows: pp, cols: dp * tp, row_label: "PP", col_label: "DP*TP" }
    } else {
        HeatmapSpec {
            rows: 1,
            cols: meta.source_world_size.max(1),
            row_label: "job",
            col_label: "rank",
        }
    }
}

/// Sum each phase's duration across all ranks — the regression unit.
fn phase_totals(doc: &StepTelemetry) -> std::collections::BTreeMap<String, std::time::Duration> {
    let mut out = std::collections::BTreeMap::new();
    for rec in doc.all_records() {
        *out.entry(rec.name).or_insert(std::time::Duration::ZERO) += rec.duration;
    }
    out
}

fn cmd_report(dir: &str, raw_flags: &[String]) -> Result<(), AnyError> {
    let flags = parse_report_flags(raw_flags)?;
    let (backend, root) = open(dir)?;
    let mgr = CheckpointManager::new(backend.clone(), root);
    let committed: Vec<u64> = mgr.list()?.iter().filter(|c| c.committed).map(|c| c.step).collect();
    if committed.is_empty() {
        return Err(format!("no committed step_<N> checkpoints under {dir}").into());
    }
    let step = match flags.step {
        Some(s) if committed.contains(&s) => s,
        Some(s) => return Err(format!("step {s} is not a committed checkpoint").into()),
        None => *committed.last().expect("non-empty"),
    };
    let file = if flags.load { TELEMETRY_LOAD_FILE } else { TELEMETRY_SAVE_FILE };
    let op = if flags.load { "load" } else { "save" };
    let prefix = mgr.prefix_for(step);
    let doc = read_step_telemetry(&backend, &prefix, file)?.ok_or_else(|| {
        format!("step {step} has no {file} artifact (telemetry disabled when it was written?)")
    })?;
    let meta = mgr.metadata(step)?;
    let records = doc.all_records();

    println!("telemetry report: {dir} step {step} ({op})");
    println!(
        "parallelism {} ({} ranks), artifact lines: {}",
        meta.source_parallelism,
        meta.source_world_size,
        doc.ranks.len()
    );

    // Fig. 11-style heat map of per-rank totals under the op's phases.
    let by_rank = doc.total_by_rank(&format!("{op}/"));
    println!();
    print!("{}", render_heatmap(&heatmap_spec(&meta), &by_rank));

    // Critical path: the rank every other rank waited for at the barrier.
    println!();
    match critical_path(&records, &format!("{op}/")) {
        Some(cp) => {
            println!(
                "critical path: rank {} at {:.3}s (median rank {:.3}s), dominated by {} ({:.3}s)",
                cp.rank,
                cp.total.as_secs_f64(),
                cp.median_total.as_secs_f64(),
                cp.dominant_phase,
                cp.dominant.as_secs_f64()
            );
            print!("{}", render_breakdown(cp.rank, &doc.breakdown_for_rank(cp.rank)));
        }
        None => println!("critical path: no {op}/* records in the artifact"),
    }

    // Per-phase percentile histogram across ranks.
    println!();
    println!("{:<24} {:>5} {:>9} {:>9} {:>9} {:>9}", "phase", "n", "p50", "p95", "p99", "max");
    for (phase, st) in phase_percentiles(&records) {
        println!(
            "{:<24} {:>5} {:>8.3}s {:>8.3}s {:>8.3}s {:>8.3}s",
            phase,
            st.count,
            st.p50.as_secs_f64(),
            st.p95.as_secs_f64(),
            st.p99.as_secs_f64(),
            st.max.as_secs_f64()
        );
    }

    // Recovery-tier breakdown (load artifacts only): which tier served each
    // rank's shards, cut from the `load/tier` spans the tiered load emits.
    if flags.load {
        let tier_spans: Vec<_> =
            doc.all_spans().into_iter().filter(|s| s.name == "load/tier").collect();
        if !tier_spans.is_empty() {
            let attr = |s: &bytecheckpoint::monitor::SpanRecord, k: &str| -> u64 {
                s.attrs.get(k).and_then(|v| v.parse().ok()).unwrap_or(0)
            };
            println!();
            println!("recovery tiers (per-shard source of this load):");
            println!(
                "{:>5} {:>9} {:>10} {:>9} {:>10} {:>9}",
                "rank", "hot", "hot bytes", "cold", "cold bytes", "fallbacks"
            );
            let (mut hot_f, mut cold_f, mut hot_b, mut cold_b) = (0u64, 0u64, 0u64, 0u64);
            let mut reasons: Vec<String> = Vec::new();
            for s in &tier_spans {
                let (h, c) = (attr(s, "hot_files"), attr(s, "cold_files"));
                let (hb, cb) = (attr(s, "hot_bytes"), attr(s, "cold_bytes"));
                println!(
                    "{:>5} {:>9} {:>10} {:>9} {:>10} {:>9}",
                    s.rank,
                    h,
                    human_bytes(hb),
                    c,
                    human_bytes(cb),
                    attr(s, "fallbacks")
                );
                hot_f += h;
                cold_f += c;
                hot_b += hb;
                cold_b += cb;
                if let Some(r) = s.attrs.get("fallback_reasons") {
                    for reason in r.split("; ") {
                        reasons.push(format!("rank {}: {reason}", s.rank));
                    }
                }
            }
            let total_f = hot_f + cold_f;
            println!(
                "total: {hot_f}/{total_f} shard files hot ({:.1}%), {} hot / {} cold",
                if total_f == 0 { 0.0 } else { 100.0 * hot_f as f64 / total_f as f64 },
                human_bytes(hot_b),
                human_bytes(cold_b)
            );
            for reason in &reasons {
                println!("  fallback: {reason}");
            }
        } else {
            println!();
            println!("recovery tiers: no load/tier spans (cold load or hot tier disabled)");
        }
    }

    // Alerts: slow I/O, failures, dropped events, regressions vs the
    // rolling baseline of every other committed step with an artifact.
    println!();
    let slow = doc.slow_ios(flags.min_mbps * 1e6);
    for rec in &slow {
        println!(
            "ALERT slow I/O: rank {} {} {} at {:.1} MB/s (path {})",
            rec.rank,
            rec.name,
            human_bytes(rec.io_bytes),
            rec.io_bytes as f64 / rec.duration.as_secs_f64().max(1e-9) / 1e6,
            rec.path.as_deref().unwrap_or("-")
        );
    }
    for f in doc.all_failures() {
        println!(
            "ALERT failure: rank {} at {} attempt {}{} — {}",
            f.rank,
            f.stage,
            f.attempt,
            if f.retried { " (retried)" } else { "" },
            f.error
        );
    }
    if doc.dropped_records() > 0 {
        println!(
            "ALERT {} telemetry events dropped at the bounded hub; totals undercount",
            doc.dropped_records()
        );
    }
    let baseline: Vec<_> = committed
        .iter()
        .filter(|&&s| s != step)
        .filter_map(|&s| read_step_telemetry(&backend, &mgr.prefix_for(s), file).ok().flatten())
        .map(|d| phase_totals(&d))
        .collect();
    if baseline.is_empty() {
        println!("no other committed steps with a {file} artifact: skipping regression check");
    } else {
        let regs = regressions(&phase_totals(&doc), &baseline, 1.5);
        if regs.is_empty() {
            println!(
                "no regressions vs the {}-step rolling baseline (threshold 1.5x)",
                baseline.len()
            );
        } else {
            for r in regs {
                println!(
                    "ALERT regression: {} at {:.3}s is {:.1}x the baseline mean {:.3}s",
                    r.phase,
                    r.current.as_secs_f64(),
                    r.factor,
                    r.baseline.as_secs_f64()
                );
            }
        }
    }

    // Optional exports for external tooling.
    if let Some(out) = &flags.trace {
        std::fs::write(out, chrome_trace(&doc.all_spans()))?;
        println!("wrote Chrome trace (load in Perfetto / chrome://tracing): {out}");
    }
    if let Some(out) = &flags.csv {
        std::fs::write(out, records_csv(&records))?;
        println!("wrote records CSV: {out}");
    }
    Ok(())
}
