//! # bytecheckpoint — a unified checkpointing system for LFM development
//!
//! A from-scratch Rust reproduction of **"ByteCheckpoint: A Unified
//! Checkpointing System for Large Foundation Model Development"**
//! (NSDI 2025): parallelism-agnostic checkpoint representation with
//! automatic load-time resharding, a generic save/load workflow over
//! multiple training frameworks and storage backends, full-stack I/O
//! optimizations, and a recovery subsystem (backoff retries, failover
//! storage, crash-stage fault injection, auto-resume).
//!
//! ## Quickstart
//!
//! ```
//! use bytecheckpoint::prelude::*;
//! use std::sync::Arc;
//!
//! // One in-process "training worker" (see examples/ for multi-rank jobs).
//! let world = CommWorld::new(1, Backend::Flat);
//! let registry = Arc::new(BackendRegistry::all_memory());
//! let par = Parallelism::data_parallel(1).unwrap();
//! let ckpt = Checkpointer::builder(world.communicator(0).unwrap())
//!     .framework(Framework::Ddp)
//!     .parallelism(par)
//!     .registry(registry)
//!     .build()
//!     .unwrap();
//!
//! // Some training state...
//! let state = build_train_state(&zoo::tiny_gpt(), Framework::Ddp, par, 0, true);
//!
//! // bytecheckpoint.save(...)
//! let ticket = ckpt.save(&SaveRequest::new("mem://demo/ckpt/step_1", &state, 1)).unwrap();
//! println!("stall: {:?}", ticket.blocking);
//! ticket.wait().unwrap();
//!
//! // bytecheckpoint.load(...) — into any parallelism; resharding is
//! // automatic when it differs.
//! let mut target = build_train_state(&zoo::tiny_gpt(), Framework::Ddp, par, 0, true);
//! ckpt.load(&mut LoadRequest::new("mem://demo/ckpt/step_1", &mut target)).unwrap();
//!
//! // After a crash: GC torn steps under the root and resume from the
//! // newest committed checkpoint.
//! let resumed = ckpt.load_latest("mem://demo/ckpt", &mut target, None).unwrap();
//! assert_eq!(resumed.unwrap().resumed_step(), 1);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`core`] | the checkpointing system: metadata, planners, engine, workflow, API |
//! | [`tensor`] | dtypes, n-D tensors, meta tensors, checksums |
//! | [`topology`] | 3D parallelism, device meshes, shard specs |
//! | [`collectives`] | in-process process groups, flat/tree backends |
//! | [`storage`] | memory / disk / simulated-HDFS / NAS backends |
//! | [`model`] | transformer state generators, deterministic trainer |
//! | [`dataloader`] | token-buffer dataloader with exact resume |
//! | [`baselines`] | DCP-like, MCP-like, offline reshard jobs |
//! | [`monitor`] | spans, metrics, telemetry artifacts, heat maps, analysis |
//! | [`sim`] | paper-scale virtual-time experiments |
//! | [`coordinator`] | multi-job control plane: admission, registry, fair-share bandwidth |

pub use bcp_baselines as baselines;
pub use bcp_collectives as collectives;
pub use bcp_coordinator as coordinator;
pub use bcp_core as core;
pub use bcp_dataloader as dataloader;
pub use bcp_model as model;
pub use bcp_monitor as monitor;
pub use bcp_sim as sim;
pub use bcp_storage as storage;
pub use bcp_tensor as tensor;
pub use bcp_topology as topology;

/// The commonly used surface, one `use` away.
pub mod prelude {
    pub use bcp_collectives::{Backend, CommWorld, Communicator};
    pub use bcp_core::api::{
        Checkpointer, CheckpointerBuilder, LoadOutcome, LoadRequest, LoaderTarget, SaveRequest,
    };
    pub use bcp_core::crashsim::{enumerate_crash_states, CrashState};
    pub use bcp_core::fault::FaultPlan;
    pub use bcp_core::integrity::RetryPolicy;
    pub use bcp_core::manager::{CheckpointManager, QuarantinedStep};
    pub use bcp_core::registry::BackendRegistry;
    pub use bcp_core::scrub::{scrub_step, scrub_tree, ScrubReport};
    pub use bcp_core::spec::{JobQuota, JobSpec, Session};
    pub use bcp_core::telemetry::read_step_telemetry;
    pub use bcp_core::workflow::WorkflowOptions;
    pub use bcp_core::HotTierConfig;
    pub use bcp_dataloader::{DataSource, Dataloader, LoaderReplicatedState, LoaderShardState};
    pub use bcp_model::states::build_train_state;
    pub use bcp_model::{zoo, ExtraState, Framework, TrainState, TrainerConfig};
    pub use bcp_monitor::{
        MetricsHub, MetricsSink, StepTelemetry, TELEMETRY_LOAD_FILE, TELEMETRY_SAVE_FILE,
    };
    pub use bcp_storage::uri::Scheme;
    pub use bcp_storage::{
        CheckpointLocation, CorruptingBackend, Corruption, DiskBackend, DynBackend,
        FallbackBackend, FlakyBackend, HdfsBackend, InstrumentedBackend, JournalBackend,
        MemoryBackend, StorageUri,
    };
    pub use bcp_tensor::{DType, Tensor};
    pub use bcp_topology::{Parallelism, ShardSpec};
}
