//! Span-tree integrity under concurrency: 8 "ranks" running nested save
//! phases in parallel (with inner I/O worker threads) must produce a forest
//! where every span's parent exists, belongs to the same rank, and encloses
//! the child — no orphans, no cross-rank adoption.

use bcp_monitor::{enter_context, MetricsHub, SpanContext, SpanRecord};
use std::collections::HashMap;

#[test]
fn concurrent_nested_save_phases_form_valid_trees() {
    let hub = MetricsHub::new();
    let mut handles = Vec::new();
    for rank in 0..8usize {
        let sink = hub.sink();
        handles.push(std::thread::spawn(move || {
            let root = sink.span("save", rank, 11).uncounted();
            let _in_root = root.enter();
            for phase in ["save/d2h", "save/serialize"] {
                let _p = sink.span_in_context(phase, rank);
            }
            let upload = root.child("save/upload");
            let ctx = upload.context();
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    let io_sink = sink.clone();
                    scope.spawn(move || {
                        let _e = enter_context(ctx);
                        let _io = io_sink.span_in_context("storage/mem/write", rank).uncounted();
                    });
                }
            });
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let spans = hub.spans();
    // 8 ranks × (1 root + 2 phases + 1 upload + 2 I/O spans).
    assert_eq!(spans.len(), 8 * 6);
    assert_eq!(hub.dropped_records(), 0);

    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    assert_eq!(by_id.len(), spans.len(), "span ids must be unique");

    let roots: Vec<&SpanRecord> = spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 8, "exactly one root per rank");

    for span in &spans {
        assert_eq!(span.step, 11);
        if let Some(parent_id) = span.parent {
            // Every parent reference resolves (no orphans) ...
            let parent = by_id
                .get(&parent_id)
                .unwrap_or_else(|| panic!("span {} ({}) has dangling parent", span.id, span.name));
            // ... to a span of the same rank (no cross-rank adoption) ...
            assert_eq!(parent.rank, span.rank, "span {} adopted across ranks", span.name);
            // ... that started no later than the child.
            assert!(parent.start_us <= span.start_us);
        } else {
            assert_eq!(span.name, "save", "only the per-rank roots may be parentless");
        }
    }

    // Every non-root span chains up to its own rank's root.
    for span in spans.iter().filter(|s| s.parent.is_some()) {
        let mut cur: &SpanRecord = span;
        let mut hops = 0;
        while let Some(pid) = cur.parent {
            cur = by_id[&pid];
            hops += 1;
            assert!(hops <= spans.len(), "parent cycle detected");
        }
        assert_eq!(cur.name, "save");
        assert_eq!(cur.rank, span.rank);
    }

    // Phase spans are direct children of the root; I/O spans are children of
    // the upload phase (parent context crossed the scoped-thread boundary).
    for span in &spans {
        match span.name.as_str() {
            "save/d2h" | "save/serialize" | "save/upload" => {
                assert_eq!(by_id[&span.parent.unwrap()].name, "save");
            }
            "storage/mem/write" => {
                assert_eq!(by_id[&span.parent.unwrap()].name, "save/upload");
            }
            _ => {}
        }
    }
}

/// A persistent, channel-fed worker (the execution engine's I/O pool shape):
/// one long-lived thread serves jobs from *many different* phases over its
/// lifetime. Each job re-enters the context of the phase that enqueued it,
/// so its spans parent under that phase — the worker's own thread identity
/// leaks into no span.
#[test]
fn persistent_pool_worker_spans_parent_under_the_enqueuing_phase() {
    let hub = MetricsHub::new();
    let sink = hub.sink();
    type Job = Box<dyn FnOnce() + Send + 'static>;
    let (tx, rx) = std::sync::mpsc::channel::<Job>();
    let worker = std::thread::spawn(move || {
        while let Ok(job) = rx.recv() {
            job();
        }
    });

    // Two sequential phases feed the same worker; their jobs must not
    // inherit each other's (or any stale) context.
    for (step, phase) in [(1u64, "load/read"), (2u64, "save/upload")] {
        let phase_span = sink.span(phase, 0, step).uncounted();
        let ctx: SpanContext = phase_span.context();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        for _ in 0..3 {
            let job_sink = sink.clone();
            let done = done_tx.clone();
            tx.send(Box::new(move || {
                let _e = enter_context(ctx);
                let _io = job_sink.span_in_context("storage/mem/op", 0).uncounted();
                drop(_io);
                done.send(()).unwrap();
            }))
            .unwrap();
        }
        drop(done_tx);
        // The phase span stays open until its own jobs finish (as the
        // engine's run_batch does), then closes before the next phase.
        for _ in 0..3 {
            done_rx.recv().unwrap();
        }
    }
    drop(tx);
    worker.join().unwrap();

    let spans = hub.spans();
    assert_eq!(spans.len(), 2 + 2 * 3);
    let by_id: HashMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    for span in spans.iter().filter(|s| s.name == "storage/mem/op") {
        let parent = by_id
            .get(&span.parent.expect("pool-worker spans must not be orphans"))
            .expect("parent must resolve");
        // Parented under the phase that enqueued the job — identified by the
        // step stamp, which differs between the two phases.
        assert_eq!(parent.step, span.step, "span adopted by the wrong phase");
        match span.step {
            1 => assert_eq!(parent.name, "load/read"),
            2 => assert_eq!(parent.name, "save/upload"),
            other => panic!("unexpected step {other}"),
        }
    }
}
