//! Golden-file tests for the exporters: the Chrome trace-event JSON and the
//! CSVs produced for a fixed span/record set must match the checked-in
//! goldens. The trace is compared as parsed JSON (formatting-insensitive);
//! the CSVs byte-for-byte.

use bcp_monitor::export::{chrome_trace, records_csv, spans_csv};
use bcp_monitor::{MetricRecord, SpanEvent, SpanRecord};
use std::collections::BTreeMap;
use std::time::Duration;

fn fixture_spans() -> Vec<SpanRecord> {
    let mut attrs_root = BTreeMap::new();
    attrs_root.insert("backend".to_string(), "disk".to_string());
    let mut attrs_barrier = BTreeMap::new();
    attrs_barrier.insert("collective".to_string(), "tree".to_string());
    vec![
        SpanRecord {
            id: 1,
            parent: None,
            name: "save".into(),
            rank: 0,
            step: 100,
            start_us: 0,
            duration: Duration::from_micros(5000),
            io_bytes: 0,
            path: None,
            attrs: attrs_root,
            events: vec![SpanEvent { name: "commit".into(), at_us: 4500 }],
            counted: false,
        },
        SpanRecord {
            id: 2,
            parent: Some(1),
            name: "save/upload".into(),
            rank: 0,
            step: 100,
            start_us: 1000,
            duration: Duration::from_micros(3000),
            io_bytes: 4096,
            path: Some("step_100/rank0.bin".into()),
            attrs: BTreeMap::new(),
            events: Vec::new(),
            counted: true,
        },
        SpanRecord {
            id: 3,
            parent: Some(1),
            name: "sync/save_barrier".into(),
            rank: 1,
            step: 100,
            start_us: 4000,
            duration: Duration::from_micros(800),
            io_bytes: 0,
            path: None,
            attrs: attrs_barrier,
            events: Vec::new(),
            counted: true,
        },
    ]
}

fn fixture_records() -> Vec<MetricRecord> {
    vec![
        MetricRecord {
            name: "save/plan".into(),
            rank: 0,
            step: 100,
            duration: Duration::from_micros(1500),
            io_bytes: 0,
            path: None,
        },
        MetricRecord {
            name: "load/read".into(),
            rank: 2,
            step: 100,
            duration: Duration::from_secs(2),
            io_bytes: 1_048_576,
            path: Some("step_100/rank2.bin".into()),
        },
    ]
}

#[test]
fn chrome_trace_matches_golden() {
    let rendered = chrome_trace(&fixture_spans());
    let got: serde_json::Value = serde_json::from_str(&rendered).expect("exporter emits JSON");
    let want: serde_json::Value =
        serde_json::from_str(include_str!("golden/trace.json")).expect("golden is JSON");
    assert_eq!(got, want);
}

#[test]
fn records_csv_matches_golden() {
    assert_eq!(records_csv(&fixture_records()), include_str!("golden/records.csv"));
}

#[test]
fn spans_csv_matches_golden() {
    assert_eq!(spans_csv(&fixture_spans()), include_str!("golden/spans.csv"));
}
