//! Metric collection: scoped timers flowing over a background channel.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// One collected measurement: "the duration and I/O size of each operation,
/// along with relevant metadata such as each worker's rank, the file path,
/// and the current step".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricRecord {
    /// Phase/operation name, e.g. `"save/upload"`.
    pub name: String,
    /// Worker rank that produced the record.
    pub rank: usize,
    /// Global training step at the time of the operation.
    pub step: u64,
    /// Wall-clock duration of the operation.
    pub duration: Duration,
    /// Bytes moved, when the operation is an I/O.
    pub io_bytes: u64,
    /// File path involved, when applicable.
    pub path: Option<String>,
}

impl MetricRecord {
    /// Effective throughput in bytes/second (None when no I/O or no time).
    pub fn throughput(&self) -> Option<f64> {
        if self.io_bytes == 0 || self.duration.is_zero() {
            None
        } else {
            Some(self.io_bytes as f64 / self.duration.as_secs_f64())
        }
    }
}

/// Cloneable producer handle. Cheap enough to pass to every worker thread.
#[derive(Clone)]
pub struct MetricsSink {
    tx: Sender<MetricRecord>,
}

impl MetricsSink {
    /// A sink whose records go nowhere (for code paths where monitoring is
    /// disabled). Records are dropped when the paired receiver is gone.
    pub fn disabled() -> MetricsSink {
        let (tx, _rx) = unbounded();
        MetricsSink { tx }
    }

    /// Emit a pre-built record.
    pub fn record(&self, rec: MetricRecord) {
        let _ = self.tx.send(rec); // hub gone = monitoring disabled; drop
    }

    /// Start a scoped timer; the record is emitted when the guard drops.
    ///
    /// ```
    /// # let hub = bcp_monitor::MetricsHub::new();
    /// # let sink = hub.sink();
    /// {
    ///     let _t = sink.timer("save/serialize", 0, 100).bytes(1 << 20);
    ///     // ... do the work ...
    /// } // record emitted here
    /// ```
    pub fn timer(&self, name: impl Into<String>, rank: usize, step: u64) -> TimerGuard {
        TimerGuard {
            sink: self.clone(),
            name: name.into(),
            rank,
            step,
            io_bytes: 0,
            path: None,
            start: Instant::now(),
        }
    }
}

/// RAII guard emitting a [`MetricRecord`] on drop.
pub struct TimerGuard {
    sink: MetricsSink,
    name: String,
    rank: usize,
    step: u64,
    io_bytes: u64,
    path: Option<String>,
    start: Instant,
}

impl TimerGuard {
    /// Attach an I/O size to the eventual record.
    pub fn bytes(mut self, n: u64) -> TimerGuard {
        self.io_bytes = n;
        self
    }

    /// Attach (or accumulate) I/O bytes on a guard held by reference.
    pub fn add_bytes(&mut self, n: u64) {
        self.io_bytes += n;
    }

    /// Attach a file path to the eventual record.
    pub fn path(mut self, p: impl Into<String>) -> TimerGuard {
        self.path = Some(p.into());
        self
    }
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        self.sink.record(MetricRecord {
            name: std::mem::take(&mut self.name),
            rank: self.rank,
            step: self.step,
            duration: self.start.elapsed(),
            io_bytes: self.io_bytes,
            path: self.path.take(),
        });
    }
}

/// Consumer side: drains the channel and serves aggregate queries.
pub struct MetricsHub {
    tx: Sender<MetricRecord>,
    rx: Receiver<MetricRecord>,
    collected: Mutex<Vec<MetricRecord>>,
}

impl Default for MetricsHub {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsHub {
    /// Create a hub with its own channel.
    pub fn new() -> MetricsHub {
        let (tx, rx) = unbounded();
        MetricsHub { tx, rx, collected: Mutex::new(Vec::new()) }
    }

    /// Producer handle for worker threads.
    pub fn sink(&self) -> MetricsSink {
        MetricsSink { tx: self.tx.clone() }
    }

    /// Pull everything pending off the channel into the store.
    pub fn drain(&self) {
        let mut collected = self.collected.lock();
        while let Ok(rec) = self.rx.try_recv() {
            collected.push(rec);
        }
    }

    /// Snapshot of all records collected so far.
    pub fn records(&self) -> Vec<MetricRecord> {
        self.drain();
        self.collected.lock().clone()
    }

    /// Discard everything collected so far.
    pub fn clear(&self) {
        self.drain();
        self.collected.lock().clear();
    }

    /// Total duration per rank for records whose name has `prefix`.
    /// Feeds the Fig. 11 heat map ("end-to-end checkpoint saving time").
    pub fn total_by_rank(&self, prefix: &str) -> BTreeMap<usize, Duration> {
        let mut out = BTreeMap::new();
        for rec in self.records() {
            if rec.name.starts_with(prefix) {
                *out.entry(rec.rank).or_insert(Duration::ZERO) += rec.duration;
            }
        }
        out
    }

    /// Total duration per phase name for one rank (Fig. 12 breakdown).
    pub fn breakdown_for_rank(&self, rank: usize) -> BTreeMap<String, Duration> {
        let mut out = BTreeMap::new();
        for rec in self.records() {
            if rec.rank == rank {
                *out.entry(rec.name).or_insert(Duration::ZERO) += rec.duration;
            }
        }
        out
    }

    /// Records with throughput below `min_bps` — the alerting rule the paper
    /// applies on the storage-client side ("unexpectedly high latency or low
    /// bandwidth triggers alerts").
    pub fn slow_ios(&self, min_bps: f64) -> Vec<MetricRecord> {
        self.records()
            .into_iter()
            .filter(|r| matches!(r.throughput(), Some(t) if t < min_bps))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_guard_records_on_drop() {
        let hub = MetricsHub::new();
        let sink = hub.sink();
        {
            let _t = sink.timer("phase/a", 3, 100).bytes(1024).path("f.bin");
            std::thread::sleep(Duration::from_millis(5));
        }
        let recs = hub.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "phase/a");
        assert_eq!(recs[0].rank, 3);
        assert_eq!(recs[0].step, 100);
        assert_eq!(recs[0].io_bytes, 1024);
        assert_eq!(recs[0].path.as_deref(), Some("f.bin"));
        assert!(recs[0].duration >= Duration::from_millis(4));
    }

    #[test]
    fn aggregation_by_rank_and_phase() {
        let hub = MetricsHub::new();
        let sink = hub.sink();
        for rank in 0..4 {
            sink.record(MetricRecord {
                name: "save/upload".into(),
                rank,
                step: 1,
                duration: Duration::from_millis(10 * (rank as u64 + 1)),
                io_bytes: 100,
                path: None,
            });
            sink.record(MetricRecord {
                name: "save/d2h".into(),
                rank,
                step: 1,
                duration: Duration::from_millis(1),
                io_bytes: 0,
                path: None,
            });
        }
        let by_rank = hub.total_by_rank("save/");
        assert_eq!(by_rank[&3], Duration::from_millis(41));
        let breakdown = hub.breakdown_for_rank(0);
        assert_eq!(breakdown["save/upload"], Duration::from_millis(10));
        assert_eq!(breakdown["save/d2h"], Duration::from_millis(1));
    }

    #[test]
    fn slow_io_detection() {
        let hub = MetricsHub::new();
        let sink = hub.sink();
        sink.record(MetricRecord {
            name: "upload".into(),
            rank: 0,
            step: 0,
            duration: Duration::from_secs(1),
            io_bytes: 100, // 100 B/s: pathologically slow
            path: Some("slow.bin".into()),
        });
        sink.record(MetricRecord {
            name: "upload".into(),
            rank: 1,
            step: 0,
            duration: Duration::from_secs(1),
            io_bytes: 1 << 30, // 1 GiB/s: healthy
            path: Some("fast.bin".into()),
        });
        let slow = hub.slow_ios(1024.0 * 1024.0);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].path.as_deref(), Some("slow.bin"));
    }

    #[test]
    fn disabled_sink_drops_records() {
        let sink = MetricsSink::disabled();
        let _t = sink.timer("x", 0, 0); // must not panic on drop
    }

    #[test]
    fn concurrent_producers() {
        let hub = MetricsHub::new();
        let mut handles = Vec::new();
        for rank in 0..8 {
            let sink = hub.sink();
            handles.push(std::thread::spawn(move || {
                for step in 0..100u64 {
                    let _t = sink.timer("p", rank, step);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hub.records().len(), 800);
    }
}
