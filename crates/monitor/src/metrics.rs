//! Metric collection: scoped timers and spans flowing over a background
//! channel.

use crate::span::SpanRecord;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One collected measurement: "the duration and I/O size of each operation,
/// along with relevant metadata such as each worker's rank, the file path,
/// and the current step".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricRecord {
    /// Phase/operation name, e.g. `"save/upload"`.
    pub name: String,
    /// Worker rank that produced the record.
    pub rank: usize,
    /// Global training step at the time of the operation.
    pub step: u64,
    /// Wall-clock duration of the operation.
    pub duration: Duration,
    /// Bytes moved, when the operation is an I/O.
    pub io_bytes: u64,
    /// File path involved, when applicable.
    pub path: Option<String>,
}

impl MetricRecord {
    /// Effective throughput in bytes/second (None when no I/O or no time).
    pub fn throughput(&self) -> Option<f64> {
        if self.io_bytes == 0 || self.duration.is_zero() {
            None
        } else {
            Some(self.io_bytes as f64 / self.duration.as_secs_f64())
        }
    }

    /// Flatten a span into the record form the aggregations consume.
    pub fn from_span(span: &SpanRecord) -> MetricRecord {
        MetricRecord {
            name: span.name.clone(),
            rank: span.rank,
            step: span.step,
            duration: span.duration,
            io_bytes: span.io_bytes,
            path: span.path.clone(),
        }
    }
}

/// What flows over the channel: flat records (legacy timers) and spans.
#[derive(Debug, Clone)]
pub enum TelemetryEvent {
    /// A flat metric record from [`MetricsSink::record`] / [`TimerGuard`].
    Metric(MetricRecord),
    /// A completed span from a [`crate::SpanGuard`].
    Span(SpanRecord),
}

#[derive(Clone)]
enum SinkInner {
    /// Channel into one hub (or into nowhere, for disabled sinks).
    Chan(Sender<TelemetryEvent>),
    /// Duplicate every event into several sinks (user hub + private
    /// telemetry hub).
    Fanout(Arc<Vec<MetricsSink>>),
}

/// Cloneable producer handle. Cheap enough to pass to every worker thread.
#[derive(Clone)]
pub struct MetricsSink {
    inner: SinkInner,
    dropped: Arc<AtomicU64>,
}

impl MetricsSink {
    /// A sink whose records go nowhere (for code paths where monitoring is
    /// disabled). Records are dropped when the paired receiver is gone.
    pub fn disabled() -> MetricsSink {
        let (tx, _rx) = unbounded();
        MetricsSink { inner: SinkInner::Chan(tx), dropped: Arc::new(AtomicU64::new(0)) }
    }

    /// A sink duplicating every event into each of `sinks` (e.g. the user's
    /// hub plus the checkpointer's private telemetry hub).
    pub fn fanout(sinks: Vec<MetricsSink>) -> MetricsSink {
        MetricsSink {
            inner: SinkInner::Fanout(Arc::new(sinks)),
            dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Emit an event. Never blocks: on a full bounded hub (or a hub that is
    /// gone) the event is dropped and counted in
    /// [`MetricsHub::dropped_records`].
    pub fn emit(&self, ev: TelemetryEvent) {
        match &self.inner {
            SinkInner::Chan(tx) => {
                if tx.try_send(ev).is_err() {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            SinkInner::Fanout(sinks) => {
                for sink in sinks.iter() {
                    sink.emit(ev.clone());
                }
            }
        }
    }

    /// Emit a pre-built record.
    pub fn record(&self, rec: MetricRecord) {
        self.emit(TelemetryEvent::Metric(rec));
    }

    /// Start a scoped timer; the record is emitted when the guard drops.
    ///
    /// ```
    /// # let hub = bcp_monitor::MetricsHub::new();
    /// # let sink = hub.sink();
    /// {
    ///     let _t = sink.timer("save/serialize", 0, 100).bytes(1 << 20);
    ///     // ... do the work ...
    /// } // record emitted here
    /// ```
    pub fn timer(&self, name: impl Into<String>, rank: usize, step: u64) -> TimerGuard {
        TimerGuard {
            sink: self.clone(),
            name: name.into(),
            rank,
            step,
            io_bytes: 0,
            path: None,
            start: Instant::now(),
        }
    }
}

/// RAII guard emitting a [`MetricRecord`] on drop.
pub struct TimerGuard {
    sink: MetricsSink,
    name: String,
    rank: usize,
    step: u64,
    io_bytes: u64,
    path: Option<String>,
    start: Instant,
}

impl TimerGuard {
    /// Attach an I/O size to the eventual record.
    pub fn bytes(mut self, n: u64) -> TimerGuard {
        self.io_bytes = n;
        self
    }

    /// Attach (or accumulate) I/O bytes on a guard held by reference.
    pub fn add_bytes(&mut self, n: u64) {
        self.io_bytes += n;
    }

    /// Attach a file path to the eventual record.
    pub fn path(mut self, p: impl Into<String>) -> TimerGuard {
        self.path = Some(p.into());
        self
    }
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        self.sink.record(MetricRecord {
            name: std::mem::take(&mut self.name),
            rank: self.rank,
            step: self.step,
            duration: self.start.elapsed(),
            io_bytes: self.io_bytes,
            path: self.path.take(),
        });
    }
}

/// Consumer side: drains the channel and serves aggregate queries.
pub struct MetricsHub {
    tx: Sender<TelemetryEvent>,
    rx: Receiver<TelemetryEvent>,
    flat: Mutex<Vec<MetricRecord>>,
    span_store: Mutex<Vec<SpanRecord>>,
    dropped: Arc<AtomicU64>,
}

impl Default for MetricsHub {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsHub {
    /// Create a hub with its own unbounded channel.
    pub fn new() -> MetricsHub {
        let (tx, rx) = unbounded();
        MetricsHub {
            tx,
            rx,
            flat: Mutex::new(Vec::new()),
            span_store: Mutex::new(Vec::new()),
            dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Create a hub whose channel holds at most `capacity` undrained events.
    /// Producers never block: overflowing events are dropped and counted in
    /// [`MetricsHub::dropped_records`], bounding memory on runs that never
    /// drain.
    pub fn bounded(capacity: usize) -> MetricsHub {
        let (tx, rx) = bounded(capacity);
        MetricsHub {
            tx,
            rx,
            flat: Mutex::new(Vec::new()),
            span_store: Mutex::new(Vec::new()),
            dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Producer handle for worker threads.
    pub fn sink(&self) -> MetricsSink {
        MetricsSink { inner: SinkInner::Chan(self.tx.clone()), dropped: self.dropped.clone() }
    }

    /// Events dropped by this hub's sinks (bounded channel full, or the hub
    /// already gone). Non-zero means the collected data is incomplete.
    pub fn dropped_records(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Pull everything pending off the channel into the store.
    pub fn drain(&self) {
        let mut flat = self.flat.lock();
        let mut spans = self.span_store.lock();
        while let Ok(ev) = self.rx.try_recv() {
            match ev {
                TelemetryEvent::Metric(rec) => flat.push(rec),
                TelemetryEvent::Span(span) => spans.push(span),
            }
        }
    }

    /// Snapshot of all records collected so far: flat records plus every
    /// *counted* span flattened to record form, so span-instrumented phases
    /// feed the same heat-map/breakdown queries as legacy timers.
    pub fn records(&self) -> Vec<MetricRecord> {
        self.drain();
        let mut out = self.flat.lock().clone();
        out.extend(
            self.span_store.lock().iter().filter(|s| s.counted).map(MetricRecord::from_span),
        );
        out
    }

    /// Snapshot of only the flat (timer/record) metrics, excluding spans.
    pub fn flat_records(&self) -> Vec<MetricRecord> {
        self.drain();
        self.flat.lock().clone()
    }

    /// Snapshot of all spans collected so far.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.drain();
        self.span_store.lock().clone()
    }

    /// Discard everything collected so far.
    pub fn clear(&self) {
        self.drain();
        self.flat.lock().clear();
        self.span_store.lock().clear();
    }

    /// Total duration per rank for records whose name has `prefix`.
    /// Feeds the Fig. 11 heat map ("end-to-end checkpoint saving time").
    pub fn total_by_rank(&self, prefix: &str) -> BTreeMap<usize, Duration> {
        total_by_rank_from(&self.records(), prefix)
    }

    /// Total duration per phase name for one rank (Fig. 12 breakdown).
    pub fn breakdown_for_rank(&self, rank: usize) -> BTreeMap<String, Duration> {
        breakdown_from(&self.records(), rank)
    }

    /// Records with throughput below `min_bps` — the alerting rule the paper
    /// applies on the storage-client side ("unexpectedly high latency or low
    /// bandwidth triggers alerts"). Scans flat records, counted spans, *and*
    /// uncounted detail spans (per-file uploads, per-op storage I/Os), so a
    /// single slow write is caught even when its phase total looks healthy.
    pub fn slow_ios(&self, min_bps: f64) -> Vec<MetricRecord> {
        let mut all = self.records();
        all.extend(self.spans().iter().filter(|s| !s.counted).map(MetricRecord::from_span));
        slow_ios_from(all, min_bps)
    }
}

/// Total duration per rank over `records` whose name has `prefix`.
pub fn total_by_rank_from(records: &[MetricRecord], prefix: &str) -> BTreeMap<usize, Duration> {
    let mut out = BTreeMap::new();
    for rec in records {
        if rec.name.starts_with(prefix) {
            *out.entry(rec.rank).or_insert(Duration::ZERO) += rec.duration;
        }
    }
    out
}

/// Total duration per phase name for one rank over `records`.
pub fn breakdown_from(records: &[MetricRecord], rank: usize) -> BTreeMap<String, Duration> {
    let mut out = BTreeMap::new();
    for rec in records {
        if rec.rank == rank {
            *out.entry(rec.name.clone()).or_insert(Duration::ZERO) += rec.duration;
        }
    }
    out
}

/// Records from `records` with throughput below `min_bps`.
pub fn slow_ios_from(records: Vec<MetricRecord>, min_bps: f64) -> Vec<MetricRecord> {
    records.into_iter().filter(|r| matches!(r.throughput(), Some(t) if t < min_bps)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_guard_records_on_drop() {
        let hub = MetricsHub::new();
        let sink = hub.sink();
        {
            let _t = sink.timer("phase/a", 3, 100).bytes(1024).path("f.bin");
            std::thread::sleep(Duration::from_millis(5));
        }
        let recs = hub.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "phase/a");
        assert_eq!(recs[0].rank, 3);
        assert_eq!(recs[0].step, 100);
        assert_eq!(recs[0].io_bytes, 1024);
        assert_eq!(recs[0].path.as_deref(), Some("f.bin"));
        assert!(recs[0].duration >= Duration::from_millis(4));
    }

    #[test]
    fn aggregation_by_rank_and_phase() {
        let hub = MetricsHub::new();
        let sink = hub.sink();
        for rank in 0..4 {
            sink.record(MetricRecord {
                name: "save/upload".into(),
                rank,
                step: 1,
                duration: Duration::from_millis(10 * (rank as u64 + 1)),
                io_bytes: 100,
                path: None,
            });
            sink.record(MetricRecord {
                name: "save/d2h".into(),
                rank,
                step: 1,
                duration: Duration::from_millis(1),
                io_bytes: 0,
                path: None,
            });
        }
        let by_rank = hub.total_by_rank("save/");
        assert_eq!(by_rank[&3], Duration::from_millis(41));
        let breakdown = hub.breakdown_for_rank(0);
        assert_eq!(breakdown["save/upload"], Duration::from_millis(10));
        assert_eq!(breakdown["save/d2h"], Duration::from_millis(1));
    }

    #[test]
    fn slow_io_detection() {
        let hub = MetricsHub::new();
        let sink = hub.sink();
        sink.record(MetricRecord {
            name: "upload".into(),
            rank: 0,
            step: 0,
            duration: Duration::from_secs(1),
            io_bytes: 100, // 100 B/s: pathologically slow
            path: Some("slow.bin".into()),
        });
        sink.record(MetricRecord {
            name: "upload".into(),
            rank: 1,
            step: 0,
            duration: Duration::from_secs(1),
            io_bytes: 1 << 30, // 1 GiB/s: healthy
            path: Some("fast.bin".into()),
        });
        let slow = hub.slow_ios(1024.0 * 1024.0);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].path.as_deref(), Some("slow.bin"));
    }

    #[test]
    fn disabled_sink_drops_records() {
        let sink = MetricsSink::disabled();
        let _t = sink.timer("x", 0, 0); // must not panic on drop
    }

    #[test]
    fn concurrent_producers() {
        let hub = MetricsHub::new();
        let mut handles = Vec::new();
        for rank in 0..8 {
            let sink = hub.sink();
            handles.push(std::thread::spawn(move || {
                for step in 0..100u64 {
                    let _t = sink.timer("p", rank, step);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hub.records().len(), 800);
    }

    #[test]
    fn counted_spans_feed_aggregations_once() {
        let hub = MetricsHub::new();
        let sink = hub.sink();
        {
            let root = sink.span("save", 0, 1).uncounted();
            let phase = root.child("save/upload");
            {
                let _detail = phase.child("save/upload-file").uncounted();
            }
        }
        // Only the counted phase span contributes to the heat map / breakdown.
        let by_rank = hub.total_by_rank("save/");
        assert_eq!(by_rank.len(), 1);
        let breakdown = hub.breakdown_for_rank(0);
        assert_eq!(breakdown.len(), 1);
        assert!(breakdown.contains_key("save/upload"));
        // But all three spans are retained in full.
        assert_eq!(hub.spans().len(), 3);
    }

    #[test]
    fn uncounted_spans_still_trip_slow_io_alerts() {
        let hub = MetricsHub::new();
        let sink = hub.sink();
        {
            let mut s = sink.span("storage/disk/write", 0, 1).uncounted().path("slow.bin");
            std::thread::sleep(Duration::from_millis(10));
            s.add_bytes(10); // ~1 KB/s
        }
        let slow = hub.slow_ios(1024.0 * 1024.0);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].path.as_deref(), Some("slow.bin"));
    }

    #[test]
    fn bounded_hub_counts_dropped_events() {
        let hub = MetricsHub::bounded(2);
        let sink = hub.sink();
        for i in 0..5u64 {
            sink.record(MetricRecord {
                name: "p".into(),
                rank: 0,
                step: i,
                duration: Duration::from_millis(1),
                io_bytes: 0,
                path: None,
            });
        }
        assert_eq!(hub.records().len(), 2);
        assert_eq!(hub.dropped_records(), 3);
        // Draining frees capacity for later events.
        sink.record(MetricRecord {
            name: "p".into(),
            rank: 0,
            step: 9,
            duration: Duration::from_millis(1),
            io_bytes: 0,
            path: None,
        });
        assert_eq!(hub.records().len(), 3);
        assert_eq!(hub.dropped_records(), 3);
    }

    #[test]
    fn fanout_duplicates_into_all_hubs() {
        let user = MetricsHub::new();
        let private = MetricsHub::new();
        let sink = MetricsSink::fanout(vec![user.sink(), private.sink()]);
        {
            let _t = sink.timer("save/plan", 0, 1);
        }
        {
            let _s = sink.span("save", 0, 1);
        }
        assert_eq!(user.flat_records().len(), 1);
        assert_eq!(user.spans().len(), 1);
        assert_eq!(private.flat_records().len(), 1);
        assert_eq!(private.spans().len(), 1);
    }
}
