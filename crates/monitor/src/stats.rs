//! Latency accumulation with percentile snapshots.
//!
//! The control plane tracks per-job commit latency with a
//! [`LatencyAccumulator`]; [`LatencySnapshot`] is the serializable summary
//! that crosses the coordinator wire and lands in
//! `results/BENCH_coordinator.json`.
//! Exact percentiles over the recorded samples (bounded; the accumulator
//! keeps the most recent [`LatencyAccumulator::capacity`] samples).

use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use std::time::Duration;

/// Serializable percentile summary of a latency population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LatencySnapshot {
    /// Samples ever recorded (may exceed the retained window).
    pub count: u64,
    /// Mean over the retained window, in milliseconds.
    pub mean_ms: f64,
    /// 50th percentile, milliseconds.
    pub p50_ms: f64,
    /// 90th percentile, milliseconds.
    pub p90_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Maximum over the retained window, milliseconds.
    pub max_ms: f64,
}

/// Bounded-window latency recorder: threads record durations, snapshots
/// compute exact percentiles over the retained window.
pub struct LatencyAccumulator {
    samples: Mutex<Window>,
    capacity: usize,
}

struct Window {
    ring: Vec<f64>,
    next: usize,
    total: u64,
}

impl LatencyAccumulator {
    /// An accumulator retaining the most recent `capacity` samples
    /// (clamped to ≥ 1).
    pub fn new(capacity: usize) -> LatencyAccumulator {
        LatencyAccumulator {
            samples: Mutex::new(Window { ring: Vec::new(), next: 0, total: 0 }),
            capacity: capacity.max(1),
        }
    }

    /// The retained-window size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one latency sample.
    pub fn record(&self, latency: Duration) {
        let ms = latency.as_secs_f64() * 1e3;
        let mut w = self.samples.lock().unwrap();
        w.total += 1;
        if w.ring.len() < self.capacity {
            w.ring.push(ms);
        } else {
            let at = w.next;
            w.ring[at] = ms;
        }
        w.next = (w.next + 1) % self.capacity;
    }

    /// Percentile summary of the retained window (all zeros when empty).
    pub fn snapshot(&self) -> LatencySnapshot {
        let w = self.samples.lock().unwrap();
        if w.ring.is_empty() {
            return LatencySnapshot { count: w.total, ..LatencySnapshot::default() };
        }
        let mut sorted = w.ring.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latency samples are finite"));
        let pct = |p: f64| -> f64 {
            // Nearest-rank percentile over the sorted window.
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        LatencySnapshot {
            count: w.total,
            mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_ms: pct(50.0),
            p90_ms: pct(90.0),
            p99_ms: pct(99.0),
            max_ms: *sorted.last().expect("non-empty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_zeroed() {
        let acc = LatencyAccumulator::new(16);
        let s = acc.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_ms, 0.0);
    }

    #[test]
    fn percentiles_over_a_known_population() {
        let acc = LatencyAccumulator::new(1000);
        for i in 1..=100u64 {
            acc.record(Duration::from_millis(i));
        }
        let s = acc.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p90_ms, 90.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
    }

    #[test]
    fn window_retains_only_the_most_recent_samples() {
        let acc = LatencyAccumulator::new(10);
        for i in 0..100u64 {
            acc.record(Duration::from_millis(i));
        }
        let s = acc.snapshot();
        assert_eq!(s.count, 100);
        // Window holds 90..=99.
        assert_eq!(s.max_ms, 99.0);
        assert!(s.p50_ms >= 90.0, "window should have evicted old samples: {s:?}");
    }

    #[test]
    fn snapshot_serde_round_trip() {
        let acc = LatencyAccumulator::new(8);
        acc.record(Duration::from_millis(7));
        let s = acc.snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: LatencySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
