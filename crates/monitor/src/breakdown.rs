//! The Fig. 12 visualization: per-phase duration breakdown for one rank,
//! rendered as ASCII bars ("detailed timeline breakdowns of checkpointing
//! procedures at each rank").

use std::collections::BTreeMap;
use std::time::Duration;

/// Render a phase→duration map as sorted ASCII bars with percentages.
pub fn render_breakdown(rank: usize, phases: &BTreeMap<String, Duration>) -> String {
    // `+ 0.0`: an empty f64 sum is -0.0, which would print "-0.000";
    // adding positive zero normalizes the sign (IEEE 754: -0.0 + 0.0 = +0.0).
    let total: f64 = phases.values().map(|d| d.as_secs_f64()).sum::<f64>() + 0.0;
    let mut rows: Vec<(&String, &Duration)> = phases.iter().collect();
    rows.sort_by(|a, b| b.1.cmp(a.1));
    let width = 40usize;
    let name_w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(8).max(8);
    let mut out = format!("phase breakdown for rank {rank} (total {total:.3}s)\n");
    for (name, d) in rows {
        let frac = if total > 0.0 { d.as_secs_f64() / total } else { 0.0 };
        let bars = (frac * width as f64).round() as usize;
        out.push_str(&format!(
            "  {:<name_w$} {:>9.4}s {:>6.2}% |{}\n",
            name,
            d.as_secs_f64(),
            frac * 100.0,
            "█".repeat(bars),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_sorted_bars() {
        let mut phases = BTreeMap::new();
        phases.insert("save/upload".to_string(), Duration::from_millis(300));
        phases.insert("save/serialize".to_string(), Duration::from_millis(100));
        phases.insert("save/d2h".to_string(), Duration::from_millis(10));
        let s = render_breakdown(0, &phases);
        // Longest phase listed first.
        let upload_pos = s.find("save/upload").unwrap();
        let d2h_pos = s.find("save/d2h").unwrap();
        assert!(upload_pos < d2h_pos);
        assert!(s.contains("rank 0"));
        assert!(s.contains('█'));
    }

    #[test]
    fn empty_breakdown_does_not_divide_by_zero() {
        let s = render_breakdown(1, &BTreeMap::new());
        assert!(s.contains("total 0.000s"));
    }
}
