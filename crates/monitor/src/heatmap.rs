//! The Fig. 11 visualization: a topology heat map of per-rank durations.
//!
//! "ByteCheckpoint provides users with a comprehensive topological
//! performance overview of all ranks ... Fig. 11 presents an exemplary
//! heat-map visualization of checkpoint saving times within a 3D parallel
//! training topology." Rendered as ASCII (terminal) and CSV (tooling).

use std::collections::BTreeMap;
use std::time::Duration;

/// Grid arrangement for the heat map. With 3D parallelism the paper plots
/// the PP × (DP·TP) plane; any rows × cols factorization of the world works.
#[derive(Debug, Clone, Copy)]
pub struct HeatmapSpec {
    /// Number of rows (e.g. the PP degree).
    pub rows: usize,
    /// Number of columns (e.g. DP·TP).
    pub cols: usize,
    /// Label for the row axis.
    pub row_label: &'static str,
    /// Label for the column axis.
    pub col_label: &'static str,
}

const SHADES: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Render per-rank durations as an ASCII heat map plus a CSV block.
///
/// Rank `r` lands at `(r / cols, r % cols)`. Missing ranks render as `?`.
pub fn render_heatmap(spec: &HeatmapSpec, by_rank: &BTreeMap<usize, Duration>) -> String {
    let max = by_rank.values().copied().max().unwrap_or(Duration::ZERO);
    let max_s = max.as_secs_f64().max(1e-12);
    let mut out = String::new();
    out.push_str(&format!(
        "heatmap rows={} ({}) cols={} ({}), max={:.3}s\n",
        spec.rows,
        spec.row_label,
        spec.cols,
        spec.col_label,
        max.as_secs_f64()
    ));
    // Column header.
    out.push_str("      ");
    for c in 0..spec.cols {
        out.push_str(&format!("{:>3}", c % 1000));
    }
    out.push('\n');
    for r in 0..spec.rows {
        out.push_str(&format!("{:>4} |", r));
        for c in 0..spec.cols {
            let rank = r * spec.cols + c;
            match by_rank.get(&rank) {
                Some(d) => {
                    let frac = d.as_secs_f64() / max_s;
                    let idx =
                        ((frac * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
                    out.push_str(&format!("  {}", SHADES[idx]));
                }
                None => out.push_str("  ?"),
            }
        }
        out.push('\n');
    }
    // CSV block for tooling.
    out.push_str("csv: rank,row,col,seconds\n");
    for (&rank, d) in by_rank {
        out.push_str(&format!(
            "csv: {},{},{},{:.6}\n",
            rank,
            rank / spec.cols,
            rank % spec.cols,
            d.as_secs_f64()
        ));
    }
    out
}

/// Identify straggler ranks: those whose duration exceeds the mean by
/// `factor`. The paper's stated use case: "easily pinpoint straggler nodes".
pub fn stragglers(by_rank: &BTreeMap<usize, Duration>, factor: f64) -> Vec<usize> {
    if by_rank.is_empty() {
        return Vec::new();
    }
    let mean: f64 = by_rank.values().map(|d| d.as_secs_f64()).sum::<f64>() / by_rank.len() as f64;
    by_rank.iter().filter(|(_, d)| d.as_secs_f64() > mean * factor).map(|(&r, _)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BTreeMap<usize, Duration> {
        // 8 ranks; ranks 0 and 4 are slow (dataloader holders, like Fig 11).
        let mut m = BTreeMap::new();
        for r in 0..8 {
            let ms = if r % 4 == 0 { 100 } else { 10 };
            m.insert(r, Duration::from_millis(ms));
        }
        m
    }

    #[test]
    fn renders_grid_and_csv() {
        let spec = HeatmapSpec { rows: 2, cols: 4, row_label: "pp", col_label: "dp*tp" };
        let s = render_heatmap(&spec, &sample());
        assert!(s.contains("rows=2"));
        // Slow ranks get the darkest shade.
        assert!(s.contains('@'));
        // CSV has one line per rank.
        assert_eq!(s.lines().filter(|l| l.starts_with("csv: ") && l.contains(',')).count(), 9);
        assert!(s.contains("csv: 4,1,0,0.100000"));
    }

    #[test]
    fn missing_ranks_marked() {
        let spec = HeatmapSpec { rows: 1, cols: 4, row_label: "pp", col_label: "dp" };
        let mut m = BTreeMap::new();
        m.insert(0usize, Duration::from_millis(5));
        let s = render_heatmap(&spec, &m);
        assert!(s.contains('?'));
    }

    #[test]
    fn straggler_detection() {
        let found = stragglers(&sample(), 2.0);
        assert_eq!(found, vec![0, 4]);
        assert!(stragglers(&BTreeMap::new(), 2.0).is_empty());
    }
}
