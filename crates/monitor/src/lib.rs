//! # bcp-monitor — performance monitoring and visualization (paper §5.3)
//!
//! "ByteCheckpoint continuously collects critical performance measurements
//! and visualizes them for real-time performance monitoring and analysis."
//!
//! * [`MetricsSink`] — a cheap, cloneable handle training/engine threads use
//!   to record scoped timings ([`MetricsSink::timer`], the Rust analogue of
//!   the paper's context-manager/decorator metrics syntax) and I/O sizes.
//!   Records flow over a background channel (the paper's message queue) to
//!   the [`MetricsHub`].
//! * [`MetricsHub`] — drains and aggregates records; answers the queries the
//!   visualizations need (per-rank phase totals, per-phase breakdowns).
//! * [`heatmap`] — the Fig. 11 visualization: a rank-topology heat map of
//!   end-to-end saving time, rendered as ASCII + CSV.
//! * [`breakdown`] — the Fig. 12 visualization: per-phase duration bars for
//!   one rank.

pub mod breakdown;
pub mod heatmap;
pub mod metrics;

pub use breakdown::render_breakdown;
pub use heatmap::{render_heatmap, HeatmapSpec};
pub use metrics::{MetricRecord, MetricsHub, MetricsSink, TimerGuard};
