//! # bcp-monitor — performance monitoring and visualization (paper §5.3)
//!
//! "ByteCheckpoint continuously collects critical performance measurements
//! and visualizes them for real-time performance monitoring and analysis."
//!
//! * [`MetricsSink`] — a cheap, cloneable handle training/engine threads use
//!   to record scoped timings ([`MetricsSink::timer`], the Rust analogue of
//!   the paper's context-manager/decorator metrics syntax), I/O sizes, and
//!   hierarchical [`span`]s. Events flow over a background channel (the
//!   paper's message queue) to the [`MetricsHub`].
//! * [`MetricsHub`] — drains and aggregates records; answers the queries the
//!   visualizations need (per-rank phase totals, per-phase breakdowns). Has
//!   a bounded-capacity mode ([`MetricsHub::bounded`]) with a
//!   dropped-events counter for runs that never drain.
//! * [`span`] — hierarchical tracing: span id + parent id, attributes,
//!   events; one save step becomes a navigable trace tree.
//! * [`telemetry`] — the persisted per-step artifact (`_telemetry.jsonl`):
//!   records + span tree + failure excerpts, written next to each committed
//!   checkpoint so analysis works offline.
//! * [`analysis`] — per-phase p50/p95/p99, cross-rank critical-path
//!   detection, regression checks against a rolling baseline.
//! * [`export`] — Chrome trace-event JSON (Perfetto-loadable) and CSV.
//! * [`heatmap`] — the Fig. 11 visualization: a rank-topology heat map of
//!   end-to-end saving time, rendered as ASCII + CSV.
//! * [`breakdown`] — the Fig. 12 visualization: per-phase duration bars for
//!   one rank.

pub mod analysis;
pub mod breakdown;
pub mod export;
pub mod heatmap;
pub mod metrics;
pub mod span;
pub mod stats;
pub mod telemetry;

pub use breakdown::render_breakdown;
pub use heatmap::{render_heatmap, HeatmapSpec};
pub use metrics::{MetricRecord, MetricsHub, MetricsSink, TelemetryEvent, TimerGuard};
pub use span::{enter_context, EnterGuard, SpanContext, SpanEvent, SpanGuard, SpanRecord};
pub use stats::{LatencyAccumulator, LatencySnapshot};
pub use telemetry::{
    FailureExcerpt, RankTelemetry, StepTelemetry, TELEMETRY_LOAD_FILE, TELEMETRY_SAVE_FILE,
};
