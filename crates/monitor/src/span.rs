//! Hierarchical tracing spans.
//!
//! Flat [`crate::MetricRecord`]s answer "how long did phase X take", but the
//! paper's offline straggler diagnosis needs the *structure* of a save — which
//! storage write ran under which upload, what overlapped with what. A
//! [`SpanRecord`] is a timed region with a span id, an optional parent id,
//! free-form attributes, and point-in-time events; together the spans of one
//! step form a navigable trace tree that exports directly to Chrome
//! trace-event JSON (see [`crate::export`]).
//!
//! Spans are produced by [`SpanGuard`]s (RAII, like [`crate::TimerGuard`]) and
//! flow over the same channel into the [`crate::MetricsHub`]. Parentage is
//! explicit: pass a [`SpanContext`] across threads, or push one onto the
//! thread-local context stack with [`SpanGuard::enter`] /
//! [`enter_context`] so deeper layers (e.g. instrumented storage backends)
//! can attach without plumbing.

use crate::metrics::{MetricsSink, TelemetryEvent};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Process-wide monotonically increasing span ids (0 is never issued).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

/// The instant all span start offsets are measured from. Fixed at first use
/// so spans from every thread share one timeline.
fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process epoch.
fn now_us() -> u64 {
    process_epoch().elapsed().as_micros() as u64
}

/// A point-in-time annotation inside a span ("retry 2 started").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Event label.
    pub name: String,
    /// Microseconds since the process epoch.
    pub at_us: u64,
}

/// One completed span: a timed region in the trace tree of a step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Unique (per process) span id.
    pub id: u64,
    /// Parent span id, `None` for a root span.
    #[serde(default)]
    pub parent: Option<u64>,
    /// Phase/operation name, e.g. `"save/upload"` or `"storage/disk/write"`.
    pub name: String,
    /// Worker rank that produced the span.
    pub rank: usize,
    /// Global training step at the time of the operation.
    pub step: u64,
    /// Start offset in microseconds since the process epoch (a shared
    /// monotonic timeline, *not* wall-clock time).
    pub start_us: u64,
    /// Wall-clock duration of the region.
    pub duration: Duration,
    /// Bytes moved, when the operation is an I/O.
    #[serde(default)]
    pub io_bytes: u64,
    /// File path involved, when applicable.
    #[serde(default)]
    pub path: Option<String>,
    /// Free-form key/value annotations (backend config, error text, ...).
    #[serde(default)]
    pub attrs: BTreeMap<String, String>,
    /// Point-in-time events observed while the span was open.
    #[serde(default)]
    pub events: Vec<SpanEvent>,
    /// Whether aggregations that sum durations (heat maps, breakdowns)
    /// should count this span. Roots and per-item detail spans are marked
    /// uncounted so a phase is never double-counted with its children.
    #[serde(default = "default_true")]
    pub counted: bool,
}

fn default_true() -> bool {
    true
}

impl SpanRecord {
    /// Effective throughput in bytes/second (None when no I/O or no time).
    pub fn throughput(&self) -> Option<f64> {
        if self.io_bytes == 0 || self.duration.is_zero() {
            None
        } else {
            Some(self.io_bytes as f64 / self.duration.as_secs_f64())
        }
    }
}

/// A copyable reference to an open span, used to parent spans across
/// threads and call boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanContext {
    id: Option<u64>,
    rank: usize,
    step: u64,
}

impl SpanContext {
    /// A context with no parent: spans created under it become roots.
    pub fn none() -> SpanContext {
        SpanContext::default()
    }

    /// The referenced span id (None = no parent).
    pub fn id(&self) -> Option<u64> {
        self.id
    }

    /// Rank of the referenced span (0 when none).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Step of the referenced span (0 when none).
    pub fn step(&self) -> u64 {
        self.step
    }
}

// ---------------------------------------------------------------------------
// Thread-local context stack.
// ---------------------------------------------------------------------------

thread_local! {
    static ACTIVE: RefCell<Vec<SpanContext>> = const { RefCell::new(Vec::new()) };
}

/// The innermost entered span context on this thread, if any.
pub fn current_context() -> Option<SpanContext> {
    ACTIVE.with(|s| s.borrow().last().copied())
}

/// Push an explicit context onto this thread's stack (for worker threads
/// that received a [`SpanContext`] from their spawner). Popped when the
/// returned guard drops.
pub fn enter_context(ctx: SpanContext) -> EnterGuard {
    ACTIVE.with(|s| s.borrow_mut().push(ctx));
    EnterGuard { ctx }
}

/// RAII guard returned by [`SpanGuard::enter`] / [`enter_context`]; pops the
/// context from the thread-local stack on drop.
pub struct EnterGuard {
    ctx: SpanContext,
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        ACTIVE.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop *this* entry specifically: guards may be dropped out of
            // order if a span guard outlives an inner enter.
            if let Some(pos) = stack.iter().rposition(|c| c == &self.ctx) {
                stack.remove(pos);
            }
        });
    }
}

// ---------------------------------------------------------------------------
// SpanGuard.
// ---------------------------------------------------------------------------

/// RAII guard emitting a [`SpanRecord`] on drop.
pub struct SpanGuard {
    sink: MetricsSink,
    rec: SpanRecord,
    start: Instant,
}

impl MetricsSink {
    /// Start a root span (no parent).
    pub fn span(&self, name: impl Into<String>, rank: usize, step: u64) -> SpanGuard {
        self.span_under(name, rank, step, SpanContext::none())
    }

    /// Start a span under an explicit parent context.
    pub fn span_under(
        &self,
        name: impl Into<String>,
        rank: usize,
        step: u64,
        parent: SpanContext,
    ) -> SpanGuard {
        SpanGuard {
            sink: self.clone(),
            rec: SpanRecord {
                id: next_span_id(),
                parent: parent.id(),
                name: name.into(),
                rank,
                step,
                start_us: now_us(),
                duration: Duration::ZERO,
                io_bytes: 0,
                path: None,
                attrs: BTreeMap::new(),
                events: Vec::new(),
                counted: true,
            },
            start: Instant::now(),
        }
    }

    /// Start a span parented on this thread's innermost entered context
    /// (see [`SpanGuard::enter`]); rank and step are inherited from it.
    /// Falls back to a root span at `fallback_rank`, step 0, when no
    /// context is entered — e.g. storage calls outside any workflow.
    pub fn span_in_context(&self, name: impl Into<String>, fallback_rank: usize) -> SpanGuard {
        match current_context() {
            Some(ctx) => self.span_under(name, ctx.rank(), ctx.step(), ctx),
            None => self.span(name, fallback_rank, 0),
        }
    }
}

impl SpanGuard {
    /// Unique id of this span.
    pub fn id(&self) -> u64 {
        self.rec.id
    }

    /// A copyable handle other threads/calls can parent spans under.
    pub fn context(&self) -> SpanContext {
        SpanContext { id: Some(self.rec.id), rank: self.rec.rank, step: self.rec.step }
    }

    /// Push this span onto the thread-local context stack so nested code
    /// (e.g. instrumented storage backends) attaches under it without
    /// explicit plumbing.
    pub fn enter(&self) -> EnterGuard {
        enter_context(self.context())
    }

    /// Start a child span on the same rank/step.
    pub fn child(&self, name: impl Into<String>) -> SpanGuard {
        self.sink.span_under(name, self.rec.rank, self.rec.step, self.context())
    }

    /// Attach an I/O size to the eventual record.
    pub fn bytes(mut self, n: u64) -> SpanGuard {
        self.rec.io_bytes = n;
        self
    }

    /// Attach (or accumulate) I/O bytes on a guard held by reference.
    pub fn add_bytes(&mut self, n: u64) {
        self.rec.io_bytes += n;
    }

    /// Attach a file path to the eventual record.
    pub fn path(mut self, p: impl Into<String>) -> SpanGuard {
        self.rec.path = Some(p.into());
        self
    }

    /// Attach an attribute (builder form).
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> SpanGuard {
        self.rec.attrs.insert(key.into(), value.into());
        self
    }

    /// Attach an attribute on a guard held by reference.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.rec.attrs.insert(key.into(), value.into());
    }

    /// Record a point-in-time event inside this span.
    pub fn event(&mut self, name: impl Into<String>) {
        self.rec.events.push(SpanEvent { name: name.into(), at_us: now_us() });
    }

    /// Exclude this span from duration-summing aggregations (builder form);
    /// use for roots and per-item detail spans whose time is already covered
    /// by a counted phase span.
    pub fn uncounted(mut self) -> SpanGuard {
        self.rec.counted = false;
        self
    }

    /// Re-stamp the step, e.g. once a load learns the real step from the
    /// checkpoint metadata. Does not retroactively re-stamp children.
    pub fn set_step(&mut self, step: u64) {
        self.rec.step = step;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.rec.duration = self.start.elapsed();
        let rec = std::mem::replace(
            &mut self.rec,
            SpanRecord {
                id: 0,
                parent: None,
                name: String::new(),
                rank: 0,
                step: 0,
                start_us: 0,
                duration: Duration::ZERO,
                io_bytes: 0,
                path: None,
                attrs: BTreeMap::new(),
                events: Vec::new(),
                counted: false,
            },
        );
        self.sink.emit(TelemetryEvent::Span(rec));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsHub;

    #[test]
    fn span_parentage_and_fields() {
        let hub = MetricsHub::new();
        let sink = hub.sink();
        {
            let mut root = sink.span("save", 2, 7).uncounted().attr("backend", "mem");
            root.event("started");
            {
                let _child = root.child("save/upload").bytes(4096).path("f.bin");
            }
        }
        let spans = hub.spans();
        assert_eq!(spans.len(), 2);
        let root = spans.iter().find(|s| s.name == "save").unwrap();
        let child = spans.iter().find(|s| s.name == "save/upload").unwrap();
        assert_eq!(root.parent, None);
        assert!(!root.counted);
        assert_eq!(root.attrs["backend"], "mem");
        assert_eq!(root.events.len(), 1);
        assert_eq!(child.parent, Some(root.id));
        assert_eq!((child.rank, child.step), (2, 7));
        assert_eq!(child.io_bytes, 4096);
        assert_eq!(child.path.as_deref(), Some("f.bin"));
        assert!(child.counted);
        assert!(child.start_us >= root.start_us);
    }

    #[test]
    fn context_stack_parents_nested_spans() {
        let hub = MetricsHub::new();
        let sink = hub.sink();
        {
            let phase = sink.span("save/upload", 1, 5);
            let _e = phase.enter();
            let _io = sink.span_in_context("storage/disk/write", 99);
        }
        // Stack unwound: a fresh span falls back to the given rank.
        {
            let _orphan = sink.span_in_context("storage/disk/read", 3);
        }
        let spans = hub.spans();
        let phase = spans.iter().find(|s| s.name == "save/upload").unwrap();
        let io = spans.iter().find(|s| s.name == "storage/disk/write").unwrap();
        let orphan = spans.iter().find(|s| s.name == "storage/disk/read").unwrap();
        assert_eq!(io.parent, Some(phase.id));
        assert_eq!((io.rank, io.step), (1, 5));
        assert_eq!(orphan.parent, None);
        assert_eq!((orphan.rank, orphan.step), (3, 0));
    }

    #[test]
    fn enter_context_carries_parent_across_threads() {
        let hub = MetricsHub::new();
        let sink = hub.sink();
        let phase = sink.span("save/loader", 0, 9);
        let ctx = phase.context();
        let worker_sink = sink.clone();
        std::thread::spawn(move || {
            let _e = enter_context(ctx);
            let _io = worker_sink.span_in_context("storage/disk/write", 0);
        })
        .join()
        .unwrap();
        drop(phase);
        let spans = hub.spans();
        let phase = spans.iter().find(|s| s.name == "save/loader").unwrap();
        let io = spans.iter().find(|s| s.name == "storage/disk/write").unwrap();
        assert_eq!(io.parent, Some(phase.id));
        assert_eq!(io.step, 9);
    }

    #[test]
    fn set_step_restamps() {
        let hub = MetricsHub::new();
        let sink = hub.sink();
        {
            let mut root = sink.span("load", 0, 0);
            root.set_step(42);
        }
        assert_eq!(hub.spans()[0].step, 42);
    }
}
