//! Trace exporters: Chrome trace-event JSON (loadable in `chrome://tracing`
//! / Perfetto) and CSV, for offline inspection of persisted telemetry.

use crate::metrics::MetricRecord;
use crate::span::SpanRecord;
use serde_json::{json, Map, Value};

/// Render spans as a Chrome trace-event JSON document. Each span becomes a
/// complete event (`ph: "X"`) with `pid`/`tid` set to the rank, so Perfetto
/// shows one track per rank; span events become instant events (`ph: "i"`).
/// Timestamps are microseconds on the shared process timeline.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut ordered: Vec<&SpanRecord> = spans.iter().collect();
    ordered.sort_by_key(|s| (s.rank, s.start_us, s.id));
    let mut events: Vec<Value> = Vec::new();
    for span in ordered {
        let mut args = Map::new();
        args.insert("step".into(), json!(span.step));
        args.insert("span_id".into(), json!(span.id));
        if let Some(parent) = span.parent {
            args.insert("parent_id".into(), json!(parent));
        }
        if span.io_bytes > 0 {
            args.insert("io_bytes".into(), json!(span.io_bytes));
        }
        if let Some(path) = &span.path {
            args.insert("path".into(), json!(path));
        }
        for (k, v) in &span.attrs {
            args.insert(k.clone(), json!(v));
        }
        events.push(json!({
            "name": span.name,
            "cat": "bcp",
            "ph": "X",
            "ts": span.start_us,
            "dur": span.duration.as_micros() as u64,
            "pid": span.rank,
            "tid": span.rank,
            "args": Value::Object(args),
        }));
        for ev in &span.events {
            events.push(json!({
                "name": ev.name,
                "cat": "bcp",
                "ph": "i",
                "s": "t",
                "ts": ev.at_us,
                "pid": span.rank,
                "tid": span.rank,
            }));
        }
    }
    let doc = json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
    });
    serde_json::to_string_pretty(&doc).expect("serialize trace")
}

/// Minimal CSV field escaping: quote when a field contains a comma, quote,
/// or newline.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Render flat metric records as CSV.
pub fn records_csv(records: &[MetricRecord]) -> String {
    let mut out = String::from("name,rank,step,duration_s,io_bytes,path\n");
    for rec in records {
        out.push_str(&format!(
            "{},{},{},{:.6},{},{}\n",
            csv_field(&rec.name),
            rec.rank,
            rec.step,
            rec.duration.as_secs_f64(),
            rec.io_bytes,
            csv_field(rec.path.as_deref().unwrap_or("")),
        ));
    }
    out
}

/// Render spans as CSV (one row per span; attrs joined as `k=v` pairs).
pub fn spans_csv(spans: &[SpanRecord]) -> String {
    let mut ordered: Vec<&SpanRecord> = spans.iter().collect();
    ordered.sort_by_key(|s| (s.rank, s.start_us, s.id));
    let mut out =
        String::from("id,parent,name,rank,step,start_us,duration_us,io_bytes,counted,path,attrs\n");
    for span in ordered {
        let attrs: Vec<String> = span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}\n",
            span.id,
            span.parent.map(|p| p.to_string()).unwrap_or_default(),
            csv_field(&span.name),
            span.rank,
            span.step,
            span.start_us,
            span.duration.as_micros(),
            span.io_bytes,
            span.counted,
            csv_field(span.path.as_deref().unwrap_or("")),
            csv_field(&attrs.join(";")),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_one_event_per_span() {
        let span = SpanRecord {
            id: 1,
            parent: None,
            name: "save".into(),
            rank: 0,
            step: 1,
            start_us: 0,
            duration: Duration::from_micros(500),
            io_bytes: 0,
            path: None,
            attrs: Default::default(),
            events: vec![crate::span::SpanEvent { name: "tick".into(), at_us: 250 }],
            counted: false,
        };
        let doc: serde_json::Value = serde_json::from_str(&chrome_trace(&[span])).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 2); // span + instant event
        assert_eq!(events[0]["ph"], "X");
        assert_eq!(events[0]["dur"], 500);
        assert_eq!(events[1]["ph"], "i");
    }
}
