//! Persisted per-step telemetry artifacts.
//!
//! Every committed step writes a `_telemetry.jsonl` file next to the
//! checkpoint (via the normal storage backend): one JSON line per rank,
//! holding that rank's flat metric records, its span tree, failure-log
//! excerpts, and the dropped-event counter. The artifact is what makes the
//! paper's §5.3 diagnosis workflow *offline* — `bcpctl report` and the
//! analysis/export modules consume it long after the training processes are
//! gone.

use crate::metrics::{breakdown_from, slow_ios_from, total_by_rank_from, MetricRecord};
use crate::span::SpanRecord;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// Telemetry artifact written next to each committed save.
pub const TELEMETRY_SAVE_FILE: &str = "_telemetry.jsonl";
/// Telemetry artifact written after each completed load of a step.
pub const TELEMETRY_LOAD_FILE: &str = "_telemetry_load.jsonl";

/// A failure-log excerpt carried in the artifact (mirrors the core crate's
/// `FailureRecord` without depending on it).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureExcerpt {
    /// Rank that observed the failure.
    pub rank: usize,
    /// Workflow stage, e.g. `"save/upload"`.
    pub stage: String,
    /// Object path involved, when applicable.
    #[serde(default)]
    pub path: Option<String>,
    /// 1-based attempt number.
    pub attempt: u32,
    /// Stringified error.
    pub error: String,
    /// Whether another attempt followed.
    pub retried: bool,
}

/// One rank's telemetry for one step — one JSON line of the artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankTelemetry {
    /// Producing rank.
    pub rank: usize,
    /// Step the telemetry describes.
    pub step: u64,
    /// `"save"` or `"load"`.
    pub op: String,
    /// Flat metric records (legacy timers, failover markers).
    #[serde(default)]
    pub records: Vec<MetricRecord>,
    /// The rank's span tree for the step.
    #[serde(default)]
    pub spans: Vec<SpanRecord>,
    /// Failure-log excerpts observed by this rank.
    #[serde(default)]
    pub failures: Vec<FailureExcerpt>,
    /// Telemetry events dropped at this rank (bounded hub overflow); non-zero
    /// means this line undercounts.
    #[serde(default)]
    pub dropped_records: u64,
}

/// A full step's telemetry: every rank's line, coordinator-gathered.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StepTelemetry {
    /// Per-rank telemetry, in gather order (rank-ascending).
    pub ranks: Vec<RankTelemetry>,
}

impl StepTelemetry {
    /// Serialize as JSON-lines: one rank per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for rank in &self.ranks {
            // RankTelemetry contains no unserializable types; failure here
            // would be a bug, and a lost line is worse than a panic in the
            // writer's error path — so fall back to an empty line never.
            out.push_str(&serde_json::to_string(rank).expect("serialize RankTelemetry"));
            out.push('\n');
        }
        out
    }

    /// Parse a JSON-lines artifact (blank lines ignored).
    pub fn from_jsonl(text: &str) -> Result<StepTelemetry, String> {
        let mut ranks = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let rank: RankTelemetry =
                serde_json::from_str(line).map_err(|e| format!("telemetry line {}: {e}", i + 1))?;
            ranks.push(rank);
        }
        Ok(StepTelemetry { ranks })
    }

    /// The step described, from the first line.
    pub fn step(&self) -> Option<u64> {
        self.ranks.first().map(|r| r.step)
    }

    /// The operation described (`"save"` / `"load"`), from the first line.
    pub fn op(&self) -> Option<&str> {
        self.ranks.first().map(|r| r.op.as_str())
    }

    /// All flat records plus counted spans flattened to record form — the
    /// input the heat-map/breakdown/percentile queries expect.
    pub fn all_records(&self) -> Vec<MetricRecord> {
        let mut out = Vec::new();
        for rank in &self.ranks {
            out.extend(rank.records.iter().cloned());
            out.extend(rank.spans.iter().filter(|s| s.counted).map(MetricRecord::from_span));
        }
        out
    }

    /// Every span from every rank.
    pub fn all_spans(&self) -> Vec<SpanRecord> {
        self.ranks.iter().flat_map(|r| r.spans.iter().cloned()).collect()
    }

    /// Every failure excerpt from every rank.
    pub fn all_failures(&self) -> Vec<FailureExcerpt> {
        self.ranks.iter().flat_map(|r| r.failures.iter().cloned()).collect()
    }

    /// Sum of dropped-event counters across ranks.
    pub fn dropped_records(&self) -> u64 {
        self.ranks.iter().map(|r| r.dropped_records).sum()
    }

    /// Per-rank total duration for phases whose name has `prefix` (Fig. 11).
    pub fn total_by_rank(&self, prefix: &str) -> BTreeMap<usize, Duration> {
        total_by_rank_from(&self.all_records(), prefix)
    }

    /// Per-phase totals for one rank (Fig. 12).
    pub fn breakdown_for_rank(&self, rank: usize) -> BTreeMap<String, Duration> {
        breakdown_from(&self.all_records(), rank)
    }

    /// I/Os (records, counted spans, and uncounted detail spans) below
    /// `min_bps`.
    pub fn slow_ios(&self, min_bps: f64) -> Vec<MetricRecord> {
        let mut all = self.all_records();
        for rank in &self.ranks {
            all.extend(rank.spans.iter().filter(|s| !s.counted).map(MetricRecord::from_span));
        }
        slow_ios_from(all, min_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;

    fn span(
        id: u64,
        parent: Option<u64>,
        name: &str,
        rank: usize,
        ms: u64,
        counted: bool,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.into(),
            rank,
            step: 7,
            start_us: id * 10,
            duration: Duration::from_millis(ms),
            io_bytes: 0,
            path: None,
            attrs: Map::new(),
            events: Vec::new(),
            counted,
        }
    }

    fn artifact() -> StepTelemetry {
        StepTelemetry {
            ranks: vec![
                RankTelemetry {
                    rank: 0,
                    step: 7,
                    op: "save".into(),
                    records: vec![MetricRecord {
                        name: "save/plan".into(),
                        rank: 0,
                        step: 7,
                        duration: Duration::from_millis(2),
                        io_bytes: 0,
                        path: None,
                    }],
                    spans: vec![
                        span(1, None, "save", 0, 50, false),
                        span(2, Some(1), "save/upload", 0, 40, true),
                    ],
                    failures: vec![FailureExcerpt {
                        rank: 0,
                        stage: "save/upload".into(),
                        path: Some("f.bin".into()),
                        attempt: 1,
                        error: "flaky".into(),
                        retried: true,
                    }],
                    dropped_records: 3,
                },
                RankTelemetry {
                    rank: 1,
                    step: 7,
                    op: "save".into(),
                    records: vec![],
                    spans: vec![
                        span(10, None, "save", 1, 90, false),
                        span(11, Some(10), "save/upload", 1, 80, true),
                    ],
                    failures: vec![],
                    dropped_records: 0,
                },
            ],
        }
    }

    #[test]
    fn jsonl_roundtrip() {
        let art = artifact();
        let text = art.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        let back = StepTelemetry::from_jsonl(&text).unwrap();
        assert_eq!(back.ranks.len(), 2);
        assert_eq!(back.step(), Some(7));
        assert_eq!(back.op(), Some("save"));
        assert_eq!(back.ranks[0].spans, art.ranks[0].spans);
        assert_eq!(back.ranks[0].failures, art.ranks[0].failures);
        assert_eq!(back.dropped_records(), 3);
    }

    #[test]
    fn from_jsonl_rejects_garbage() {
        assert!(StepTelemetry::from_jsonl("not json\n").is_err());
        assert!(StepTelemetry::from_jsonl("\n\n").unwrap().ranks.is_empty());
    }

    #[test]
    fn aggregations_skip_uncounted_roots() {
        let art = artifact();
        let by_rank = art.total_by_rank("save/");
        // Root "save" spans (uncounted) are excluded; counted upload spans
        // plus rank 0's flat plan record remain.
        assert_eq!(by_rank[&0], Duration::from_millis(42));
        assert_eq!(by_rank[&1], Duration::from_millis(80));
        let breakdown = art.breakdown_for_rank(0);
        assert_eq!(breakdown["save/upload"], Duration::from_millis(40));
        assert_eq!(breakdown["save/plan"], Duration::from_millis(2));
        assert!(!breakdown.contains_key("save"));
    }
}
