//! Offline analysis over collected telemetry: per-phase percentile
//! histograms, cross-rank critical-path detection, and regression checks
//! against a rolling baseline of prior steps (paper §5.3's "analysis"
//! half — the queries an oncall runs on a slow job's persisted traces).

use crate::metrics::{total_by_rank_from, MetricRecord};
use std::collections::BTreeMap;
use std::time::Duration;

/// Percentile summary of one phase's durations across ranks/occurrences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStats {
    /// Number of samples.
    pub count: usize,
    /// Sum of all samples.
    pub total: Duration,
    /// Median duration.
    pub p50: Duration,
    /// 95th-percentile duration.
    pub p95: Duration,
    /// 99th-percentile duration.
    pub p99: Duration,
    /// Slowest sample.
    pub max: Duration,
}

/// Nearest-rank percentile of a sorted sample set (q in [0, 1]).
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Per-phase p50/p95/p99 over all records, keyed by phase name.
pub fn phase_percentiles(records: &[MetricRecord]) -> BTreeMap<String, PhaseStats> {
    let mut samples: BTreeMap<String, Vec<Duration>> = BTreeMap::new();
    for rec in records {
        samples.entry(rec.name.clone()).or_default().push(rec.duration);
    }
    samples
        .into_iter()
        .map(|(name, mut durs)| {
            durs.sort();
            let stats = PhaseStats {
                count: durs.len(),
                total: durs.iter().sum(),
                p50: percentile(&durs, 0.50),
                p95: percentile(&durs, 0.95),
                p99: percentile(&durs, 0.99),
                max: *durs.last().unwrap(),
            };
            (name, stats)
        })
        .collect()
}

/// The rank (and its dominant phase) that gated a step — since every rank
/// waits at the commit barrier, the slowest rank's total *is* the step's
/// critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Slowest rank.
    pub rank: usize,
    /// That rank's total time under the analyzed prefix.
    pub total: Duration,
    /// The phase contributing most to the slowest rank's total.
    pub dominant_phase: String,
    /// Time spent in the dominant phase.
    pub dominant: Duration,
    /// Median per-rank total, for contrast.
    pub median_total: Duration,
}

/// Find the critical-path rank for phases under `prefix` (e.g. `"save/"`).
/// Returns `None` when no record matches.
pub fn critical_path(records: &[MetricRecord], prefix: &str) -> Option<CriticalPath> {
    let by_rank = total_by_rank_from(records, prefix);
    let (&rank, &total) = by_rank.iter().max_by_key(|(_, d)| **d)?;
    let mut totals: Vec<Duration> = by_rank.values().copied().collect();
    totals.sort();
    let median_total = totals[totals.len() / 2];
    let mut phases: BTreeMap<&str, Duration> = BTreeMap::new();
    for rec in records {
        if rec.rank == rank && rec.name.starts_with(prefix) {
            *phases.entry(rec.name.as_str()).or_insert(Duration::ZERO) += rec.duration;
        }
    }
    let (dominant_phase, dominant) =
        phases.into_iter().max_by_key(|(_, d)| *d).map(|(n, d)| (n.to_string(), d))?;
    Some(CriticalPath { rank, total, dominant_phase, dominant, median_total })
}

/// A phase that slowed down relative to the rolling baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Phase name.
    pub phase: String,
    /// Duration in the step under analysis.
    pub current: Duration,
    /// Mean duration across the baseline steps.
    pub baseline: Duration,
    /// `current / baseline`.
    pub factor: f64,
}

/// Compare one step's per-phase totals against a rolling baseline (the
/// per-phase totals of prior steps); report phases whose current total
/// exceeds `factor` × the baseline mean. Phases absent from every baseline
/// step are skipped (nothing to regress against).
pub fn regressions(
    current: &BTreeMap<String, Duration>,
    baseline: &[BTreeMap<String, Duration>],
    factor: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for (phase, &cur) in current {
        let samples: Vec<Duration> =
            baseline.iter().filter_map(|step| step.get(phase).copied()).collect();
        if samples.is_empty() {
            continue;
        }
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        if mean.is_zero() {
            continue;
        }
        let ratio = cur.as_secs_f64() / mean.as_secs_f64();
        if ratio > factor {
            out.push(Regression {
                phase: phase.clone(),
                current: cur,
                baseline: mean,
                factor: ratio,
            });
        }
    }
    out.sort_by(|a, b| b.factor.total_cmp(&a.factor));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, rank: usize, ms: u64) -> MetricRecord {
        MetricRecord {
            name: name.into(),
            rank,
            step: 1,
            duration: Duration::from_millis(ms),
            io_bytes: 0,
            path: None,
        }
    }

    #[test]
    fn percentiles_nearest_rank() {
        let records: Vec<MetricRecord> =
            (1..=100).map(|i| rec("save/upload", i as usize, i)).collect();
        let stats = &phase_percentiles(&records)["save/upload"];
        assert_eq!(stats.count, 100);
        assert_eq!(stats.p50, Duration::from_millis(50));
        assert_eq!(stats.p95, Duration::from_millis(95));
        assert_eq!(stats.p99, Duration::from_millis(99));
        assert_eq!(stats.max, Duration::from_millis(100));
    }

    #[test]
    fn percentiles_single_sample() {
        let stats = &phase_percentiles(&[rec("p", 0, 8)])["p"];
        assert_eq!(stats.p50, Duration::from_millis(8));
        assert_eq!(stats.p99, Duration::from_millis(8));
    }

    #[test]
    fn critical_path_finds_straggler_and_phase() {
        let mut records = Vec::new();
        for rank in 0..4 {
            records.push(rec("save/serialize", rank, 10));
            records.push(rec("save/upload", rank, if rank == 2 { 500 } else { 20 }));
        }
        let cp = critical_path(&records, "save/").unwrap();
        assert_eq!(cp.rank, 2);
        assert_eq!(cp.total, Duration::from_millis(510));
        assert_eq!(cp.dominant_phase, "save/upload");
        assert_eq!(cp.dominant, Duration::from_millis(500));
        assert_eq!(cp.median_total, Duration::from_millis(30));
        assert!(critical_path(&records, "load/").is_none());
    }

    #[test]
    fn regression_against_rolling_baseline() {
        let baseline: Vec<BTreeMap<String, Duration>> = (0..3)
            .map(|_| {
                let mut m = BTreeMap::new();
                m.insert("save/upload".to_string(), Duration::from_millis(100));
                m.insert("save/serialize".to_string(), Duration::from_millis(10));
                m
            })
            .collect();
        let mut current = BTreeMap::new();
        current.insert("save/upload".to_string(), Duration::from_millis(450));
        current.insert("save/serialize".to_string(), Duration::from_millis(11));
        current.insert("save/new-phase".to_string(), Duration::from_millis(99));
        let regs = regressions(&current, &baseline, 2.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].phase, "save/upload");
        assert!((regs[0].factor - 4.5).abs() < 1e-9);
        // Empty baseline: nothing to compare against.
        assert!(regressions(&current, &[], 2.0).is_empty());
    }
}
