//! Effective Training Time Ratio (Appendix C).
//!
//! "Assume failures are evenly distributed within one checkpoint interval.
//! Given the per-iteration training time `T_iter`, checkpoint interval `N`,
//! end-to-end checkpoint saving time `T_save` and loading (resharding) time
//! `T_load`, the average wasted time is
//! `T_wasted = T_save + T_load + N * T_iter / 2`, hence
//! `ETTR = 1 - T_wasted / (T_save + T_load + N * T_iter)`."

/// Average wasted time per failure (Appendix C, Eq. 1).
pub fn wasted_time(t_save: f64, t_load: f64, n: u64, t_iter: f64) -> f64 {
    t_save + t_load + n as f64 * t_iter / 2.0
}

/// Average ETTR (Appendix C, Eq. 2).
pub fn ettr(t_save: f64, t_load: f64, n: u64, t_iter: f64) -> f64 {
    let denom = t_save + t_load + n as f64 * t_iter;
    1.0 - wasted_time(t_save, t_load, n, t_iter) / denom
}

/// The Table 4 metric: ETTR "averaged across standard loading and
/// resharding settings".
pub fn ettr_avg(t_save: f64, t_load: f64, t_reshard: f64, n: u64, t_iter: f64) -> f64 {
    (ettr(t_save, t_load, n, t_iter) + ettr(t_save, t_reshard, n, t_iter)) / 2.0
}

/// ETTR under tiered recovery: a fraction `hot_hit_rate` of failures
/// recover from the peer-replicated in-memory hot tier (load time
/// `t_load_hot`, a memory copy) and the rest fall through to the persistent
/// tree (`t_load_cold`). The expected load time is the mixture, so at hit
/// rate 0 this reduces exactly to [`ettr`] with `t_load_cold`.
pub fn ettr_tiered(
    t_save: f64,
    t_load_hot: f64,
    t_load_cold: f64,
    hot_hit_rate: f64,
    n: u64,
    t_iter: f64,
) -> f64 {
    let p = hot_hit_rate.clamp(0.0, 1.0);
    let t_load = p * t_load_hot + (1.0 - p) * t_load_cold;
    ettr(t_save, t_load, n, t_iter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_checkpointing_approaches_half() {
        // With zero checkpoint cost, half the interval is still lost on
        // average (failures land mid-interval).
        let e = ettr(0.0, 0.0, 100, 1.0);
        assert!((e - 0.5).abs() < 1e-12);
    }

    #[test]
    fn slower_checkpointing_lowers_ettr() {
        let fast = ettr(10.0, 10.0, 100, 5.0);
        let slow = ettr(200.0, 100.0, 100, 5.0);
        assert!(fast > slow);
        assert!(fast < 0.5);
    }

    #[test]
    fn reproduces_paper_row_magnitudes() {
        // DCP vDiT-4B @ 32 GPUs: T_save 86.82, T_load 50.12, T_reshard
        // 74.89; the paper reports 38.60% with N = 100. A per-iteration
        // time near 5.5 s makes the published numbers self-consistent.
        let e = ettr_avg(86.82, 50.12, 74.89, 100, 5.5);
        assert!((0.36..0.41).contains(&e), "got {e}");
        // ByteCheckpoint row: 27.47 / 11.69 / 16.01 -> ~46%.
        let e = ettr_avg(27.47, 11.69, 16.01, 100, 5.5);
        assert!((0.44..0.49).contains(&e), "got {e}");
    }

    #[test]
    fn wasted_time_is_half_interval_plus_overheads() {
        assert_eq!(wasted_time(10.0, 20.0, 100, 2.0), 130.0);
    }

    #[test]
    fn tiered_reduces_to_ettr_at_hit_rate_zero() {
        let (ts, th, tc, n, ti) = (27.47, 0.8, 50.12, 100, 5.5);
        let tiered = ettr_tiered(ts, th, tc, 0.0, n, ti);
        let plain = ettr(ts, tc, n, ti);
        assert!((tiered - plain).abs() < 1e-12, "{tiered} vs {plain}");
    }

    #[test]
    fn tiered_reaches_hot_load_at_hit_rate_one() {
        let tiered = ettr_tiered(27.47, 0.8, 50.12, 1.0, 100, 5.5);
        let hot = ettr(27.47, 0.8, 100, 5.5);
        assert!((tiered - hot).abs() < 1e-12);
    }

    #[test]
    fn higher_hit_rate_monotonically_improves_ettr() {
        let mut prev = f64::MIN;
        for i in 0..=10 {
            let e = ettr_tiered(27.47, 0.8, 50.12, i as f64 / 10.0, 100, 5.5);
            assert!(e > prev, "hit rate {} did not improve: {e} <= {prev}", i as f64 / 10.0);
            prev = e;
        }
        // Out-of-range hit rates clamp instead of extrapolating.
        assert_eq!(
            ettr_tiered(1.0, 0.1, 9.0, 2.0, 10, 1.0),
            ettr_tiered(1.0, 0.1, 9.0, 1.0, 10, 1.0)
        );
    }
}
