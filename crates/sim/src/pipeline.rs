//! Save / load / reshard pipelines in virtual time.
//!
//! Each pipeline mirrors the real engine's phase structure (§4.2) but takes
//! durations from the [`CostModel`] and resolves storage contention with the
//! processor-sharing primitive. A [`SystemConfig`] selects which paper
//! optimizations are active, so the same code produces ByteCheckpoint, the
//! DCP/MCP baselines, and every ablation row of Tables 5–7.

use crate::cost::CostModel;
use crate::ps;
use crate::workload::WorkloadProfile;

/// Which system (or ablation point) the pipeline models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemConfig {
    /// Display name.
    pub name: &'static str,
    /// §4.2 fully asynchronous pipeline (off = phases serialize into the
    /// end-to-end time and the blocking time).
    pub async_pipeline: bool,
    /// §4.1 Worst-Fit balanced dedup (off = first-DP-group baseline).
    pub balanced_dedup: bool,
    /// §4.1 plan & metadata cache (off = replan synchronously every save).
    pub plan_cache: bool,
    /// §4.2 pinned memory pool (off = pageable D2H).
    pub pinned_pool: bool,
    /// §5.2 tree-based control plane (off = flat NCCL-style).
    pub tree_collectives: bool,
    /// §4.1 redundant-read elimination (off = every replica reads all).
    pub read_dedup: bool,
    /// §4.2 read/communication overlap on load.
    pub read_overlap: bool,
    /// §3.2 irregular-tensor decomposition (off = DCP's synchronous
    /// all-gather + interleaved D2H regularization pass).
    pub decompose_irregular: bool,
    /// §4.4 dataloader state prefetching.
    pub loader_prefetch: bool,
}

impl SystemConfig {
    /// ByteCheckpoint with every optimization on.
    pub fn bytecheckpoint() -> SystemConfig {
        SystemConfig {
            name: "ByteCheckpoint",
            async_pipeline: true,
            balanced_dedup: true,
            plan_cache: true,
            pinned_pool: true,
            tree_collectives: true,
            read_dedup: true,
            read_overlap: true,
            decompose_irregular: true,
            loader_prefetch: true,
        }
    }

    /// PyTorch DCP-like baseline (FSDP): asynchronous checkpointing but
    /// all-gather regularization, unbalanced dedup, per-save replanning,
    /// flat collectives, unoptimized loads.
    pub fn dcp() -> SystemConfig {
        SystemConfig {
            name: "DCP",
            async_pipeline: true,
            balanced_dedup: false,
            plan_cache: false,
            pinned_pool: false,
            tree_collectives: false,
            read_dedup: false,
            read_overlap: false,
            decompose_irregular: false,
            loader_prefetch: false,
        }
    }

    /// Megatron MCP-like baseline: stores sharded states directly (no
    /// all-gather pathology) but keeps the other baseline behaviours.
    pub fn mcp() -> SystemConfig {
        SystemConfig { name: "MCP", decompose_irregular: true, ..SystemConfig::dcp() }
    }
}

/// Virtual-time results of one checkpoint save.
#[derive(Debug, Clone, Default)]
pub struct SaveSim {
    /// Training-blocking time ("checkpoint stall"), seconds.
    pub t_block: f64,
    /// End-to-end save time (API call to integrity-checked completion).
    pub t_save: f64,
    /// Phase breakdown for rank 0 (Table 9 / Fig. 12): name → seconds.
    pub breakdown: Vec<(&'static str, f64)>,
    /// Per-rank end-to-end times (Fig. 11 heat map at small scale).
    pub per_rank: Vec<f64>,
}

/// Virtual-time results of one checkpoint load (or load-time reshard).
#[derive(Debug, Clone, Default)]
pub struct LoadSim {
    /// End-to-end blocking time of the load call.
    pub t_load: f64,
}

/// Extra per-job inputs that are not derivable from the state dicts.
#[derive(Debug, Clone, Copy)]
pub struct JobEnv {
    /// Dataloader state bytes per holding rank (0 = no dataloader saved).
    pub loader_bytes_per_holder: f64,
    /// Read workers per dataloader.
    pub loader_workers: usize,
    /// Whether this save is the first of the session (plan cache cold).
    pub first_save: bool,
}

impl Default for JobEnv {
    fn default() -> JobEnv {
        JobEnv { loader_bytes_per_holder: 0.0, loader_workers: 4, first_save: false }
    }
}

/// Simulate one checkpoint save.
pub fn simulate_save(
    m: &CostModel,
    w: &WorkloadProfile,
    sys: &SystemConfig,
    env: &JobEnv,
) -> SaveSim {
    let world = w.world();
    let per_rank_bytes = w.per_rank_state_bytes();
    let demands = w.save_demands(sys.balanced_dedup);

    // ---- Planning. ----
    let plan_first = m.plan_first_cost(world, w.total_items(), sys.tree_collectives);
    let plan_cached = m.barrier_cost(world, sys.tree_collectives); // hit check only
    let t_plan = if sys.plan_cache && !env.first_save { plan_cached } else { plan_first };

    // ---- Irregular regularization (DCP only): synchronous all-gather +
    // interleaved D2H per tensor (Table 7 pathology). ----
    // ByteCheckpoint's decomposition happens inside planning (it is
    // ShardMeta generation) and is already covered by `plan_item_cost` —
    // "zero communication overhead during metadata generation ... without
    // extra blocking time during saving". Only the baselines' all-gather
    // regularization blocks.
    let t_regularize = if sys.decompose_irregular { 0.0 } else { allgather_d2h_time(m, w) };

    // ---- D2H capture (the pinned pool makes it fast and non-blocking
    // beyond the copy itself). ----
    let d2h_bw = if sys.pinned_pool { m.d2h_pinned_bw } else { m.d2h_pageable_bw };
    let t_d2h = per_rank_bytes[0] as f64 / d2h_bw;

    // ---- Dataloader state collection (§4.4). ----
    let t_loader_collect = if env.loader_bytes_per_holder > 0.0 {
        if sys.loader_prefetch {
            100e-6 // queue polling
        } else {
            env.loader_bytes_per_holder * m.loader_collect_per_byte
                + env.loader_workers as f64 * m.loader_collect_per_worker
        }
    } else {
        0.0
    };

    // ---- Serialize + dump (per rank, on its own demand). ----
    let my_demand = demands.iter().cloned().fold(0.0, f64::max); // straggler rank
    let t_serialize = my_demand / m.serialize_bw();
    let t_dump = my_demand / m.shm_dump_bw;

    // ---- Upload: processor sharing over the HDFS cluster. Dataloader
    // holders upload their state files too. ----
    let mut upload_demands = demands.clone();
    if env.loader_bytes_per_holder > 0.0 {
        for dp in 0..w.par.dp {
            // Holder ranks: tp = 0, pp = 0 (paper Fig. 6).
            let rank = dp * w.par.tp;
            if rank < upload_demands.len() {
                upload_demands[rank] += env.loader_bytes_per_holder;
            }
        }
    }
    let finish = ps::finish_times(&upload_demands, m.hdfs_write_bw, m.hdfs_aggregate_bw);
    let meta_cost = m.hdfs_meta_per_file * 2.0; // model + optimizer file
    let t_upload_straggler = finish.iter().cloned().fold(0.0, f64::max) + meta_cost;
    let t_upload_rank0 = finish[0] + meta_cost;

    // ---- Barrier + commit. ----
    let t_barrier = m.barrier_cost(world, sys.tree_collectives) + m.hdfs_meta_per_file;

    // ---- Compose. ----
    // Blocking: what stalls training. Async: regularization (sync by
    // definition), capture, loader collection, plus planning when it is not
    // cached (planning is a synchronous collective round).
    let t_block = t_regularize
        + t_d2h
        + t_loader_collect
        + if sys.plan_cache && !env.first_save { plan_cached } else { t_plan };
    let t_save = if sys.async_pipeline {
        // Phases overlap: e2e = blocking + pipelined max + barrier.
        t_block + t_serialize.max(t_dump).max(t_upload_straggler) + t_barrier
    } else {
        t_block + t_serialize + t_dump + t_upload_straggler + t_barrier
    };

    // Per-rank e2e (heat map): rank-specific upload + shared phases.
    let per_rank: Vec<f64> = finish
        .iter()
        .enumerate()
        .map(|(r, f)| {
            let loader_extra = if upload_demands[r] > demands[r] { t_loader_collect } else { 0.0 };
            let serialize_r = demands[r] / m.serialize_bw();
            if sys.async_pipeline {
                t_block + loader_extra + serialize_r.max(f + meta_cost) + t_barrier
            } else {
                t_block + loader_extra + serialize_r + f + meta_cost + t_barrier
            }
        })
        .collect();

    SaveSim {
        t_block,
        t_save,
        breakdown: vec![
            ("plan_first", plan_first),
            ("plan_cached", plan_cached),
            ("regularize", t_regularize),
            ("d2h", t_d2h),
            ("loader_collect", t_loader_collect),
            ("serialize", t_serialize),
            ("dump", t_dump),
            ("upload", t_upload_rank0),
            ("barrier", t_barrier),
        ],
        per_rank,
    }
}

/// Simulate one checkpoint load into the *same* parallelism (standard
/// loading). For load-time resharding use [`simulate_reshard`].
pub fn simulate_load(m: &CostModel, w: &WorkloadProfile, sys: &SystemConfig) -> LoadSim {
    simulate_load_inner(m, w, sys, 1.0)
}

/// Simulate load-time resharding into a different parallelism. `target` is
/// the profile of the *destination* configuration; the read amplification
/// factor accounts for partially-overlapping saved boxes (bounding-range
/// fetches read some extra bytes when shard boundaries move).
pub fn simulate_reshard(m: &CostModel, target: &WorkloadProfile, sys: &SystemConfig) -> LoadSim {
    simulate_load_inner(m, target, sys, 1.15)
}

fn simulate_load_inner(
    m: &CostModel,
    w: &WorkloadProfile,
    sys: &SystemConfig,
    amplification: f64,
) -> LoadSim {
    let world = w.world();
    let demands: Vec<f64> =
        w.load_demands(sys.read_dedup).into_iter().map(|d| d * amplification).collect();
    let t_plan = m.plan_first_cost(world, w.total_items(), sys.tree_collectives);
    let finish = ps::finish_times(&demands, m.hdfs_read_bw, m.hdfs_aggregate_bw);
    let t_read = finish.iter().cloned().fold(0.0, f64::max);
    let my_bytes = demands.iter().cloned().fold(0.0, f64::max);
    let t_deser = my_bytes / m.serialize_bw();
    let t_h2d = w.per_rank_state_bytes()[0] as f64 / m.h2d_bw;
    let t_forward = if sys.read_dedup { w.forwarded_bytes_per_rank() / m.ib_bw } else { 0.0 };
    let t_barrier = m.barrier_cost(world, sys.tree_collectives);
    let t_pipeline = if sys.read_overlap {
        // Read, deserialization, H2D and forwarding overlap per shard.
        t_read.max(t_deser + t_h2d + t_forward)
    } else if sys.async_pipeline {
        // Async pipelining of read/deserialize, but the all-to-all transfer
        // waits for reads to finish.
        t_read.max(t_deser) + t_h2d + t_forward
    } else {
        t_read + t_deser + t_h2d + t_forward
    };
    LoadSim { t_load: t_plan + t_pipeline + t_barrier }
}

/// Table 7 primitive: the DCP all-gather + interleaved D2H time for the
/// irregular tensors of a workload. Only the flat-sharded (optimizer under
/// ZeRO-2, everything under ZeRO-3) states need regularization; the pass
/// pays per-rank shard communication + pageable D2H, plus a synchronization
/// latency per tensor ("interleaved ... for each tensor shard").
pub fn allgather_d2h_time(m: &CostModel, w: &WorkloadProfile) -> f64 {
    let shard_bytes = w.optim_bytes_per_rank() as f64;
    // Every rank joins every flat tensor's all-gather; under flat-parameter
    // sharding each rank *holds* only ~1/dp of them, so the union is
    // roughly per-rank flat tensors x dp.
    let union_tensors = w.flat_tensors_per_rank() as f64 * w.par.dp as f64;
    let ring = ((w.par.dp.max(2) - 1) as f64).sqrt();
    shard_bytes * (1.0 / m.ib_bw + 1.0 / m.d2h_pageable_bw)
        + union_tensors * m.allgather_step_latency * ring
}

/// Table 7 primitive: ByteCheckpoint's decomposition time for the same
/// workload (pure CPU ShardMeta generation over the irregular items).
pub fn decompose_time(m: &CostModel, w: &WorkloadProfile) -> f64 {
    w.optim_items_per_rank() as f64 * m.decompose_item_cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_model::states::Framework;
    use bcp_model::zoo;
    use bcp_topology::Parallelism;

    fn tgpt13b_profile() -> WorkloadProfile {
        WorkloadProfile::compute(
            &zoo::tgpt_13b(),
            Framework::Megatron { distributed_optimizer: true },
            Parallelism::new(2, 8, 2).unwrap(),
        )
    }

    #[test]
    fn bcp_blocking_is_subsecond_baselines_are_not() {
        let m = CostModel::default();
        let w = tgpt13b_profile();
        let bcp = simulate_save(&m, &w, &SystemConfig::bytecheckpoint(), &JobEnv::default());
        let mcp = simulate_save(&m, &w, &SystemConfig::mcp(), &JobEnv::default());
        assert!(bcp.t_block < 1.0, "BCP stall {}", bcp.t_block);
        assert!(mcp.t_block > bcp.t_block * 3.0, "MCP {} vs BCP {}", mcp.t_block, bcp.t_block);
    }

    #[test]
    fn ablations_improve_monotonically() {
        // Table 5 structure: No-Optim > Async > Async+WB >= Async+WB+Cache.
        let m = CostModel::default();
        let w = tgpt13b_profile();
        let env = JobEnv::default();
        let no_optim = SystemConfig {
            name: "no-optim",
            async_pipeline: false,
            balanced_dedup: false,
            plan_cache: false,
            ..SystemConfig::bytecheckpoint()
        };
        let async_only = SystemConfig { name: "async", async_pipeline: true, ..no_optim };
        let async_wb = SystemConfig { name: "async+wb", balanced_dedup: true, ..async_only };
        let all = SystemConfig { name: "async+wb+cache", plan_cache: true, ..async_wb };
        let t0 = simulate_save(&m, &w, &no_optim, &env).t_save;
        let t1 = simulate_save(&m, &w, &async_only, &env).t_save;
        let t2 = simulate_save(&m, &w, &async_wb, &env).t_save;
        let t3 = simulate_save(&m, &w, &all, &env).t_save;
        assert!(t0 > t1 && t1 > t2 && t2 >= t3, "{t0} {t1} {t2} {t3}");
        // Total speedup lands in the paper's 2-3x band.
        let speedup = t0 / t3;
        assert!((1.5..5.0).contains(&speedup), "ablation speedup {speedup}");
    }

    #[test]
    fn dcp_regularization_dominates_fsdp_blocking() {
        let m = CostModel::default();
        let w = WorkloadProfile::compute(
            &zoo::vdit_4b(),
            Framework::Fsdp { zero3: false },
            Parallelism::data_parallel(32).unwrap(),
        );
        let dcp = simulate_save(&m, &w, &SystemConfig::dcp(), &JobEnv::default());
        let bcp = simulate_save(&m, &w, &SystemConfig::bytecheckpoint(), &JobEnv::default());
        // The paper reports 30x-160x stall reductions for FSDP workloads.
        let reduction = dcp.t_block / bcp.t_block;
        assert!(reduction > 10.0, "stall reduction only {reduction}x");
    }

    #[test]
    fn read_dedup_and_overlap_speed_up_loads() {
        let m = CostModel::default();
        let w = tgpt13b_profile();
        let bcp = simulate_load(&m, &w, &SystemConfig::bytecheckpoint());
        let base = simulate_load(&m, &w, &SystemConfig::mcp());
        assert!(base.t_load > bcp.t_load, "{} vs {}", base.t_load, bcp.t_load);
    }

    #[test]
    fn decompose_beats_allgather_by_an_order_of_magnitude() {
        let m = CostModel::default();
        let w = WorkloadProfile::compute(
            &zoo::tgpt_13b(),
            Framework::Fsdp { zero3: false },
            Parallelism::data_parallel(32).unwrap(),
        );
        let ag = allgather_d2h_time(&m, &w);
        let de = decompose_time(&m, &w);
        let ratio = ag / de;
        assert!(ratio > 10.0, "only {ratio}x (allgather {ag}, decompose {de})");
        assert!(de < 1.0, "decomposition must stay sub-second, got {de}");
    }

    #[test]
    fn loader_prefetch_removes_collection_stall() {
        let m = CostModel::default();
        let w = tgpt13b_profile();
        let env = JobEnv { loader_bytes_per_holder: 1e9, loader_workers: 4, first_save: false };
        let with = simulate_save(&m, &w, &SystemConfig::bytecheckpoint(), &env);
        let without = simulate_save(
            &m,
            &w,
            &SystemConfig { loader_prefetch: false, ..SystemConfig::bytecheckpoint() },
            &env,
        );
        // ~8 s for 1 GB / 4 workers without prefetch (the §4.4 anchor).
        assert!(without.t_block - with.t_block > 5.0);
    }
}
