//! Per-rank workload profiles at paper scale.
//!
//! The simulator must know, for every rank, how many bytes and plan items
//! each checkpoint phase touches. Those come from the *real* state builders
//! and planner: we build meta-tensor state dicts for one representative rank
//! per (tp, pp) coordinate (DP replicas are identical up to ±1 element of
//! the even split) and run `bcp-core`'s actual `local_save_plan` on them.

use bcp_core::plan::{local_save_plan, Category};
use bcp_model::states::{build_train_state, Framework};
use bcp_model::TransformerConfig;
use bcp_topology::{Parallelism, RankCoord};
use std::collections::HashMap;

/// Profile of one (tp, pp) group, shared by its DP replicas.
#[derive(Debug, Clone, Default)]
pub struct GroupProfile {
    /// Model-state bytes held by one rank of this group.
    pub model_bytes: u64,
    /// Optimizer-state bytes held by one rank (already DP-sharded under
    /// ZeRO / distributed optimizer).
    pub optim_bytes: u64,
    /// Plan items (ShardMeta entries) for the model dict.
    pub model_items: u64,
    /// Plan items for the optimizer dict.
    pub optim_items: u64,
    /// Logical tensors held (pre-decomposition).
    pub tensors: u64,
    /// Decomposed pieces in excess of one per tensor — the irregular-shard
    /// metadata overhead the paper accepts in exchange for zero
    /// communication.
    pub extra_pieces: u64,
    /// Distinct flat-sharded (irregular-capable) tensors held by one rank —
    /// the tensors DCP's regularization pass must all-gather.
    pub flat_tensors: u64,
}

/// The full workload profile of a (model, framework, parallelism) triple.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Parallelism this profile was computed for.
    pub par: Parallelism,
    /// Per-(tp, pp) group profiles, indexed `pp * tp_degree + tp`.
    pub groups: Vec<GroupProfile>,
}

impl WorkloadProfile {
    /// Compute from real meta state dicts (one representative rank per
    /// (tp, pp) coordinate).
    pub fn compute(arch: &TransformerConfig, fw: Framework, par: Parallelism) -> WorkloadProfile {
        let mut groups = Vec::with_capacity(par.tp * par.pp);
        for pp in 0..par.pp {
            for tp in 0..par.tp {
                let rank = par.rank_of(RankCoord { tp, dp: 0, pp }).expect("in world");
                let state = build_train_state(arch, fw, par, rank, false);
                let plan = local_save_plan(rank, &state, "meta");
                let mut g = GroupProfile::default();
                for dict in [&state.model, &state.optimizer] {
                    g.flat_tensors += dict
                        .entries
                        .values()
                        .filter(|e| {
                            matches!(
                                e.spec,
                                bcp_topology::ShardSpec::Flat { .. }
                                    | bcp_topology::ShardSpec::FlatOfBox { .. }
                            )
                        })
                        .count() as u64;
                }
                let mut per_fqn: HashMap<&str, u64> = HashMap::new();
                for item in &plan.items {
                    match item.category {
                        Category::Model => {
                            g.model_bytes += item.nbytes;
                            g.model_items += 1;
                        }
                        Category::Optimizer => {
                            g.optim_bytes += item.nbytes;
                            g.optim_items += 1;
                        }
                    }
                    *per_fqn.entry(item.shard.fqn.as_str()).or_default() += 1;
                }
                g.tensors = per_fqn.len() as u64;
                g.extra_pieces = per_fqn.values().map(|&c| c.saturating_sub(1)).sum::<u64>();
                groups.push(g);
            }
        }
        WorkloadProfile { par, groups }
    }

    /// World size.
    pub fn world(&self) -> usize {
        self.par.world_size()
    }

    /// Total unique model bytes in one checkpoint (model replicas across DP
    /// deduplicate; TP/PP groups hold disjoint shards up to the negligible
    /// TP-replicated LayerNorms).
    pub fn total_model_bytes(&self) -> u64 {
        self.groups.iter().map(|g| g.model_bytes).sum()
    }

    /// Total optimizer bytes in one checkpoint.
    pub fn total_optim_bytes(&self) -> u64 {
        self.groups.iter().map(|g| g.optim_bytes).sum::<u64>() * self.par.dp as u64
    }

    /// Total plan items across all ranks (what the first planning round
    /// gathers at the coordinator).
    pub fn total_items(&self) -> u64 {
        self.groups.iter().map(|g| g.model_items + g.optim_items).sum::<u64>() * self.par.dp as u64
    }

    /// Bytes one rank holds locally (capture / D2H volume). All DP replicas
    /// of a group are equal; returns the per-group value replicated over DP.
    pub fn per_rank_state_bytes(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.world());
        for pp in 0..self.par.pp {
            for dp in 0..self.par.dp {
                let _ = dp;
                for tp in 0..self.par.tp {
                    let g = &self.groups[pp * self.par.tp + tp];
                    out.push(g.model_bytes + g.optim_bytes);
                }
            }
        }
        out
    }

    /// Per-rank *upload* demands in bytes after deduplication.
    ///
    /// `balanced = true` models Worst-Fit (each group's model bytes spread
    /// evenly over its DP replicas); `false` models the first-DP-group
    /// baseline (dp index 0 carries all model bytes of its group).
    pub fn save_demands(&self, balanced: bool) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.world());
        for pp in 0..self.par.pp {
            for dp in 0..self.par.dp {
                for tp in 0..self.par.tp {
                    let g = &self.groups[pp * self.par.tp + tp];
                    let model_share = if balanced {
                        g.model_bytes as f64 / self.par.dp as f64
                    } else if dp == 0 {
                        g.model_bytes as f64
                    } else {
                        0.0
                    };
                    out.push(model_share + g.optim_bytes as f64);
                }
            }
        }
        out
    }

    /// Per-rank *download* demands in bytes for a standard load.
    ///
    /// `dedup_reads = true` models §4.1 redundant-read elimination: model
    /// bytes are read once per DP group and forwarded; `false` models every
    /// replica reading everything it needs.
    pub fn load_demands(&self, dedup_reads: bool) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.world());
        for pp in 0..self.par.pp {
            for dp in 0..self.par.dp {
                let _ = dp;
                for tp in 0..self.par.tp {
                    let g = &self.groups[pp * self.par.tp + tp];
                    let model_share = if dedup_reads {
                        g.model_bytes as f64 / self.par.dp as f64
                    } else {
                        g.model_bytes as f64
                    };
                    out.push(model_share + g.optim_bytes as f64);
                }
            }
        }
        out
    }

    /// Bytes each rank must *receive* over the interconnect when reads are
    /// deduplicated (the forwarded share of model state).
    pub fn forwarded_bytes_per_rank(&self) -> f64 {
        if self.par.dp <= 1 {
            return 0.0;
        }
        let per_group_model: f64 = self.total_model_bytes() as f64 / self.groups.len() as f64;
        per_group_model * (self.par.dp as f64 - 1.0) / self.par.dp as f64
    }

    /// Total decomposed irregular pieces across all ranks (metadata
    /// overhead; also the per-save decomposition CPU work).
    pub fn total_extra_pieces(&self) -> u64 {
        self.groups.iter().map(|g| g.extra_pieces).sum::<u64>() * self.par.dp as u64
    }

    /// Number of logical tensors per rank (drives the per-tensor all-gather
    /// latency of the DCP irregular path).
    pub fn tensors_per_rank(&self) -> u64 {
        self.groups.iter().map(|g| g.tensors).max().unwrap_or(0)
    }

    /// Optimizer-state bytes one rank holds — the irregular (flat-sharded)
    /// portion that DCP's all-gather pass must regularize.
    pub fn optim_bytes_per_rank(&self) -> u64 {
        self.groups.iter().map(|g| g.optim_bytes).max().unwrap_or(0)
    }

    /// Optimizer plan items per rank — what the decomposition pass touches.
    pub fn optim_items_per_rank(&self) -> u64 {
        self.groups.iter().map(|g| g.optim_items).max().unwrap_or(0)
    }

    /// Flat-sharded tensors per rank (see [`GroupProfile::flat_tensors`]).
    pub fn flat_tensors_per_rank(&self) -> u64 {
        self.groups.iter().map(|g| g.flat_tensors).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_model::zoo;

    #[test]
    fn tgpt70b_profile_matches_hand_math() {
        // TP=4, DP=75, PP=8 (Table 3 source config at 2400 GPUs).
        let arch = zoo::tgpt_70b();
        let par = Parallelism::new(4, 75, 8).unwrap();
        let fw = Framework::Megatron { distributed_optimizer: true };
        let p = WorkloadProfile::compute(&arch, fw, par);
        // Unique model bytes = params * 2 (bf16), within 2%.
        let expect = arch.num_params() * 2;
        let got = p.total_model_bytes();
        let ratio = got as f64 / expect as f64;
        assert!((0.98..1.02).contains(&ratio), "model bytes ratio {ratio}");
        // Optimizer = params * 3 states * 4 bytes.
        let expect_opt = arch.num_params() * 12;
        let ratio = p.total_optim_bytes() as f64 / expect_opt as f64;
        assert!((0.98..1.05).contains(&ratio), "optim bytes ratio {ratio}");
        // Per-rank capture volume ~ (2 + 12/75)/32 of total = ~4.6 GB.
        let per = p.per_rank_state_bytes();
        assert_eq!(per.len(), 2400);
        let gb = per[0] as f64 / 1e9;
        assert!((3.0..7.0).contains(&gb), "per-rank {gb} GB");
    }

    #[test]
    fn balanced_demands_are_flatter_than_first_replica() {
        let arch = zoo::tgpt_13b();
        let par = Parallelism::new(2, 8, 2).unwrap();
        let fw = Framework::Megatron { distributed_optimizer: true };
        let p = WorkloadProfile::compute(&arch, fw, par);
        let bal = p.save_demands(true);
        let first = p.save_demands(false);
        let max_bal = bal.iter().cloned().fold(0.0, f64::max);
        let max_first = first.iter().cloned().fold(0.0, f64::max);
        // The optimizer share is identical (already DP-sharded); the model
        // share is 8x heavier on the first replica, so the straggler is
        // close to 2x worse overall here.
        assert!(max_first > max_bal * 1.8, "first {max_first}, balanced {max_bal}");
        // Totals identical: dedup never changes what is stored.
        let sum = |v: &[f64]| v.iter().sum::<f64>();
        assert!((sum(&bal) - sum(&first)).abs() < 1.0);
    }

    #[test]
    fn fsdp_profiles_have_irregular_pieces() {
        let arch = zoo::vdit_4b();
        let par = Parallelism::data_parallel(32).unwrap();
        let p = WorkloadProfile::compute(&arch, Framework::Fsdp { zero3: false }, par);
        assert!(p.total_extra_pieces() > 0, "ZeRO-2 must produce decomposed pieces");
        // ZeRO-2: model replicated -> every rank holds the full 4B * 2 B.
        let per = p.per_rank_state_bytes();
        assert!(per[0] as f64 > 8e9, "per-rank {} bytes", per[0]);
    }

    #[test]
    fn total_items_scale_with_world() {
        let arch = zoo::text_405b();
        let par = Parallelism::new(8, 70, 16).unwrap();
        let fw = Framework::Megatron { distributed_optimizer: true };
        let p = WorkloadProfile::compute(&arch, fw, par);
        let items = p.total_items();
        // Millions of plan items at 8960 ranks (the 62 s planning anchor).
        assert!(items > 2_000_000, "items {items}");
        assert!(items < 50_000_000, "items {items}");
    }
}
