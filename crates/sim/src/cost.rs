//! The calibrated cost model.
//!
//! Constants are set from the paper's own numbers where it states them
//! (§4.3 read/write throughput, §5.1 cluster capacity, Appendix B barrier
//! cost, §4.1 planning cost) and from public hardware specs otherwise
//! (PCIe 4.0 host copies, 200 Gbps IB). Absolute outputs are therefore
//! plausible rather than reproduced-to-the-second; the comparisons are
//! structural (see EXPERIMENTS.md).

/// One gigabyte in bytes, as f64.
pub const GB: f64 = 1e9;

/// Bandwidths in bytes/second, latencies in seconds.
#[derive(Debug, Clone)]
pub struct CostModel {
    // ---- Host ↔ device ----
    /// D2H copy through the pinned pool (§4.2): ~20 GB/s on PCIe 4.0 x16.
    pub d2h_pinned_bw: f64,
    /// D2H copy through pageable memory: ~4 GB/s.
    pub d2h_pageable_bw: f64,
    /// H2D copy bandwidth.
    pub h2d_bw: f64,

    // ---- Host CPU ----
    /// Serialization throughput per worker process (~1.5 GB/s: memcpy +
    /// framing), times `serialize_procs` parallel processes (§4.2 "multiple
    /// parallel processes to serialize tensors").
    pub serialize_bw_per_proc: f64,
    /// Parallel serialization processes per rank.
    pub serialize_procs: usize,
    /// Dump into shared memory (`/dev/shm`): ~8 GB/s.
    pub shm_dump_bw: f64,

    // ---- Interconnect ----
    /// Per-GPU InfiniBand bandwidth: 200 Gbps = 25 GB/s (§4.3 testbed).
    pub ib_bw: f64,
    /// Base latency of one synchronous all-gather; the DCP irregular-tensor
    /// path pays `base * sqrt(group - 1)` per tensor (ring-style growth with
    /// group size — "these overheads grow as the training scale increases").
    pub allgather_step_latency: f64,

    // ---- HDFS (§4.3, §5.1) ----
    /// Optimized single-client write (split sub-files + concat): 3 GB/s.
    pub hdfs_write_bw: f64,
    /// Optimized single-client read (multi-threaded ranged): 2.5 GB/s.
    pub hdfs_read_bw: f64,
    /// Cluster aggregate bandwidth: 10 TB/s ("10 TB/s read/write").
    pub hdfs_aggregate_bw: f64,
    /// Metadata cost per file create/commit after the §6.4 fixes: 150 ms
    /// worst case; we charge a typical 20 ms.
    pub hdfs_meta_per_file: f64,

    // ---- Collectives / planning (§4.1, §5.2, Appendix B) ----
    /// Coordinator CPU cost per plan item processed during gather+dedup.
    /// Calibrated against "planning ... a 405B model across 8960 GPUs takes
    /// 62 seconds".
    pub plan_item_cost: f64,
    /// Flat (NCCL-like) per-peer channel setup at the coordinator; drives
    /// the "~20 s barrier at 10k GPUs" (Appendix B): ~2 ms/rank.
    pub flat_per_rank_cost: f64,
    /// Tree (gRPC-like) per-hop latency.
    pub tree_hop_latency: f64,
    /// Tree branching for inter-machine grouping.
    pub tree_branching: usize,
    /// GPUs per host (first-level subtrees; 8 on A100/H800 machines).
    pub gpus_per_host: usize,

    // ---- Irregular tensor handling (Table 7) ----
    /// Cost to decompose one flat-sharded tensor into ShardMeta boxes, as
    /// measured for the paper's production (Python) implementation: ~8 ms
    /// per item, calibrated to Table 7's ~0.2 s scale-independent
    /// decomposition times. (Our Rust decomposition is far faster — see the
    /// criterion benches — but the table models the published system.)
    pub decompose_item_cost: f64,

    // ---- Dataloader (§4.4) ----
    /// Cold state-collection cost per byte (the "~8 s for ~1 GB" anchor).
    pub loader_collect_per_byte: f64,
    /// Per-read-worker signalling/pause cost when collecting cold.
    pub loader_collect_per_worker: f64,
    /// Token-buffer merge/redistribution throughput during dataloader
    /// resharding (the serialization-heavy CPU path that makes full-state
    /// resharding expensive in Table 4).
    pub loader_merge_bw: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            d2h_pinned_bw: 20.0 * GB,
            d2h_pageable_bw: 4.0 * GB,
            h2d_bw: 20.0 * GB,
            serialize_bw_per_proc: 1.5 * GB,
            serialize_procs: 4,
            shm_dump_bw: 8.0 * GB,
            ib_bw: 25.0 * GB,
            allgather_step_latency: 0.25e-3,
            hdfs_write_bw: 3.0 * GB,
            hdfs_read_bw: 2.5 * GB,
            hdfs_aggregate_bw: 10_000.0 * GB,
            hdfs_meta_per_file: 0.02,
            plan_item_cost: 6.0e-6,
            flat_per_rank_cost: 2.0e-3,
            tree_hop_latency: 1.0e-3,
            tree_branching: 8,
            gpus_per_host: 8,
            decompose_item_cost: 8.0e-3,
            loader_collect_per_byte: 8.0e-9,
            loader_collect_per_worker: 0.05,
            loader_merge_bw: 0.3 * GB,
        }
    }
}

impl CostModel {
    /// Effective serialization bandwidth per rank.
    pub fn serialize_bw(&self) -> f64 {
        self.serialize_bw_per_proc * self.serialize_procs as f64
    }

    /// Control-plane cost of a barrier over `world` ranks.
    pub fn barrier_cost(&self, world: usize, tree: bool) -> f64 {
        if tree {
            // Up + down the hierarchy.
            2.0 * self.tree_depth(world) as f64 * self.tree_hop_latency
        } else {
            world as f64 * self.flat_per_rank_cost
        }
    }

    /// Height of the §5.2 communication tree over `world` ranks.
    pub fn tree_depth(&self, world: usize) -> usize {
        let hosts = world.div_ceil(self.gpus_per_host);
        let mut depth = 1; // intra-host star
        let mut level = hosts;
        while level > 1 {
            level = level.div_ceil(self.tree_branching);
            depth += 1;
        }
        depth
    }

    /// First-save planning cost: gather/scatter of `total_items` plan items
    /// over the control plane plus coordinator dedup CPU.
    pub fn plan_first_cost(&self, world: usize, total_items: u64, tree: bool) -> f64 {
        let comm = if tree {
            2.0 * self.tree_depth(world) as f64 * self.tree_hop_latency
        } else {
            world as f64 * self.flat_per_rank_cost
        };
        comm + total_items as f64 * self.plan_item_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_from_the_paper_hold() {
        let m = CostModel::default();
        // Appendix B: flat barrier at ~10k GPUs stalls ~20 s.
        let flat = m.barrier_cost(10_000, false);
        assert!((15.0..25.0).contains(&flat), "flat barrier {flat}");
        // The tree barrier at the same scale is sub-50 ms.
        let tree = m.barrier_cost(10_000, true);
        assert!(tree < 0.05, "tree barrier {tree}");
    }

    #[test]
    fn planning_62s_for_405b_at_8960() {
        let m = CostModel::default();
        // ~8960 ranks × ~1100 items/rank ≈ 10M items (see workload tests).
        let t = m.plan_first_cost(8960, 9_800_000, false);
        assert!((40.0..90.0).contains(&t), "first-plan cost {t}");
    }

    #[test]
    fn tree_depth_is_logarithmic() {
        let m = CostModel::default();
        assert_eq!(m.tree_depth(8), 1);
        assert!(m.tree_depth(8960) <= 5);
        assert!(m.tree_depth(100_000) <= 6);
    }
}
