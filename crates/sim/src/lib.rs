//! # bcp-sim — paper-scale checkpointing simulator
//!
//! The paper's evaluation runs on 32–8960 GPUs against a production HDFS.
//! Per the DESIGN.md substitution table, this crate executes the *real
//! planner outputs* (byte/item profiles computed from `bcp-model` meta
//! states through `bcp-core`'s planning) in **virtual time** under a
//! flow-level cost model, regenerating every evaluation table:
//!
//! * [`ps`] — processor-sharing finish times: the flow-level network /
//!   storage contention primitive (per-flow caps + a shared bottleneck).
//! * [`cost`] — the calibrated cost model: PCIe, InfiniBand, serialization,
//!   HDFS client/cluster bandwidths, NameNode metadata costs, collective
//!   setup costs. Every constant documents its provenance.
//! * [`workload`] — per-rank save/load byte-and-item profiles for a
//!   (model, framework, parallelism) triple, computed from real meta-tensor
//!   state dicts on representative ranks.
//! * [`pipeline`] — the save / load / reshard pipelines in virtual time,
//!   with per-phase breakdowns, under any [`pipeline::SystemConfig`]
//!   (ByteCheckpoint, DCP-like, MCP-like, and each ablation step).
//! * [`ettr`] — the Appendix C effective-training-time-ratio math, plus
//!   the tiered-recovery extension (`ettr_tiered`).
//! * [`chaos`] — seeded virtual-time kill/recover model quantifying the
//!   hot-tier hit rate → ETTR gain at paper scale.
//! * [`trace`] — the synthetic platform job trace behind Table 2.
//! * [`experiments`] — one function per table (1, 2, 4, 5, 6, 7, 8, 9),
//!   returning both structured rows and formatted text.

pub mod chaos;
pub mod cost;
pub mod ettr;
pub mod experiments;
pub mod pipeline;
pub mod ps;
pub mod trace;
pub mod workload;

pub use chaos::{run_chaos, ChaosConfig, ChaosOutcome, TierTimes};
pub use cost::CostModel;
pub use pipeline::{LoadSim, SaveSim, SystemConfig};
pub use workload::WorkloadProfile;
