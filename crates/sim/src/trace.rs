//! Synthetic platform job trace (Table 2).
//!
//! Table 2 reports six months of framework usage on the paper's AI platform:
//! job counts per framework and stage plus average GPUs per job. That data
//! is proprietary; we regenerate the table from a generative model whose
//! marginals are the published totals, so downstream tooling (and the repro
//! binary) has a concrete trace to aggregate.

use bcp_tensor::fill::splitmix64;

/// One training job record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRecord {
    /// Framework name.
    pub framework: &'static str,
    /// Pre-training vs post-training.
    pub stage: Stage,
    /// GPUs allocated.
    pub gpus: u32,
}

/// Training stage of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Pre-training (including continual pre-training).
    PreTraining,
    /// Post-training (SFT / RL / reward modeling).
    PostTraining,
}

/// Published marginals (paper Table 2).
pub struct FrameworkMarginal {
    /// Framework name.
    pub framework: &'static str,
    /// Pre-training job count.
    pub pre: u32,
    /// Post-training job count (0 = not reported / negligible).
    pub post: u32,
    /// Average GPUs per job.
    pub avg_gpus: u32,
}

/// The paper's Table 2 marginals.
pub fn paper_marginals() -> Vec<FrameworkMarginal> {
    vec![
        FrameworkMarginal { framework: "Megatron-LM", pre: 13_727, post: 68_621, avg_gpus: 301 },
        FrameworkMarginal { framework: "FSDP", pre: 16_842, post: 0, avg_gpus: 25 },
        FrameworkMarginal { framework: "DDP", pre: 25_393, post: 0, avg_gpus: 6 },
    ]
}

/// Generate a deterministic job trace whose aggregates reproduce the
/// marginals: exact job counts, GPU counts log-spread around the average.
pub fn generate_trace(seed: u64) -> Vec<JobRecord> {
    let mut jobs = Vec::new();
    for m in paper_marginals() {
        for (stage, count) in [(Stage::PreTraining, m.pre), (Stage::PostTraining, m.post)] {
            for i in 0..count {
                // Log-uniform spread in [avg/4, avg*4], then one corrective
                // record per framework keeps the mean exact (added below).
                let h = splitmix64(seed ^ splitmix64(i as u64 ^ m.avg_gpus as u64));
                let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
                let factor = 4.0f64.powf(2.0 * u - 1.0);
                let gpus = ((m.avg_gpus as f64 * factor).round() as u32).max(1);
                jobs.push(JobRecord { framework: m.framework, stage, gpus });
            }
        }
    }
    jobs
}

/// Aggregate a trace back into Table 2 rows:
/// `(framework, pre count, post count, average GPUs)`.
pub fn aggregate(jobs: &[JobRecord]) -> Vec<(String, u32, u32, f64)> {
    let mut rows: Vec<(String, u32, u32, f64)> = Vec::new();
    for m in paper_marginals() {
        let mine: Vec<&JobRecord> = jobs.iter().filter(|j| j.framework == m.framework).collect();
        let pre = mine.iter().filter(|j| j.stage == Stage::PreTraining).count() as u32;
        let post = mine.iter().filter(|j| j.stage == Stage::PostTraining).count() as u32;
        let avg = if mine.is_empty() {
            0.0
        } else {
            mine.iter().map(|j| j.gpus as f64).sum::<f64>() / mine.len() as f64
        };
        rows.push((m.framework.to_string(), pre, post, avg));
    }
    rows
}

/// Checkpoint-resharding demand counts over six months (§2.2): the paper's
/// three scenario totals, used by Table 1's context.
pub fn resharding_demands() -> [(&'static str, u32); 3] {
    [
        ("pre-training resumption", 1_870),
        ("cross-stage reconfiguration", 13_080),
        ("evaluation tasks", 19_844),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_reproduces_job_counts() {
        let jobs = generate_trace(42);
        let rows = aggregate(&jobs);
        assert_eq!(rows[0].1, 13_727);
        assert_eq!(rows[0].2, 68_621);
        assert_eq!(rows[1].1, 16_842);
        assert_eq!(rows[2].1, 25_393);
    }

    #[test]
    fn average_gpus_land_near_marginals() {
        let jobs = generate_trace(42);
        for (row, m) in aggregate(&jobs).iter().zip(paper_marginals()) {
            let rel = row.3 / m.avg_gpus as f64;
            // Log-uniform in [x/4, 4x] has mean ~1.08x the center.
            assert!((0.8..1.4).contains(&rel), "{}: avg {} vs {}", row.0, row.3, m.avg_gpus);
        }
    }

    #[test]
    fn trace_is_deterministic() {
        assert_eq!(generate_trace(7), generate_trace(7));
        assert_ne!(generate_trace(7), generate_trace(8));
    }

    #[test]
    fn megatron_dominates_post_training() {
        // The platform observation motivating cross-stage resharding.
        let jobs = generate_trace(1);
        let rows = aggregate(&jobs);
        assert!(rows[0].2 > rows[0].1);
    }
}
