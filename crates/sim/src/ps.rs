//! Processor-sharing finish times: the flow-level contention primitive.
//!
//! `n` flows with byte demands `d_i` share a bottleneck of rate `R`, each
//! additionally capped at `c` (its NIC / storage-client limit). The
//! bottleneck is divided max-min fairly: every active flow gets
//! `min(c, R / active)`. As flows finish, the survivors speed up. This is
//! the standard flow-level model of TCP-fair sharing and matches how a
//! checkpoint burst hits an HDFS cluster: thousands of clients, each capped
//! by its own pipeline, jointly capped by cluster ingest bandwidth.

/// Finish time of each flow (seconds), given per-flow byte demands, a
/// per-flow rate cap, and a shared bottleneck rate (bytes/second).
///
/// Zero-demand flows finish at t = 0. Infinite caps/bottlenecks are allowed
/// (`f64::INFINITY`).
pub fn finish_times(demands: &[f64], per_flow_cap: f64, bottleneck: f64) -> Vec<f64> {
    let n = demands.len();
    let mut remaining: Vec<f64> = demands.to_vec();
    let mut finish = vec![0.0f64; n];
    // Active = flows with remaining > 0, processed in demand order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| demands[a].partial_cmp(&demands[b]).expect("finite demands"));
    let mut t = 0.0f64;
    let mut active: Vec<usize> = order.iter().copied().filter(|&i| demands[i] > 0.0).collect();
    while !active.is_empty() {
        let k = active.len() as f64;
        let rate = per_flow_cap.min(bottleneck / k);
        assert!(rate > 0.0, "non-positive service rate");
        // The flow with the smallest remaining demand finishes first; since
        // every active flow serves at the same rate, `active` stays sorted
        // by remaining demand (it started sorted by demand).
        let head = active[0];
        let dt = remaining[head] / rate;
        t += dt;
        // Drain everything that finishes in this epoch (ties).
        let mut drained = 0;
        for &i in &active {
            let left = remaining[i] - rate * dt;
            if left <= 1e-9 {
                remaining[i] = 0.0;
                finish[i] = t;
                drained += 1;
            } else {
                remaining[i] = left;
            }
        }
        active.drain(0..drained);
    }
    finish
}

/// Convenience: the last finish time (the straggler).
pub fn makespan(demands: &[f64], per_flow_cap: f64, bottleneck: f64) -> f64 {
    finish_times(demands, per_flow_cap, bottleneck).into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1e9;

    #[test]
    fn single_flow_hits_its_cap() {
        let f = finish_times(&[10.0 * GB], 2.0 * GB, 100.0 * GB);
        assert!((f[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_shared_fairly() {
        // 4 equal flows, caps are generous, bottleneck 4 GB/s: each gets
        // 1 GB/s, all finish together.
        let f = finish_times(&[4.0 * GB; 4], 100.0 * GB, 4.0 * GB);
        for t in &f {
            assert!((t - 4.0).abs() < 1e-6, "{f:?}");
        }
    }

    #[test]
    fn survivors_speed_up() {
        // Flows of 1 GB and 3 GB share a 2 GB/s bottleneck (caps loose).
        // Phase 1: both at 1 GB/s; small one finishes at t=1.
        // Phase 2: big one has 2 GB left at 2 GB/s -> finishes at t=2.
        let f = finish_times(&[1.0 * GB, 3.0 * GB], 10.0 * GB, 2.0 * GB);
        assert!((f[0] - 1.0).abs() < 1e-6);
        assert!((f[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn caps_bind_when_bottleneck_is_wide() {
        // Aggregate is huge; each flow limited by its 1 GB/s cap.
        let f = finish_times(&[5.0 * GB, 2.0 * GB], 1.0 * GB, f64::INFINITY);
        assert!((f[0] - 5.0).abs() < 1e-6);
        assert!((f[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_demand_finishes_immediately() {
        let f = finish_times(&[0.0, 1.0 * GB], 1.0 * GB, f64::INFINITY);
        assert_eq!(f[0], 0.0);
        assert!((f[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn imbalance_hurts_makespan() {
        // Same total bytes: balanced finishes faster than skewed under a
        // per-flow cap — the Worst-Fit vs first-DP-group effect.
        let balanced = makespan(&[2.0 * GB; 8], 1.0 * GB, f64::INFINITY);
        let skewed = makespan(&[16.0 * GB, 0., 0., 0., 0., 0., 0., 0.], 1.0 * GB, f64::INFINITY);
        assert!(skewed >= balanced * 7.9, "balanced {balanced}, skewed {skewed}");
    }

    #[test]
    fn work_conservation() {
        // Total service equals total demand / bottleneck when the
        // bottleneck binds throughout (all flows equal).
        let f = makespan(&[1.0 * GB; 10], f64::INFINITY, 5.0 * GB);
        assert!((f - 2.0).abs() < 1e-6);
    }
}
