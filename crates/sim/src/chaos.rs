//! Virtual-time chaos driver for the tiered recovery subsystem: a seeded
//! kill/recover model that classifies each failure as a hot-tier or
//! cold-tree recovery and quantifies the resulting hot-hit-rate → ETTR gain
//! (the model behind the `chaos_soak` integration harness, run here at
//! paper scale where real threads would be too slow).
//!
//! Per failure the model draws a failure domain — process crash (host
//! memory survives), single-host loss (peer replicas survive whenever the
//! `ReplicaPlacement` covers it) or multi-host loss (hot tier gone) — plus
//! a detection lag in steps; a recovery is served hot iff a covering copy
//! exists *and* the newest committed step is still inside the K-step ring.

use crate::ettr::{ettr, ettr_tiered};
use bcp_topology::ReplicaPlacement;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cluster + tier shape for one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// RNG seed: same seed, same failure sequence, same outcome.
    pub seed: u64,
    /// Number of kill/recover cycles to simulate.
    pub failures: usize,
    /// Hosts in the job.
    pub hosts: usize,
    /// Ranks per host.
    pub gpus_per_host: usize,
    /// Requested hot-tier replicas per shard (R).
    pub replicas: usize,
    /// Hot-ring capacity in steps (K).
    pub hot_capacity_steps: u64,
    /// Fraction of failures that are a full single-host loss.
    pub single_host_fraction: f64,
    /// Fraction of failures that take out more than one host (power event,
    /// network partition): the hot tier cannot cover these.
    pub multi_host_fraction: f64,
    /// Maximum failure-detection lag, in checkpoint steps: a recovery only
    /// hits the hot ring if the newest committed step is younger than K.
    pub max_detection_lag_steps: u64,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            failures: 1000,
            hosts: 16,
            gpus_per_host: 8,
            replicas: 1,
            hot_capacity_steps: 2,
            single_host_fraction: 0.10,
            multi_host_fraction: 0.02,
            max_detection_lag_steps: 1,
        }
    }
}

/// Recovery-time inputs for the ETTR comparison (seconds).
#[derive(Debug, Clone, Copy)]
pub struct TierTimes {
    /// End-to-end checkpoint save time.
    pub t_save: f64,
    /// Hot recovery: assemble the step from peer memory.
    pub t_load_hot: f64,
    /// Cold recovery: read the persistent tree.
    pub t_load_cold: f64,
    /// Checkpoint interval in iterations.
    pub n: u64,
    /// Per-iteration training time.
    pub t_iter: f64,
}

/// What one chaos run produced.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Recoveries served from the hot tier.
    pub hot_recoveries: usize,
    /// Recoveries that fell through to the persistent tree.
    pub cold_recoveries: usize,
    /// `hot / (hot + cold)`.
    pub hot_hit_rate: f64,
    /// Baseline ETTR: every recovery from the cold tree.
    pub ettr_cold: f64,
    /// ETTR with the measured hot hit rate.
    pub ettr_tiered: f64,
}

impl ChaosOutcome {
    /// Absolute ETTR gain of the hot tier over cold-only recovery.
    pub fn ettr_gain(&self) -> f64 {
        self.ettr_tiered - self.ettr_cold
    }
}

/// Run the seeded chaos model and price the outcome with the ETTR math.
pub fn run_chaos(cfg: &ChaosConfig, times: TierTimes) -> ChaosOutcome {
    let world = cfg.hosts * cfg.gpus_per_host;
    let placement = ReplicaPlacement::new(world.max(1), cfg.gpus_per_host.max(1), cfg.replicas)
        .expect("non-zero gpus_per_host");
    // Placement guarantees single-host coverage whenever it can place at
    // least one replica on a foreign host.
    let single_host_covered = placement.effective_replicas() >= 1;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut hot = 0usize;
    let mut cold = 0usize;
    for _ in 0..cfg.failures {
        let domain: f64 = rng.gen();
        let copy_survives = if domain < cfg.multi_host_fraction {
            false // correlated multi-host loss: hot tier gone everywhere
        } else if domain < cfg.multi_host_fraction + cfg.single_host_fraction {
            single_host_covered
        } else {
            true // process crash: host memory survives
        };
        let lag = rng.gen_range(0..=cfg.max_detection_lag_steps);
        let ring_fresh = lag < cfg.hot_capacity_steps;
        if copy_survives && ring_fresh {
            hot += 1;
        } else {
            cold += 1;
        }
    }
    let total = (hot + cold).max(1);
    let hot_hit_rate = hot as f64 / total as f64;
    ChaosOutcome {
        hot_recoveries: hot,
        cold_recoveries: cold,
        hot_hit_rate,
        ettr_cold: ettr(times.t_save, times.t_load_cold, times.n, times.t_iter),
        ettr_tiered: ettr_tiered(
            times.t_save,
            times.t_load_hot,
            times.t_load_cold,
            hot_hit_rate,
            times.n,
            times.t_iter,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_times() -> TierTimes {
        // ByteCheckpoint Table 4 row: T_save 27.47, T_load 11.69; a hot
        // recovery is a memory copy, modeled well under a second.
        TierTimes { t_save: 27.47, t_load_hot: 0.5, t_load_cold: 11.69, n: 100, t_iter: 5.5 }
    }

    #[test]
    fn same_seed_is_deterministic() {
        let cfg = ChaosConfig::default();
        let a = run_chaos(&cfg, paper_times());
        let b = run_chaos(&cfg, paper_times());
        assert_eq!(a.hot_recoveries, b.hot_recoveries);
        assert_eq!(a.cold_recoveries, b.cold_recoveries);
    }

    #[test]
    fn hot_tier_lifts_ettr_when_hits_occur() {
        let out = run_chaos(&ChaosConfig::default(), paper_times());
        assert!(out.hot_hit_rate > 0.5, "got {}", out.hot_hit_rate);
        assert!(out.ettr_gain() > 0.0);
        assert!(out.ettr_tiered <= 0.5, "ETTR is bounded by the half-interval loss");
    }

    #[test]
    fn multi_host_losses_always_fall_cold() {
        let cfg = ChaosConfig {
            multi_host_fraction: 1.0,
            single_host_fraction: 0.0,
            ..ChaosConfig::default()
        };
        let out = run_chaos(&cfg, paper_times());
        assert_eq!(out.hot_recoveries, 0);
        assert!((out.ettr_tiered - out.ettr_cold).abs() < 1e-12);
    }

    #[test]
    fn single_host_world_cannot_place_replicas() {
        let cfg = ChaosConfig {
            hosts: 1,
            single_host_fraction: 1.0,
            multi_host_fraction: 0.0,
            ..ChaosConfig::default()
        };
        let out = run_chaos(&cfg, paper_times());
        assert_eq!(out.hot_recoveries, 0, "no foreign host to hold a replica");
    }

    #[test]
    fn stale_ring_forces_cold_recoveries() {
        let cfg = ChaosConfig {
            hot_capacity_steps: 1,
            max_detection_lag_steps: 50,
            single_host_fraction: 0.0,
            multi_host_fraction: 0.0,
            ..ChaosConfig::default()
        };
        let out = run_chaos(&cfg, paper_times());
        // Lag is uniform over 0..=50 and only lag 0 hits a K=1 ring.
        assert!(out.hot_hit_rate < 0.1, "got {}", out.hot_hit_rate);
        assert!(out.cold_recoveries > 0);
    }

    #[test]
    fn deeper_ring_raises_hit_rate() {
        let base = ChaosConfig {
            max_detection_lag_steps: 4,
            single_host_fraction: 0.0,
            multi_host_fraction: 0.0,
            ..ChaosConfig::default()
        };
        let shallow =
            run_chaos(&ChaosConfig { hot_capacity_steps: 1, ..base.clone() }, paper_times());
        let deep = run_chaos(&ChaosConfig { hot_capacity_steps: 8, ..base }, paper_times());
        assert!(deep.hot_hit_rate > shallow.hot_hit_rate);
        assert!(deep.ettr_tiered > shallow.ettr_tiered);
    }
}
