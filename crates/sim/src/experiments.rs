//! One function per evaluation table. Each returns structured rows plus
//! formatted text; `bcp-bench`'s `repro` binary prints them, and this
//! module's tests assert the paper's *shape* claims (who wins, direction of
//! scaling, rough factors). EXPERIMENTS.md records paper-vs-simulated
//! numbers side by side.

use crate::cost::CostModel;
use crate::ettr::ettr_avg;
use crate::pipeline::{
    allgather_d2h_time, decompose_time, simulate_load, simulate_reshard, simulate_save, JobEnv,
    SystemConfig,
};
use crate::trace;
use crate::workload::WorkloadProfile;
use bcp_model::states::Framework;
use bcp_model::zoo;
use bcp_topology::Parallelism;

/// A rendered experiment artifact.
pub struct TableText {
    /// Table id (e.g. `"table4"`).
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// Formatted body.
    pub text: String,
}

fn fsdp2(dp: usize) -> (Framework, Parallelism) {
    (Framework::Fsdp { zero3: false }, Parallelism::data_parallel(dp).unwrap())
}

fn megatron(tp: usize, dp: usize, pp: usize) -> (Framework, Parallelism) {
    (Framework::Megatron { distributed_optimizer: true }, Parallelism::new(tp, dp, pp).unwrap())
}

/// One Table 4 comparison row group.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Workload label.
    pub workload: String,
    /// Source GPU count.
    pub gpus: usize,
    /// System label.
    pub system: String,
    /// Checkpoint stall (s).
    pub t_block: f64,
    /// End-to-end save (s).
    pub t_save: f64,
    /// Standard load (s).
    pub t_load: f64,
    /// Load-time reshard (s).
    pub t_reshard: f64,
    /// ETTR (0..1).
    pub ettr: f64,
}

/// The four Table 4 workload configurations (Table 3): source and target
/// (framework, parallelism), baseline system, per-iteration time.
struct Workload4 {
    label: &'static str,
    arch: bcp_model::TransformerConfig,
    src: (Framework, Parallelism),
    dst: (Framework, Parallelism),
    baseline: SystemConfig,
    t_iter: f64,
    loader_bytes: f64,
}

fn table4_workloads() -> Vec<Workload4> {
    vec![
        Workload4 {
            label: "vDiT-4B FSDP",
            arch: zoo::vdit_4b(),
            src: fsdp2(32),
            dst: fsdp2(64),
            baseline: SystemConfig::dcp(),
            t_iter: 5.5,
            loader_bytes: 4e9,
        },
        Workload4 {
            label: "vDiT-4B FSDP",
            arch: zoo::vdit_4b(),
            src: fsdp2(128),
            dst: fsdp2(64),
            baseline: SystemConfig::dcp(),
            t_iter: 5.5,
            loader_bytes: 4e9,
        },
        Workload4 {
            label: "tGPT-70B Megatron",
            arch: zoo::tgpt_70b(),
            src: megatron(4, 75, 8),
            dst: megatron(4, 150, 8),
            baseline: SystemConfig::mcp(),
            t_iter: 2.9,
            loader_bytes: 1e9,
        },
        Workload4 {
            label: "tGPT-70B Megatron",
            arch: zoo::tgpt_70b(),
            src: megatron(4, 150, 8),
            dst: megatron(4, 75, 8),
            baseline: SystemConfig::mcp(),
            t_iter: 1.45,
            loader_bytes: 1e9,
        },
    ]
}

/// Compute Table 4: I/O performance comparison (BCP vs DCP/MCP).
pub fn table4_rows(m: &CostModel) -> Vec<Table4Row> {
    let mut rows = Vec::new();
    for w in table4_workloads() {
        let src = WorkloadProfile::compute(&w.arch, w.src.0, w.src.1);
        let dst = WorkloadProfile::compute(&w.arch, w.dst.0, w.dst.1);
        let systems: Vec<(SystemConfig, bool)> = vec![
            (w.baseline, false),
            (SystemConfig::bytecheckpoint(), false),
            (SystemConfig::bytecheckpoint(), true), // full states (with loader)
        ];
        for (sys, full_states) in systems {
            let env = JobEnv {
                loader_bytes_per_holder: if full_states { w.loader_bytes } else { 0.0 },
                loader_workers: 6,
                first_save: false,
            };
            let save = simulate_save(m, &src, &sys, &env);
            let load = simulate_load(m, &src, &sys);
            let mut reshard = simulate_reshard(m, &dst, &sys);
            if full_states {
                // Dataloader merge/redistribution on the holders: the
                // straggler effect the paper highlights (token buffers).
                let total_loader = w.loader_bytes * src.par.dp as f64;
                reshard.t_load += total_loader / m.hdfs_read_bw + total_loader / m.loader_merge_bw;
            }
            let n = 100;
            rows.push(Table4Row {
                workload: w.label.to_string(),
                gpus: src.world(),
                system: if full_states {
                    format!("{} (full states)", sys.name)
                } else {
                    format!("{} (GPU states)", sys.name)
                },
                t_block: save.t_block,
                t_save: save.t_save,
                t_load: load.t_load,
                t_reshard: reshard.t_load,
                ettr: ettr_avg(save.t_save, load.t_load, reshard.t_load, n, w.t_iter),
            });
        }
    }
    rows
}

/// Render Table 4.
pub fn table4(m: &CostModel) -> TableText {
    let rows = table4_rows(m);
    let mut text = format!(
        "{:<20} {:>6} {:<28} {:>9} {:>9} {:>9} {:>10} {:>8}\n",
        "Workload", "#GPUs", "System", "T_Block", "T_Save", "T_Load", "T_Reshard", "ETTR%"
    );
    for r in &rows {
        text.push_str(&format!(
            "{:<20} {:>6} {:<28} {:>8.2}s {:>8.2}s {:>8.2}s {:>9.2}s {:>7.2}\n",
            r.workload,
            r.gpus,
            r.system,
            r.t_block,
            r.t_save,
            r.t_load,
            r.t_reshard,
            r.ettr * 100.0
        ));
    }
    TableText {
        id: "table4",
        title: "Table 4: I/O performance comparison (simulated)".into(),
        text,
    }
}

/// Table 5: saving-optimization ablation.
pub fn table5(m: &CostModel) -> TableText {
    let mut text = String::new();
    let mut rows: Vec<(String, String, f64)> = Vec::new();
    for (arch, par) in [
        (zoo::tgpt_13b(), Parallelism::new(2, 8, 2).unwrap()),
        (zoo::tgpt_30b(), Parallelism::new(2, 8, 4).unwrap()),
    ] {
        let fw = Framework::Megatron { distributed_optimizer: true };
        let w = WorkloadProfile::compute(&arch, fw, par);
        let no_optim = SystemConfig {
            name: "No Optim.",
            async_pipeline: false,
            balanced_dedup: false,
            plan_cache: false,
            ..SystemConfig::bytecheckpoint()
        };
        let steps = [
            no_optim,
            SystemConfig { name: "Async.", async_pipeline: true, ..no_optim },
            SystemConfig {
                name: "Async.+WB.",
                async_pipeline: true,
                balanced_dedup: true,
                ..no_optim
            },
            SystemConfig {
                name: "Async.+WB.+Cache.",
                async_pipeline: true,
                balanced_dedup: true,
                plan_cache: true,
                ..no_optim
            },
        ];
        let base = simulate_save(m, &w, &steps[0], &JobEnv::default()).t_save;
        text.push_str(&format!("{} {} ({} GPUs):\n", arch.name, par, par.world_size()));
        for sys in steps {
            let t = simulate_save(m, &w, &sys, &JobEnv::default()).t_save;
            text.push_str(&format!("  {:<20} {:>8.2}s ({:>5.2}x)\n", sys.name, t, base / t));
            rows.push((arch.name.clone(), sys.name.to_string(), t));
        }
    }
    TableText { id: "table5", title: "Table 5: saving optimization microbenchmark".into(), text }
}

/// Table 6: loading-optimization ablation.
pub fn table6(m: &CostModel) -> TableText {
    let mut text = String::new();
    for (arch, par) in [
        (zoo::tgpt_13b(), Parallelism::new(2, 8, 2).unwrap()),
        (zoo::tgpt_30b(), Parallelism::new(2, 8, 4).unwrap()),
    ] {
        let fw = Framework::Megatron { distributed_optimizer: true };
        let w = WorkloadProfile::compute(&arch, fw, par);
        let no_optim = SystemConfig {
            name: "No Optim.",
            async_pipeline: false,
            read_dedup: false,
            read_overlap: false,
            ..SystemConfig::bytecheckpoint()
        };
        let steps = [
            no_optim,
            SystemConfig { name: "Async.", async_pipeline: true, ..no_optim },
            SystemConfig {
                name: "Async.+Overlap.",
                async_pipeline: true,
                read_dedup: true,
                read_overlap: true,
                ..no_optim
            },
        ];
        let base = simulate_load(m, &w, &steps[0]).t_load;
        text.push_str(&format!("{} {} ({} GPUs):\n", arch.name, par, par.world_size()));
        for sys in steps {
            let t = simulate_load(m, &w, &sys).t_load;
            text.push_str(&format!("  {:<20} {:>8.2}s ({:>5.2}x)\n", sys.name, t, base / t));
        }
    }
    TableText { id: "table6", title: "Table 6: loading optimization microbenchmark".into(), text }
}

/// Table 7: irregular-tensor processing (all-gather+D2H vs decompose).
pub fn table7(m: &CostModel) -> TableText {
    let mut text = String::new();
    for (arch, dp) in [(zoo::tgpt_13b(), 32usize), (zoo::tgpt_30b(), 64)] {
        let w = WorkloadProfile::compute(
            &arch,
            Framework::Fsdp { zero3: false },
            Parallelism::data_parallel(dp).unwrap(),
        );
        let ag = allgather_d2h_time(m, &w);
        let de = decompose_time(m, &w);
        text.push_str(&format!(
            "{} ZeRO-2 {} GPUs: All-gather+D2H {:.2}s | Decompose {:.3}s ({:.1}x)\n",
            arch.name,
            dp,
            ag,
            de,
            ag / de
        ));
    }
    TableText {
        id: "table7",
        title: "Table 7: resharding optimization microbenchmark".into(),
        text,
    }
}

/// Table 8: large-scale scalability of ByteCheckpoint.
pub fn table8(m: &CostModel) -> TableText {
    let mut text = format!(
        "{:<28} {:>6} {:<22} {:>9} {:>9} {:>9}\n",
        "Model", "#GPUs", "Parallelism", "T_Block", "T_Save", "T_Load"
    );
    let cases: Vec<(&str, bcp_model::TransformerConfig, (Framework, Parallelism), f64)> = vec![
        ("Vision Transformer 7B FSDP", zoo::vit_7b(), fsdp2(1488), 2e9),
        ("Text Transformer 405B Megatron", zoo::text_405b(), megatron(8, 70, 16), 1e9),
    ];
    for (label, arch, (fw, par), loader_bytes) in cases {
        let w = WorkloadProfile::compute(&arch, fw, par);
        let env =
            JobEnv { loader_bytes_per_holder: loader_bytes, loader_workers: 6, first_save: false };
        let save = simulate_save(m, &w, &SystemConfig::bytecheckpoint(), &env);
        let load = simulate_load(m, &w, &SystemConfig::bytecheckpoint());
        text.push_str(&format!(
            "{:<28} {:>6} {:<22} {:>8.2}s {:>8.2}s {:>8.2}s\n",
            label,
            par.world_size(),
            par.describe(),
            save.t_block,
            save.t_save,
            load.t_load
        ));
    }
    TableText { id: "table8", title: "Table 8: ByteCheckpoint at production scale".into(), text }
}

/// Table 9: rank-0 save-phase breakdown for the Table 4 workloads.
pub fn table9(m: &CostModel) -> TableText {
    let mut text = format!(
        "{:<22} {:>6} {:>11} {:>11} {:>8} {:>10} {:>8} {:>8}\n",
        "Workload", "#GPUs", "Plan(first)", "Plan(cache)", "D2H", "Serialize", "Dump", "Upload"
    );
    for w4 in table4_workloads() {
        let w = WorkloadProfile::compute(&w4.arch, w4.src.0, w4.src.1);
        let first = simulate_save(
            m,
            &w,
            &SystemConfig::bytecheckpoint(),
            &JobEnv { first_save: true, ..JobEnv::default() },
        );
        let cached = simulate_save(m, &w, &SystemConfig::bytecheckpoint(), &JobEnv::default());
        let get = |s: &crate::pipeline::SaveSim, k: &str| {
            s.breakdown.iter().find(|(n, _)| *n == k).map(|(_, v)| *v).unwrap_or(0.0)
        };
        text.push_str(&format!(
            "{:<22} {:>6} {:>10.2}s {:>10.3}s {:>7.3}s {:>9.3}s {:>7.3}s {:>7.3}s\n",
            w4.label,
            w.world(),
            get(&first, "plan_first"),
            get(&cached, "plan_cached"),
            get(&cached, "d2h"),
            get(&cached, "serialize"),
            get(&cached, "dump"),
            get(&cached, "upload"),
        ));
    }
    TableText { id: "table9", title: "Table 9: rank-0 saving-phase breakdown".into(), text }
}

/// Table 1: offline resharding job completion time vs load-time resharding.
pub fn table1(m: &CostModel) -> TableText {
    // An offline job: scheduler pending + download everything to one
    // resharding machine (8 parallel workers, NIC-capped) + reshard CPU +
    // upload everything back.
    let offline = |total_bytes: f64, startup: f64| -> f64 {
        let workers = 8.0;
        let nic = 25.0 * crate::cost::GB;
        let down = total_bytes / (m.hdfs_read_bw * workers).min(nic);
        let cpu = total_bytes / (2.0 * crate::cost::GB);
        let up = total_bytes / (m.hdfs_write_bw * workers).min(nic);
        startup + down + cpu + up
    };
    let full_70b = {
        let w =
            WorkloadProfile::compute(&zoo::tgpt_70b(), megatron(4, 75, 8).0, megatron(4, 75, 8).1);
        (w.total_model_bytes() + w.total_optim_bytes()) as f64
    };
    let model_only_70b = {
        let w =
            WorkloadProfile::compute(&zoo::tgpt_70b(), megatron(4, 75, 8).0, megatron(4, 75, 8).1);
        w.total_model_bytes() as f64
    };
    // Online equivalents: load-time resharding of the same state.
    let dst =
        WorkloadProfile::compute(&zoo::tgpt_70b(), megatron(4, 150, 8).0, megatron(4, 150, 8).1);
    let online = simulate_reshard(m, &dst, &SystemConfig::bytecheckpoint()).t_load;
    let rows = [
        ("Training Resumption (full states)", offline(full_70b, 300.0)),
        ("Cross-Stage Transition (full states, fewer GPUs)", offline(full_70b * 0.5, 180.0)),
        ("Evaluation (model states only)", offline(model_only_70b, 180.0)),
    ];
    let mut text = String::new();
    for (label, t) in rows {
        text.push_str(&format!("  offline {:<48} {:>8.2}s\n", label, t));
    }
    text.push_str(&format!(
        "  ByteCheckpoint load-time resharding (same transition)  {online:>8.2}s\n"
    ));
    for (scenario, count) in trace::resharding_demands() {
        text.push_str(&format!("  demand over six months: {scenario:<32} {count:>6} times\n"));
    }
    TableText { id: "table1", title: "Table 1: offline resharding job cost".into(), text }
}

/// Table 2: framework usage trace.
pub fn table2() -> TableText {
    let jobs = trace::generate_trace(2024);
    let mut text = format!(
        "{:<14} {:>14} {:>15} {:>22}\n",
        "Framework", "Pre-training", "Post-training", "Average #GPUs Per Job"
    );
    for (fw, pre, post, avg) in trace::aggregate(&jobs) {
        let post_s = if post == 0 { "-".to_string() } else { post.to_string() };
        text.push_str(&format!("{fw:<14} {pre:>14} {post_s:>15} {avg:>22.0}\n"));
    }
    TableText {
        id: "table2",
        title: "Table 2: top training frameworks (synthetic trace, paper marginals)".into(),
        text,
    }
}

/// Table 3: model and parallelism configurations.
pub fn table3() -> TableText {
    let mut text = format!(
        "{:<10} {:>7} {:>7} {:>8} {:>13} {:>13} {:>20}\n",
        "Model", "Hidden", "#Heads", "#Layers", "#Parameters", "Source #GPUs", "Source Parallelism"
    );
    let rows = [
        (zoo::vdit_4b(), vec![(32usize, "ZeRO-2"), (128, "ZeRO-2")]),
        (zoo::tgpt_70b(), vec![(2400, "TP=4,DP=75,PP=8"), (4800, "TP=4,DP=150,PP=8")]),
    ];
    for (arch, configs) in rows {
        for (gpus, par) in configs {
            text.push_str(&format!(
                "{:<10} {:>7} {:>7} {:>8} {:>12.1}B {:>13} {:>20}\n",
                arch.name,
                arch.hidden,
                arch.heads,
                arch.layers,
                arch.num_params() as f64 / 1e9,
                gpus,
                par
            ));
        }
    }
    TableText { id: "table3", title: "Table 3: model and parallelism configurations".into(), text }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_shape_matches_paper() {
        let m = CostModel::default();
        let rows = table4_rows(&m);
        assert_eq!(rows.len(), 12);
        for group in rows.chunks(3) {
            let base = &group[0];
            let bcp = &group[1];
            let full = &group[2];
            // Stall reduction: paper reports 12x-161x.
            assert!(
                base.t_block / bcp.t_block > 5.0,
                "{} @{}: stalls {} vs {}",
                base.workload,
                base.gpus,
                base.t_block,
                bcp.t_block
            );
            // Save / load / reshard: BCP wins.
            assert!(base.t_save > bcp.t_save, "{}: save", base.workload);
            assert!(base.t_load >= bcp.t_load, "{}: load", base.workload);
            assert!(base.t_reshard >= bcp.t_reshard, "{}: reshard", base.workload);
            // ETTR improves and stays below the 0.5 ceiling.
            assert!(bcp.ettr > base.ettr, "{}: ettr", base.workload);
            assert!(bcp.ettr < 0.5);
            // Full-state checkpointing costs more than GPU-states-only.
            assert!(full.t_save >= bcp.t_save);
            assert!(full.t_reshard > bcp.t_reshard);
        }
        // The paper's scaling claim: BCP's save advantage grows with the
        // workload scale (2.21x at 2400 GPUs -> 8.87x at 4800).
        let adv_2400 = rows[6].t_save / rows[7].t_save;
        let adv_4800 = rows[9].t_save / rows[10].t_save;
        assert!(
            adv_4800 > adv_2400,
            "save advantage must grow with scale: {adv_2400:.2}x -> {adv_4800:.2}x"
        );
    }

    #[test]
    fn table7_factors_in_paper_band() {
        // Paper: 19.8x and 30.5x; require >10x and the right ordering.
        let m = CostModel::default();
        let t = table7(&m);
        assert!(t.text.contains("All-gather"));
        let w13 = WorkloadProfile::compute(
            &zoo::tgpt_13b(),
            Framework::Fsdp { zero3: false },
            Parallelism::data_parallel(32).unwrap(),
        );
        let w30 = WorkloadProfile::compute(
            &zoo::tgpt_30b(),
            Framework::Fsdp { zero3: false },
            Parallelism::data_parallel(64).unwrap(),
        );
        let r13 = allgather_d2h_time(&m, &w13) / decompose_time(&m, &w13);
        let r30 = allgather_d2h_time(&m, &w30) / decompose_time(&m, &w30);
        assert!(r13 > 10.0 && r30 > 10.0);
        assert!(r30 > r13, "the gap grows with scale: {r13:.1}x -> {r30:.1}x");
    }

    #[test]
    fn table8_blocking_stays_subsecond_at_8960_gpus() {
        let m = CostModel::default();
        let w = WorkloadProfile::compute(
            &zoo::text_405b(),
            megatron(8, 70, 16).0,
            megatron(8, 70, 16).1,
        );
        let env = JobEnv { loader_bytes_per_holder: 1e9, loader_workers: 6, first_save: false };
        let save = simulate_save(&m, &w, &SystemConfig::bytecheckpoint(), &env);
        assert!(save.t_block < 1.0, "stall {} at 8960 GPUs", save.t_block);
        assert!(save.t_save < 120.0, "save {}", save.t_save);
    }

    #[test]
    fn table1_offline_dwarfs_online() {
        let m = CostModel::default();
        let t = table1(&m);
        assert!(t.text.contains("offline"));
        // Structural claim: the offline path takes minutes, online seconds.
        let dst = WorkloadProfile::compute(
            &zoo::tgpt_70b(),
            megatron(4, 150, 8).0,
            megatron(4, 150, 8).1,
        );
        let online = simulate_reshard(&m, &dst, &SystemConfig::bytecheckpoint()).t_load;
        assert!(online < 120.0);
    }

    #[test]
    fn all_tables_render_nonempty() {
        let m = CostModel::default();
        for t in [
            table1(&m),
            table2(),
            table3(),
            table4(&m),
            table5(&m),
            table6(&m),
            table7(&m),
            table8(&m),
            table9(&m),
        ] {
            assert!(!t.text.is_empty(), "{} empty", t.id);
            assert!(!t.title.is_empty());
        }
    }
}
