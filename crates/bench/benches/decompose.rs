//! Criterion: irregular-tensor decomposition (§3.2, Fig. 7) — the
//! zero-communication alternative to DCP's all-gather. Decomposition must
//! stay microseconds-per-shard for the "zero overhead" claim to hold.

use bcp_core::decompose::{decompose_flat_range, shard_metas};
use bcp_model::states::{build_train_state, Framework};
use bcp_model::zoo;
use bcp_topology::{Parallelism, ShardSpec};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_flat_range(c: &mut Criterion) {
    let mut g = c.benchmark_group("decompose_flat_range");
    for (name, shape, start, len) in [
        ("2d_mid", vec![4096usize, 4096], 1_000_000, 9_000_000),
        ("3d_mid", vec![64, 512, 512], 1_234_567, 10_000_000),
        ("4d_mid", vec![8, 64, 256, 256], 777_777, 20_000_000),
        ("row_aligned", vec![4096, 4096], 4096 * 100, 4096 * 2000),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| decompose_flat_range(black_box(&shape), black_box(start), black_box(len)))
        });
    }
    g.finish();
}

fn bench_shard_metas(c: &mut Criterion) {
    let mut g = c.benchmark_group("shard_metas");
    g.bench_function("grid_tp_shard", |b| {
        let spec = ShardSpec::dim(0, 8, 3);
        b.iter(|| shard_metas(black_box("layers.0.attn.qkv.weight"), &[24576, 8192], &spec))
    });
    g.bench_function("irregular_flatofbox", |b| {
        let spec = ShardSpec::FlatOfBox {
            box_offsets: vec![6144, 0],
            box_lengths: vec![2048, 8192],
            offset: 123_456,
            length: 2_000_000,
        };
        b.iter(|| shard_metas(black_box("optim.master.qkv"), &[24576, 8192], &spec))
    });
    g.finish();
}

fn bench_whole_rank_planning_decomposition(c: &mut Criterion) {
    // Decomposing every irregular shard a real FSDP rank holds — the cost
    // ByteCheckpoint pays instead of the all-gather.
    let par = Parallelism::data_parallel(8).unwrap();
    let state = build_train_state(&zoo::tiny_gpt(), Framework::Fsdp { zero3: true }, par, 3, false);
    c.bench_function("decompose_whole_fsdp_rank", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for dict in [&state.model, &state.optimizer] {
                for e in dict.entries.values() {
                    total += shard_metas(&e.fqn, &e.global_shape, &e.spec).len();
                }
            }
            black_box(total)
        })
    });
}

criterion_group!(
    benches,
    bench_flat_range,
    bench_shard_metas,
    bench_whole_rank_planning_decomposition
);
criterion_main!(benches);
