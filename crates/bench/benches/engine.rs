//! Criterion: the execution engine's byte paths — frame encode/decode,
//! checksumming, intersection extraction, and whole save/load pipelines
//! against the in-memory backend.

use bcp_core::engine::iopool::IoPool;
use bcp_core::engine::pool::PinnedPool;
use bcp_core::engine::save::{execute_save, SaveConfig};
use bcp_core::format::{decode_frames, encode_frame};
use bcp_core::integrity::FailureLog;
use bcp_core::metadata::ShardMeta;
use bcp_core::plan::local_save_plan;
use bcp_model::states::{build_train_state, Framework};
use bcp_model::zoo;
use bcp_monitor::MetricsSink;
use bcp_storage::{DynBackend, MemoryBackend};
use bcp_tensor::checksum::crc32;
use bcp_tensor::DType;
use bcp_topology::Parallelism;
use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;

fn bench_crc32(c: &mut Criterion) {
    let data = vec![0xABu8; 1 << 20];
    let mut g = c.benchmark_group("crc32");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("1MiB", |b| b.iter(|| crc32(black_box(&data))));
    g.finish();
}

fn bench_frames(c: &mut Criterion) {
    let shard = ShardMeta {
        fqn: "layers.17.mlp.up.weight".into(),
        offsets: vec![1024, 0],
        lengths: vec![512, 4096],
    };
    let payload = vec![7u8; 512 * 4096 * 2];
    let mut g = c.benchmark_group("frames");
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| encode_frame(black_box(&shard), DType::BF16, black_box(&payload)))
    });
    let (encoded, _) = encode_frame(&shard, DType::BF16, &payload);
    let encoded = Bytes::from(encoded.to_vec());
    g.bench_function("decode_verify", |b| b.iter(|| decode_frames(black_box(&encoded)).unwrap()));
    g.finish();
}

fn bench_save_pipeline(c: &mut Criterion) {
    let par = Parallelism::data_parallel(1).unwrap();
    let state = build_train_state(&zoo::tiny_gpt(), Framework::Ddp, par, 0, true);
    let plan = local_save_plan(0, &state, "cpu");
    let bytes = plan.total_bytes();
    let pool = PinnedPool::new(2);
    let io = IoPool::new(4);
    let sink = MetricsSink::disabled();
    let mut g = c.benchmark_group("engine_save");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("sync_memory_backend", |b| {
        b.iter(|| {
            let backend: DynBackend = Arc::new(MemoryBackend::new());
            let log = Arc::new(FailureLog::new());
            execute_save(
                &plan,
                &state,
                backend,
                "bench",
                &pool,
                &io,
                &sink,
                log,
                &SaveConfig { async_upload: false, ..Default::default() },
                0,
                &bcp_core::fault::FaultHook::inert(0),
                bcp_monitor::SpanContext::none(),
            )
            .unwrap()
            .wait()
            .unwrap()
        })
    });
    g.finish();
}

fn bench_extract_isect(c: &mut Criterion) {
    use bcp_core::engine::extract_isect;
    use bcp_core::plan::{Category, ReadItem};
    let item = ReadItem {
        category: Category::Model,
        fqn: "w".into(),
        dtype: DType::F32,
        file: "f".into(),
        payload_offset: 0,
        stored_offsets: vec![0, 0],
        stored_lengths: vec![1024, 1024],
        isect_offsets: vec![128, 128],
        isect_lengths: vec![768, 768],
        dest_offsets: vec![0, 0],
        dest_lengths: vec![1024, 1024],
        dest_local_elem_start: 0,
    };
    let (fo, fl) = item.fetch_range();
    let _ = fo;
    let fetched = Bytes::from(vec![0u8; fl as usize]);
    let mut g = c.benchmark_group("extract_isect");
    g.throughput(Throughput::Bytes(item.isect_bytes()));
    g.bench_function("768x768_of_1024x1024_f32", |b| {
        b.iter(|| extract_isect(black_box(&item), black_box(&fetched)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_crc32, bench_frames, bench_save_pipeline, bench_extract_isect);
criterion_main!(benches);
