//! Criterion: the planning path (§4.1) — local plan generation, Worst-Fit
//! vs first-replica deduplication, redundant-read elimination, and the
//! cache signature whose cheapness makes plan caching a win.

use bcp_core::metadata::GlobalMetadata;
use bcp_core::plan::{local_load_plan, local_save_plan, SavePlan};
use bcp_core::planner::balance::{dedup_save_plans, eliminate_redundant_reads, DedupStrategy};
use bcp_core::planner::cache::PlanCache;
use bcp_model::states::{build_train_state, Framework};
use bcp_model::zoo;
use bcp_topology::Parallelism;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn megatron_plans(world_tp: usize, dp: usize, pp: usize) -> Vec<SavePlan> {
    let par = Parallelism::new(world_tp, dp, pp).unwrap();
    let fw = Framework::Megatron { distributed_optimizer: true };
    (0..par.world_size())
        .map(|r| {
            local_save_plan(r, &build_train_state(&zoo::tiny_gpt_8l(), fw, par, r, false), "cpu")
        })
        .collect()
}

fn bench_local_plan(c: &mut Criterion) {
    let par = Parallelism::new(2, 4, 2).unwrap();
    let fw = Framework::Megatron { distributed_optimizer: true };
    let state = build_train_state(&zoo::tiny_gpt_8l(), fw, par, 5, false);
    c.bench_function("local_save_plan_megatron_rank", |b| {
        b.iter(|| local_save_plan(black_box(5), black_box(&state), "cpu"))
    });
}

fn bench_dedup(c: &mut Criterion) {
    let plans = megatron_plans(2, 4, 2); // 16 ranks
    let mut g = c.benchmark_group("dedup_save_plans_16_ranks");
    g.bench_function("worst_fit", |b| {
        b.iter_batched(
            || plans.clone(),
            |mut p| dedup_save_plans(&mut p, DedupStrategy::WorstFit),
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("first_replica", |b| {
        b.iter_batched(
            || plans.clone(),
            |mut p| dedup_save_plans(&mut p, DedupStrategy::FirstReplica),
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_read_elimination(c: &mut Criterion) {
    // Build a real checkpoint metadata + the DP-replicated load plans.
    let par = Parallelism::new(1, 8, 1).unwrap();
    let fw = Framework::Fsdp { zero3: false }; // ZeRO-2: model replicated
    let mut plans: Vec<SavePlan> = (0..8)
        .map(|r| local_save_plan(r, &build_train_state(&zoo::tiny_gpt(), fw, par, r, false), "cpu"))
        .collect();
    dedup_save_plans(&mut plans, DedupStrategy::WorstFit);
    let mut meta = GlobalMetadata::new("fsdp", 0, &par.describe(), 8);
    meta.tensor_map = bcp_core::plan::build_tensor_map(&plans);
    let load_plans: Vec<_> = (0..8)
        .map(|r| {
            let state = build_train_state(&zoo::tiny_gpt(), fw, par, r, false);
            local_load_plan(r, &state, &meta).expect("coverage")
        })
        .collect();
    c.bench_function("eliminate_redundant_reads_8_replicas", |b| {
        b.iter(|| eliminate_redundant_reads(black_box(&load_plans)))
    });
}

fn bench_cache_signature(c: &mut Criterion) {
    let par = Parallelism::new(2, 4, 2).unwrap();
    let fw = Framework::Megatron { distributed_optimizer: true };
    let state = build_train_state(&zoo::tiny_gpt_8l(), fw, par, 0, false);
    c.bench_function("plan_cache_signature", |b| {
        b.iter(|| PlanCache::signature("megatron", black_box("TP=2,DP=4,PP=2"), 0, &state))
    });
}

criterion_group!(
    benches,
    bench_local_plan,
    bench_dedup,
    bench_read_elimination,
    bench_cache_signature
);
criterion_main!(benches);
