//! Criterion: flat vs tree control-plane collectives (§5.2) — the gather
//! that carries local plans to the coordinator, at small in-process scale.

use bcp_collectives::{Backend, CommWorld};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn run_gather(world_size: usize, backend: Backend) -> usize {
    let world = CommWorld::new(world_size, backend);
    let handles: Vec<_> = (0..world_size)
        .map(|rank| {
            let world = world.clone();
            std::thread::spawn(move || {
                let c = world.communicator(rank).unwrap();
                // A plan-sized payload per rank.
                let payload = vec![rank as u64; 512];
                c.gather(0, payload).unwrap().map(|v| v.len()).unwrap_or(0)
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).sum()
}

fn bench_gather(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan_gather");
    g.sample_size(10);
    for world in [16usize, 32] {
        g.bench_function(format!("flat_{world}"), |b| {
            b.iter(|| black_box(run_gather(world, Backend::Flat)))
        });
        g.bench_function(format!("tree_{world}"), |b| {
            b.iter(|| {
                black_box(run_gather(world, Backend::Tree { gpus_per_host: 8, branching: 4 }))
            })
        });
    }
    g.finish();
}

fn bench_barrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("barrier_32");
    g.sample_size(10);
    for (name, backend) in
        [("flat", Backend::Flat), ("tree", Backend::Tree { gpus_per_host: 8, branching: 4 })]
    {
        g.bench_function(name, |b| {
            b.iter(|| {
                let world = CommWorld::new(32, backend);
                let handles: Vec<_> = (0..32)
                    .map(|rank| {
                        let world = world.clone();
                        std::thread::spawn(move || {
                            world.communicator(rank).unwrap().barrier().unwrap()
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gather, bench_barrier);
criterion_main!(benches);
