//! Criterion: Table 7 on *real code* — DCP's synchronous all-gather +
//! interleaved D2H regularization (multi-threaded, real bytes over the real
//! collective substrate) vs ByteCheckpoint's pure-CPU decomposition, on the
//! same FSDP ZeRO-2 state.

use bcp_baselines::dcp::allgather_materialize;
use bcp_collectives::{Backend, CommWorld};
use bcp_core::decompose::shard_metas;
use bcp_model::states::{build_train_state, Framework, StateDict};
use bcp_model::zoo;
use bcp_topology::Parallelism;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;

const DP: usize = 4;

fn states() -> Vec<StateDict> {
    let par = Parallelism::data_parallel(DP).unwrap();
    (0..DP)
        .map(|r| {
            build_train_state(&zoo::tiny_gpt(), Framework::Fsdp { zero3: false }, par, r, true)
                .optimizer
        })
        .collect()
}

fn bench_allgather_vs_decompose(c: &mut Criterion) {
    let dicts = Arc::new(states());
    let mut g = c.benchmark_group("irregular_handling");
    g.sample_size(10);

    // DCP path: every rank all-gathers every flat tensor (threads + real
    // rendezvous collectives + real byte reassembly).
    g.bench_function("dcp_allgather_d2h_4ranks", |b| {
        b.iter(|| {
            let world = CommWorld::new(DP, Backend::Flat);
            let dicts = dicts.clone();
            let handles: Vec<_> = (0..DP)
                .map(|rank| {
                    let world = world.clone();
                    let dicts = dicts.clone();
                    std::thread::spawn(move || {
                        let comm = world.communicator(rank).unwrap();
                        allgather_materialize(&comm, &dicts[rank]).unwrap().1
                    })
                })
                .collect();
            let stats: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            black_box(stats)
        })
    });

    // ByteCheckpoint path: decompose every irregular shard into ShardMetas
    // (per rank, no communication at all).
    g.bench_function("bcp_decompose_4ranks", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for dict in dicts.iter() {
                for e in dict.entries.values() {
                    total += shard_metas(&e.fqn, &e.global_shape, &e.spec).len();
                }
            }
            black_box(total)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_allgather_vs_decompose);
criterion_main!(benches);
