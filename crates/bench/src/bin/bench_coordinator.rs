//! Control-plane benchmark: N concurrent simulated training jobs driving
//! real checkpoint saves through one `CoordinatorService`, contending for
//! one shared storage-bandwidth envelope. Emits
//! `results/BENCH_coordinator.json`.
//!
//! Three phases:
//!
//! 1. **solo** — one job with the envelope to itself: the per-step commit
//!    latency floor.
//! 2. **contention** — N identical equal-weight jobs at once. Gates: zero
//!    starved jobs (every job commits every step) and a completion-time
//!    fairness ratio ≤ 3× (identical jobs must drain together, not
//!    serialize behind one another).
//! 3. **admission wave** — a burst of registrations against an N-slot
//!    policy: typed Admitted / Backpressure / Rejected counts.
//!
//! Usage: `bench_coordinator [--jobs N] [--smoke] [--out PATH]`

use bcp_coordinator::{
    run_sim_job, AdmissionOutcome, AdmissionPolicy, CoordinatorService, Request, Response,
    SchedulerConfig, SimJobReport,
};
use bcp_core::spec::JobSpec;
use bcp_model::zoo;
use std::sync::Arc;
use std::time::Instant;

const FAIRNESS_GATE: f64 = 3.0;

/// Nearest-rank percentile over raw samples.
fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().clamp(1.0, sorted.len() as f64);
    sorted[rank as usize - 1]
}

fn latency_json(samples: &[f64]) -> serde_json::Value {
    serde_json::json!({
        "count": samples.len(),
        "p50_ms": percentile(samples, 50.0),
        "p90_ms": percentile(samples, 90.0),
        "p99_ms": percentile(samples, 99.0),
        "max_ms": samples.iter().cloned().fold(0.0f64, f64::max),
    })
}

fn register(service: &Arc<CoordinatorService>, spec: &JobSpec) {
    let Response::Admission { outcome } = service.handle(Request::Register { spec: spec.clone() })
    else {
        panic!("want Admission")
    };
    assert!(outcome.is_admitted(), "benchmark job refused: {outcome:?}");
}

fn service_for(jobs: usize) -> Arc<CoordinatorService> {
    // Scale the envelope with the fleet so total runtime stays bounded
    // while each job still contends (the envelope grows slower than the
    // aggregate demand would like).
    CoordinatorService::new(
        AdmissionPolicy { max_jobs: jobs.max(1), ..AdmissionPolicy::default() },
        SchedulerConfig {
            rate_bps: (8 + 2 * jobs as u64) * 1024 * 1024,
            burst_bytes: 256 * 1024,
            chunk_bytes: 64 * 1024,
        },
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--jobs takes a number"))
        .unwrap_or(if smoke { 4 } else { 8 });
    assert!((1..=64).contains(&jobs), "--jobs must be in 1..=64");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/BENCH_coordinator.json".to_string());
    let steps: u64 = if smoke { 2 } else { 4 };
    let model = zoo::tiny_gpt();

    // ---- Phase 1: solo baseline. ----
    let service = service_for(1);
    let solo_spec = JobSpec::new("solo", "mem://jobs/solo");
    register(&service, &solo_spec);
    let solo = run_sim_job(&service, &solo_spec, &model, steps).expect("solo job");

    // ---- Phase 2: N-job contention. ----
    let service = service_for(jobs);
    let specs: Vec<JobSpec> = (0..jobs)
        .map(|i| JobSpec::new(format!("job-{i}"), format!("mem://jobs/job-{i}")))
        .collect();
    for spec in &specs {
        register(&service, spec);
    }
    let t0 = Instant::now();
    let handles: Vec<_> = specs
        .iter()
        .map(|spec| {
            let service = service.clone();
            let spec = spec.clone();
            std::thread::spawn(move || {
                let begin = Instant::now();
                let report =
                    run_sim_job(&service, &spec, &zoo::tiny_gpt(), steps).expect("contention job");
                (report, begin.elapsed().as_secs_f64())
            })
        })
        .collect();
    let contention: Vec<(SimJobReport, f64)> =
        handles.into_iter().map(|h| h.join().expect("job thread")).collect();
    let wall_s = t0.elapsed().as_secs_f64();

    let starved: Vec<&str> = contention
        .iter()
        .filter(|(r, _)| r.steps != steps || r.commit_ms.len() != steps as usize)
        .map(|(r, _)| r.job_id.as_str())
        .collect();
    let times: Vec<f64> = contention.iter().map(|(_, t)| *t).collect();
    let fairness_ratio = times.iter().cloned().fold(f64::MIN, f64::max)
        / times.iter().cloned().fold(f64::MAX, f64::min);

    // ---- Phase 3: admission wave against the contention service. ----
    // The N slots are occupied; a second wave must get typed backpressure,
    // and malformed specs typed rejection.
    let mut admitted = 0u32;
    let mut backpressured = 0u32;
    let mut rejected = 0u32;
    for i in 0..jobs + 2 {
        let spec = if i < jobs {
            JobSpec::new(format!("wave-{i}"), format!("mem://jobs/wave-{i}"))
        } else {
            JobSpec::new("bad id", "mem://jobs/bad") // whitespace: permanently invalid
        };
        let Response::Admission { outcome } = service.handle(Request::Register { spec }) else {
            panic!("want Admission")
        };
        match outcome {
            AdmissionOutcome::Admitted { .. } => admitted += 1,
            AdmissionOutcome::Backpressure { .. } => backpressured += 1,
            AdmissionOutcome::Rejected { .. } => rejected += 1,
        }
    }

    let per_job: Vec<serde_json::Value> = contention
        .iter()
        .map(|(r, t)| {
            serde_json::json!({
                "job_id": r.job_id,
                "steps": r.steps,
                "bytes": r.bytes,
                "completion_s": t,
                "commit_latency": latency_json(&r.commit_ms),
            })
        })
        .collect();
    let report = serde_json::json!({
        "scenario": {
            "jobs": jobs,
            "steps_per_job": steps,
            "model": "tiny-GPT",
            "rate_bps": service.scheduler().config().rate_bps,
            "smoke": smoke,
        },
        "solo": {
            "bytes": solo.bytes,
            "commit_latency": latency_json(&solo.commit_ms),
        },
        "contention": {
            "wall_s": wall_s,
            "fairness_ratio": fairness_ratio,
            "fairness_gate": FAIRNESS_GATE,
            "starved_jobs": starved,
            "per_job": per_job,
        },
        "admission_wave": {
            "offered": jobs + 2,
            "admitted": admitted,
            "backpressured": backpressured,
            "rejected": rejected,
        },
    });
    let rendered = serde_json::to_string_pretty(&report).expect("serializable report");
    if let Some(dir) = std::path::Path::new(&out).parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create report directory");
    }
    std::fs::write(&out, &rendered).expect("write report");
    println!("{rendered}");
    println!("wrote {out}");

    // ---- Gates (exit nonzero on violation). ----
    assert!(starved.is_empty(), "starved jobs under contention: {starved:?}");
    assert!(
        fairness_ratio <= FAIRNESS_GATE,
        "fairness ratio {fairness_ratio:.2} exceeds the {FAIRNESS_GATE}x gate"
    );
    assert_eq!(admitted, 0, "a full control plane admits nothing");
    assert_eq!(backpressured, jobs as u32, "every over-capacity spec gets backpressure");
    assert_eq!(rejected, 2, "malformed specs get typed rejection");
}
