//! Engine hot-path benchmark: quantifies the overlapped, single-copy
//! execution engine against the pre-PR sequential paths on a latency-bound
//! (`Throttled`) backend, and emits `results/BENCH_engine.json` for the
//! repo's acceptance gates.
//!
//! Not a criterion bench on purpose: the interesting numbers are end-to-end
//! wall clocks of *one* configured pipeline run each, plus pool counters —
//! plain `Instant` timing keeps the harness dependency-free and lets
//! `scripts/check.sh` smoke it in CI.
//!
//! Usage: `bench_engine [--smoke] [--out PATH]`

use bcp_core::engine::iopool::IoPool;
use bcp_core::engine::load::{execute_load, LoadConfig};
use bcp_core::engine::pool::PinnedPool;
use bcp_core::engine::save::{execute_save, SaveConfig};
use bcp_core::fault::FaultHook;
use bcp_core::integrity::FailureLog;
use bcp_core::metadata::GlobalMetadata;
use bcp_core::plan::{build_tensor_map, local_load_plan, local_save_plan};
use bcp_core::planner::balance::AssignedLoadPlan;
use bcp_model::states::build_train_state;
use bcp_model::{zoo, Framework, TrainState};
use bcp_monitor::{MetricsSink, SpanContext};
use bcp_storage::{DynBackend, MemoryBackend, ThrottleProfile, Throttled};
use bcp_topology::Parallelism;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The acceptance scenario: per-op latency ≥ 2ms on every storage call, so
/// serialized I/O round trips dominate and overlap is measurable.
const OP_LATENCY: Duration = Duration::from_millis(2);

fn throttled_memory() -> DynBackend {
    let profile = ThrottleProfile {
        read_bps: f64::INFINITY,
        write_bps: f64::INFINITY,
        op_latency: OP_LATENCY,
    };
    Arc::new(Throttled::new(Arc::new(MemoryBackend::new()), profile, "throttled-mem"))
}

fn fresh_state() -> TrainState {
    let par = Parallelism::data_parallel(1).unwrap();
    build_train_state(&zoo::tiny_gpt(), Framework::Ddp, par, 0, true)
}

struct SaveRun {
    e2e: Duration,
    blocking: Duration,
}

/// One full save pipeline run against a fresh throttled backend.
fn run_save(state: &TrainState, cfg: &SaveConfig, pool: &Arc<PinnedPool>) -> SaveRun {
    let backend = throttled_memory();
    let io = IoPool::new(cfg.io_threads);
    let plan = local_save_plan(0, state, "cpu");
    let sink = MetricsSink::disabled();
    let log = Arc::new(FailureLog::new());
    let faults = FaultHook::inert(0);
    let t0 = Instant::now();
    let handle = execute_save(
        &plan,
        state,
        backend,
        "bench",
        pool,
        &io,
        &sink,
        log,
        cfg,
        0,
        &faults,
        SpanContext::none(),
    )
    .expect("save must start");
    let blocking = handle.blocking();
    handle.wait().expect("save must complete");
    SaveRun { e2e: t0.elapsed(), blocking }
}

/// One full load pipeline run (no peer forwarding: single rank) against a
/// prepared checkpoint.
fn run_load(backend: &DynBackend, meta: &GlobalMetadata, cfg: &LoadConfig) -> (Duration, usize) {
    let mut target = fresh_state();
    let local = local_load_plan(0, &target, meta).expect("load plan");
    let items = local.items.len();
    let assigned = AssignedLoadPlan {
        rank: 0,
        send_to: vec![Vec::new(); local.items.len()],
        reads: local.items,
        recvs: Vec::new(),
    };
    let io = IoPool::new(cfg.io_threads);
    let sink = MetricsSink::disabled();
    let log = Arc::new(FailureLog::new());
    let faults = FaultHook::inert(0);
    let t0 = Instant::now();
    execute_load(
        &assigned,
        &mut target,
        backend.clone(),
        "bench",
        None,
        &io,
        &sink,
        log,
        cfg,
        0,
        &faults,
        SpanContext::none(),
    )
    .expect("load must complete");
    (t0.elapsed(), items)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "results/BENCH_engine.json".to_string());

    let state = fresh_state();

    // ---- Save: pre-PR-shaped sequential (1 I/O thread, synchronous) vs
    // the pooled overlapped pipeline (8 threads, asynchronous upload). ----
    let seq_save_cfg = SaveConfig { io_threads: 1, async_upload: false, ..Default::default() };
    let pooled_save_cfg = SaveConfig { io_threads: 8, async_upload: true, ..Default::default() };
    let seq_pool = PinnedPool::new(2);
    let save_seq = run_save(&state, &seq_save_cfg, &seq_pool);
    let pooled_pool = PinnedPool::new(2);
    let save_pooled = run_save(&state, &pooled_save_cfg, &pooled_pool);
    let (allocs, reuses) = pooled_pool.stats();
    let copied = pooled_pool.copied_bytes();
    let planned = local_save_plan(0, &state, "cpu").total_bytes();

    // ---- Load: identical plan and thread budget; only `overlap` differs,
    // so the delta isolates the Fig. 10 pipeline. ----
    let backend = throttled_memory();
    {
        let io = IoPool::new(8);
        let plan = local_save_plan(0, &state, "cpu");
        let sink = MetricsSink::disabled();
        let log = Arc::new(FailureLog::new());
        let cfg = SaveConfig { async_upload: false, ..Default::default() };
        execute_save(
            &plan,
            &state,
            backend.clone(),
            "bench",
            &PinnedPool::new(2),
            &io,
            &sink,
            log,
            &cfg,
            0,
            &FaultHook::inert(0),
            SpanContext::none(),
        )
        .expect("seed save must start")
        .wait()
        .expect("seed save must complete");
    }
    let mut meta = GlobalMetadata::new("cpu", 0, "dp1", 1);
    meta.tensor_map = build_tensor_map(&[local_save_plan(0, &state, "cpu")]);

    let seq_load_cfg = LoadConfig { io_threads: 8, overlap: false, ..Default::default() };
    let ovl_load_cfg = LoadConfig { io_threads: 8, overlap: true, ..Default::default() };
    let (load_seq, items) = run_load(&backend, &meta, &seq_load_cfg);
    let (load_ovl, _) = run_load(&backend, &meta, &ovl_load_cfg);
    assert!(items >= 8, "scenario must exercise >= 8 read items, got {items}");

    let improvement_pct = 100.0 * (ms(load_seq) - ms(load_ovl)) / ms(load_seq);
    let report = serde_json::json!({
        "scenario": {
            "backend": "Throttled(MemoryBackend)",
            "op_latency_ms": OP_LATENCY.as_secs_f64() * 1e3,
            "read_items": items,
            "planned_bytes": planned,
            "smoke": smoke,
        },
        "save": {
            "sequential": { "e2e_ms": ms(save_seq.e2e), "blocking_ms": ms(save_seq.blocking) },
            "pooled":     { "e2e_ms": ms(save_pooled.e2e), "blocking_ms": ms(save_pooled.blocking) },
        },
        "load": {
            "sequential": { "e2e_ms": ms(load_seq) },
            "overlapped": { "e2e_ms": ms(load_ovl) },
            "improvement_pct": improvement_pct,
        },
        "pool": {
            "allocs": allocs,
            "reuses": reuses,
            "copied_bytes": copied,
            "single_copy": copied == planned,
        },
    });
    let rendered = serde_json::to_string_pretty(&report).expect("serializable report");
    if let Some(dir) = std::path::Path::new(&out).parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create report directory");
    }
    std::fs::write(&out, &rendered).expect("write report");
    println!("{rendered}");
    println!("wrote {out}");
    if !smoke {
        assert!(
            improvement_pct >= 30.0,
            "overlapped load must beat sequential by >= 30%, got {improvement_pct:.1}%"
        );
    }
    assert_eq!(copied, planned, "capture must copy each tensor byte exactly once");
}
