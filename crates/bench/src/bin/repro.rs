//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p bcp-bench --release --bin repro -- all
//! cargo run -p bcp-bench --release --bin repro -- table4 fig13
//! ```
//!
//! Tables come from the `bcp-sim` virtual-time pipeline over real planner
//! outputs; figures come from real multi-rank execution (see
//! `bcp-bench::figures`). EXPERIMENTS.md records paper-vs-produced values.

use bcp_bench::figures;
use bcp_sim::experiments;
use bcp_sim::CostModel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8",
            "table9", "fig11", "fig12", "fig13", "fig14", "fig16", "fig17",
        ]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    let m = CostModel::default();
    let mut fig11_12: Option<(String, String)> = None;
    for id in wanted {
        match id {
            "table1" => print_table(experiments::table1(&m)),
            "table2" => print_table(experiments::table2()),
            "table3" => print_table(experiments::table3()),
            "table4" => print_table(experiments::table4(&m)),
            "table5" => print_table(experiments::table5(&m)),
            "table6" => print_table(experiments::table6(&m)),
            "table7" => print_table(experiments::table7(&m)),
            "table8" => print_table(experiments::table8(&m)),
            "table9" => print_table(experiments::table9(&m)),
            "fig11" => {
                let (f11, _) = fig11_12.get_or_insert_with(figures::fig11_fig12).clone();
                print_section(
                    "Figure 11: end-to-end saving-time heat map (real 32-rank run)",
                    &f11,
                );
            }
            "fig12" => {
                let (_, f12) = fig11_12.get_or_insert_with(figures::fig11_fig12).clone();
                print_section("Figure 12: rank-0 saving-phase breakdown (real run)", &f12);
            }
            "fig13" => print_section("Figure 13: PP/TP resharding correctness", &figures::fig13()),
            "fig14" => {
                print_section("Figure 14: bitwise resumption across restarts", &figures::fig14())
            }
            "fig16" => {
                print_section("Figure 16: DP/hybrid resharding correctness", &figures::fig16())
            }
            "fig17" => {
                print_section("Figure 17: dataloader sampling trajectory", &figures::fig17())
            }
            other => eprintln!("unknown artifact {other:?} (use table1..table9, fig11..fig17)"),
        }
    }
}

fn print_table(t: experiments::TableText) {
    print_section(&t.title, &t.text);
}

fn print_section(title: &str, body: &str) {
    println!("================================================================");
    println!("{title}");
    println!("================================================================");
    println!("{body}");
}
