//! # bcp-bench — benchmark harness and figure generators
//!
//! * [`figures`] — the evaluation figures that come from *real execution*
//!   (not the simulator): the Fig. 11 heat map and Fig. 12 breakdown from an
//!   instrumented 32-rank save, and the Figs. 13/14/16/17 correctness
//!   curves from deterministic training with save/resume/reshard cycles.
//! * [`harness`] — shared multi-rank job runner used by figures and the
//!   criterion benches.
//!
//! The `repro` binary prints every table (from `bcp-sim`) and figure.

pub mod figures;
pub mod harness;
