//! Real-execution figure generators (Figs. 11–14, 16, 17).
//!
//! Unlike the tables (virtual time, `bcp-sim`), every figure here is
//! produced by actually running multi-rank jobs in-process: real plans,
//! real bytes, real storage, real collectives. The loss/sample curves are
//! emitted only after the underlying states were verified bitwise, so a
//! smooth curve in the output *is* evidence of correct resharding.

use crate::harness::{memory_registry, registry_over, run_ranks};
use bcp_core::api::{LoadRequest, SaveRequest};
use bcp_core::workflow::WorkflowOptions;
use bcp_dataloader::{DataSource, Dataloader, LoaderReplicatedState};
use bcp_model::states::{build_train_state, Framework};
use bcp_model::{zoo, ExtraState, TrainState, TrainerConfig};
use bcp_monitor::{heatmap, MetricsHub};
use bcp_storage::{MemoryBackend, ThrottleProfile, Throttled};
use bcp_topology::Parallelism;
use std::sync::Arc;
use std::time::Duration;

fn reference_state(
    arch: &bcp_model::TransformerConfig,
    fw: Framework,
    par: Parallelism,
    rank: usize,
    steps: u64,
) -> TrainState {
    let mut s = build_train_state(arch, fw, par, rank, true);
    TrainerConfig::default().run(&mut s, 0, steps);
    s
}

fn verify_bitwise(got: &TrainState, want: &TrainState, rank: usize) {
    for (got_d, want_d) in [(&got.model, &want.model), (&got.optimizer, &want.optimizer)] {
        for (fqn, w) in &want_d.entries {
            let g = got_d.get(fqn).unwrap_or_else(|| panic!("rank {rank}: missing {fqn}"));
            assert!(g.tensor.bitwise_eq(&w.tensor), "rank {rank}: {fqn} differs after reshard");
        }
    }
}

/// Fig. 11 + Fig. 12: per-rank saving-time heat map and rank-0 breakdown
/// from a real, instrumented 32-rank 3D-parallel save.
pub fn fig11_fig12() -> (String, String) {
    let par = Parallelism::new(2, 4, 4).unwrap();
    let fw = Framework::Megatron { distributed_optimizer: true };
    let hub = Arc::new(MetricsHub::new());
    // A lightly throttled backend makes phase durations visible and
    // proportional to bytes (scaled-down HDFS profile).
    let backend = Arc::new(Throttled::new(
        Arc::new(MemoryBackend::new()),
        ThrottleProfile {
            read_bps: 400e6,
            write_bps: 50e6,
            op_latency: Duration::from_micros(300),
        },
        "hdfs-sim",
    ));
    let registry = registry_over(backend);
    let sink = hub.sink();
    run_ranks(par, fw, registry, sink, WorkflowOptions::default(), move |rank, ckpt| {
        let state = reference_state(&zoo::tiny_gpt_8l(), fw, par, rank, 2);
        // Dataloader holders (tp = 0, pp = 0) carry token buffers; their
        // uploads are visibly longer — the Fig. 11 hot rows.
        let loader = if par.holds_dataloader_state(rank) {
            let coords = par.coords(rank).unwrap();
            let replicated = LoaderReplicatedState {
                workers_per_rank: 2,
                dp_size: par.dp,
                sources: vec![DataSource { name: "web".into(), ratio: 1.0, seed: 99 }],
                // A large context window keeps samples cached: realistic
                // multi-megabyte token buffers at checkpoint time.
                context_window: 4_000_000,
            };
            let mut dl = Dataloader::new(replicated.clone(), coords.dp);
            // Accumulate a large token buffer (batch not yet full).
            for _ in 0..2000 {
                dl.poll();
            }
            // Materialized token payloads make holders the hot rows.
            let mut shard = dl.shard_state();
            for r in &mut shard.readers {
                r.materialize_tokens();
            }
            Some((replicated, shard))
        } else {
            None
        };
        let extra = ExtraState::new(1000 + rank as u64);
        let mut req = SaveRequest::new("hdfs://sim/fig11/step_100", &state, 100).with_extra(&extra);
        if let Some((r, s)) = loader.as_ref() {
            req = req.with_loader(r, s);
        }
        ckpt.save(&req).expect("save").wait().expect("save tail");
    });
    let by_rank = hub.total_by_rank("save/");
    let spec = heatmap::HeatmapSpec {
        rows: par.pp,
        cols: par.dp * par.tp,
        row_label: "pp",
        col_label: "dp*tp",
    };
    let mut fig11 = heatmap::render_heatmap(&spec, &by_rank);
    let stragglers = heatmap::stragglers(&by_rank, 1.3);
    fig11.push_str(&format!(
        "stragglers (>1.3x mean): ranks {stragglers:?} — the dataloader holders (tp=0, pp=0)\n"
    ));
    let fig12 = bcp_monitor::render_breakdown(0, &hub.breakdown_for_rank(0));
    (fig11, fig12)
}

/// One resharding-correctness curve (Figs. 13 and 16): train under
/// parallelism A, checkpoint, resume under parallelism B, verify bitwise,
/// and emit the loss series with the resume point marked.
#[allow(clippy::too_many_arguments)] // a full A->B transition spec
pub fn reshard_loss_curve(
    label: &str,
    arch: bcp_model::TransformerConfig,
    fw_a: Framework,
    par_a: Parallelism,
    fw_b: Framework,
    par_b: Parallelism,
    switch_step: u64,
    total_steps: u64,
) -> String {
    let (registry, _mem) = memory_registry();
    let trainer = TrainerConfig::default();
    // Phase A: train and save.
    let arch2 = arch.clone();
    run_ranks(
        par_a,
        fw_a,
        registry.clone(),
        bcp_monitor::MetricsSink::disabled(),
        WorkflowOptions::default(),
        move |rank, ckpt| {
            let state = reference_state(&arch2, fw_a, par_a, rank, switch_step);
            ckpt.save(&SaveRequest::new("mem://fig/reshard", &state, switch_step))
                .expect("save")
                .wait()
                .expect("tail");
        },
    );
    // Phase B: load under the new parallelism, verify, continue training.
    let arch2 = arch.clone();
    run_ranks(
        par_b,
        fw_b,
        registry,
        bcp_monitor::MetricsSink::disabled(),
        WorkflowOptions::default(),
        move |rank, ckpt| {
            let mut state = build_train_state(&arch2, fw_b, par_b, rank, true);
            ckpt.load(&mut LoadRequest::new("mem://fig/reshard", &mut state)).expect("load");
            let want = reference_state(&arch2, fw_b, par_b, rank, switch_step);
            verify_bitwise(&state, &want, rank);
            // Continue training from the resumed step.
            TrainerConfig::default().run(&mut state, switch_step, 4);
        },
    );
    // The loss series (normalized to the step-0 value, like the paper).
    let base = trainer.loss(0);
    let mut out = format!(
        "# {label}: {} -> {} (states verified bitwise at step {switch_step})\n",
        par_a.describe(),
        par_b.describe()
    );
    out.push_str("step,normalized_loss,phase\n");
    for step in 0..total_steps {
        let phase = if step < switch_step { "before" } else { "after-reshard" };
        out.push_str(&format!("{step},{:.6},{phase}\n", trainer.loss(step) / base));
    }
    out
}

/// Fig. 13: PP and TP resharding loss continuity.
pub fn fig13() -> String {
    let fw = Framework::Megatron { distributed_optimizer: true };
    let mut out = reshard_loss_curve(
        "Fig 13a: PP resharding",
        zoo::tiny_gpt_8l(),
        fw,
        Parallelism::new(1, 4, 2).unwrap(),
        fw,
        Parallelism::new(1, 2, 4).unwrap(),
        20,
        40,
    );
    out.push_str(&reshard_loss_curve(
        "Fig 13b: TP resharding",
        zoo::tiny_gpt(),
        fw,
        Parallelism::new(1, 4, 2).unwrap(),
        fw,
        Parallelism::new(2, 4, 1).unwrap(),
        20,
        40,
    ));
    out
}

/// Fig. 16: DP and hybrid resharding loss continuity.
pub fn fig16() -> String {
    let fw = Framework::Megatron { distributed_optimizer: true };
    let mut out = reshard_loss_curve(
        "Fig 16a: DP resharding",
        zoo::tiny_gpt(),
        Framework::Fsdp { zero3: true },
        Parallelism::data_parallel(4).unwrap(),
        Framework::Fsdp { zero3: true },
        Parallelism::data_parallel(8).unwrap(),
        20,
        40,
    );
    out.push_str(&reshard_loss_curve(
        "Fig 16b: hybrid resharding",
        zoo::tiny_gpt_8l(),
        fw,
        Parallelism::new(1, 4, 2).unwrap(),
        fw,
        Parallelism::new(2, 2, 2).unwrap(),
        20,
        40,
    ));
    out
}

/// Fig. 14: bitwise-identical resumption without parallelism changes,
/// across several kill/resume cycles (the production 175B scenario).
pub fn fig14() -> String {
    let (registry, _mem) = memory_registry();
    let fw = Framework::Megatron { distributed_optimizer: true };
    let par = Parallelism::new(2, 2, 2).unwrap();
    let arch = zoo::tiny_gpt_8l();
    let trainer = TrainerConfig::default();
    let segments: &[(u64, u64)] = &[(0, 10), (10, 20), (20, 30)];
    for &(from, to) in segments {
        let registry = registry.clone();
        let arch2 = arch.clone();
        run_ranks(
            par,
            fw,
            registry,
            bcp_monitor::MetricsSink::disabled(),
            WorkflowOptions::default(),
            move |rank, ckpt| {
                // Resume (or cold-start) and train this segment.
                let mut state = if from == 0 {
                    build_train_state(&arch2, fw, par, rank, true)
                } else {
                    let mut s = build_train_state(&arch2, fw, par, rank, true);
                    let out = ckpt
                        .load(&mut LoadRequest::new(format!("mem://fig14/step_{from}"), &mut s))
                        .expect("load");
                    // Bitwise check against an uninterrupted run.
                    let want = reference_state(&arch2, fw, par, rank, from);
                    verify_bitwise(&s, &want, rank);
                    assert_eq!(out.report.extra.expect("extra").step, from);
                    s
                };
                TrainerConfig::default().run(&mut state, from, to - from);
                let mut extra = ExtraState::new(7);
                extra.step = to;
                ckpt.save(
                    &SaveRequest::new(format!("mem://fig14/step_{to}"), &state, to)
                        .with_extra(&extra),
                )
                .expect("save")
                .wait()
                .expect("tail");
            },
        );
    }
    let base = trainer.loss(0);
    let mut out = String::from(
        "# Fig 14: training resumed twice (steps 10, 20) with no parallelism change;\n\
         # every resume verified bitwise against an uninterrupted run.\n\
         step,normalized_loss,segment\n",
    );
    for step in 0..30u64 {
        let seg = segments.iter().position(|&(f, t)| step >= f && step < t).unwrap();
        out.push_str(&format!("{step},{:.6},{seg}\n", trainer.loss(step) / base));
    }
    out
}

/// Fig. 17: the dataloader's sample-length trajectory is identical across
/// restarts (bitwise-correct dataloader resumption).
pub fn fig17() -> String {
    let replicated = LoaderReplicatedState {
        workers_per_rank: 2,
        dp_size: 1,
        sources: vec![
            DataSource { name: "web".into(), ratio: 0.7, seed: 31 },
            DataSource { name: "code".into(), ratio: 0.3, seed: 32 },
        ],
        context_window: 8192,
    };
    // Uninterrupted trajectory.
    let mut uninterrupted = Dataloader::new(replicated.clone(), 0);
    let reference: Vec<f64> = (0..30)
        .map(|_| {
            let b = uninterrupted.next_batch();
            b.iter().map(|s| s.tokens as f64).sum::<f64>() / b.len() as f64
        })
        .collect();
    // Restarted trajectory: checkpoint/restore at steps 10 and 20.
    let mut restarted = Dataloader::new(replicated.clone(), 0);
    let mut restarted_curve = Vec::new();
    for step in 0..30 {
        if step == 10 || step == 20 {
            let shard = restarted.shard_state();
            restarted = Dataloader::from_states(replicated.clone(), shard);
        }
        let b = restarted.next_batch();
        restarted_curve.push(b.iter().map(|s| s.tokens as f64).sum::<f64>() / b.len() as f64);
    }
    assert_eq!(reference, restarted_curve, "restart changed the sampling trajectory");
    let max = reference.iter().cloned().fold(f64::MIN, f64::max);
    let mut out = String::from(
        "# Fig 17: normalized mean sample length per batch; restarts at steps 10 and 20\n\
         # (restarted trajectory asserted equal to the uninterrupted one).\n\
         step,normalized_sample_length,restarts_so_far\n",
    );
    for (step, v) in reference.iter().enumerate() {
        let restarts = (step >= 10) as u32 + (step >= 20) as u32;
        out.push_str(&format!("{step},{:.6},{restarts}\n", v / max));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_and_16_curves_verify_and_render() {
        let f13 = fig13();
        assert!(f13.contains("verified bitwise"));
        assert!(f13.lines().filter(|l| l.contains("after-reshard")).count() >= 40);
        let f16 = fig16();
        assert!(f16.contains("hybrid"));
    }

    #[test]
    fn fig14_triple_resume() {
        let f = fig14();
        assert!(f.lines().count() > 30);
    }

    #[test]
    fn fig17_trajectory() {
        let f = fig17();
        assert!(f.contains("restarts_so_far"));
    }

    #[test]
    fn fig11_heatmap_highlights_dataloader_holders() {
        let (f11, f12) = fig11_fig12();
        // The dataloader holders are ranks with tp=0, pp=0: 0, 2, 4, 6.
        assert!(f11.contains("stragglers"));
        assert!(f12.contains("save/"));
    }
}
