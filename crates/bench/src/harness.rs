//! Multi-rank job harness shared by figure generation and benches: spawn
//! one thread per rank, give each a [`Checkpointer`] over a shared world and
//! backend registry, run a closure, join.

use bcp_collectives::{Backend, CommWorld};
use bcp_core::api::Checkpointer;
use bcp_core::registry::BackendRegistry;
use bcp_core::workflow::WorkflowOptions;
use bcp_model::Framework;
use bcp_monitor::MetricsSink;
use bcp_storage::uri::Scheme;
use bcp_storage::{DynBackend, MemoryBackend};
use bcp_topology::Parallelism;
use std::sync::Arc;

/// A registry whose every scheme maps to one shared in-memory store;
/// returns the store too, for direct inspection.
pub fn memory_registry() -> (Arc<BackendRegistry>, DynBackend) {
    let mem: DynBackend = Arc::new(MemoryBackend::new());
    let mut reg = BackendRegistry::new();
    for scheme in [Scheme::Memory, Scheme::File, Scheme::Hdfs, Scheme::Nas] {
        reg.register(scheme, mem.clone());
    }
    (Arc::new(reg), mem)
}

/// A registry over an arbitrary backend (e.g. a throttled one for realistic
/// monitoring output).
pub fn registry_over(backend: DynBackend) -> Arc<BackendRegistry> {
    let mut reg = BackendRegistry::new();
    for scheme in [Scheme::Memory, Scheme::File, Scheme::Hdfs, Scheme::Nas] {
        reg.register(scheme, backend.clone());
    }
    Arc::new(reg)
}

/// Run `f(rank, checkpointer)` on one thread per rank.
pub fn run_ranks<F, T>(
    par: Parallelism,
    fw: Framework,
    registry: Arc<BackendRegistry>,
    sink: MetricsSink,
    options: WorkflowOptions,
    f: F,
) -> Vec<T>
where
    F: Fn(usize, Checkpointer) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    let world = par.world_size();
    let comm_world = CommWorld::new(world, Backend::Tree { gpus_per_host: 8, branching: 4 });
    let f = Arc::new(f);
    let mut handles = Vec::new();
    for rank in 0..world {
        let comm_world = comm_world.clone();
        let registry = registry.clone();
        let sink = sink.clone();
        let options = options.clone();
        let f = f.clone();
        handles.push(std::thread::spawn(move || {
            let comm = comm_world.communicator(rank).expect("rank in world");
            let ckpt = Checkpointer::builder(comm)
                .framework(fw)
                .parallelism(par)
                .registry(registry)
                .workflow(options)
                .sink(sink)
                .build()
                .expect("harness checkpointer");
            f(rank, ckpt)
        }));
    }
    handles.into_iter().map(|h| h.join().expect("rank thread")).collect()
}
