//! Tree-based hierarchical communication topology (paper §5.2).
//!
//! "Training workers on a single machine are organized into first-level
//! subtrees, with the worker of local rank 0 designated as the root. For
//! inter-machine communication, we iteratively group multiple machines,
//! designating the worker with the lowest global rank in each group as the
//! root. This procedure continues until all workers are integrated into a
//! hierarchy converging at the global root (i.e., the coordinator)."

use serde::{Deserialize, Serialize};

/// A gather/scatter tree over ranks `0..world_size`, rooted at rank 0.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeTopology {
    /// `parent[r]` is `None` only for the root.
    parent: Vec<Option<usize>>,
    /// Children of each rank, in ascending order.
    children: Vec<Vec<usize>>,
}

impl TreeTopology {
    /// Build the hierarchy: per-host star subtrees (root = local rank 0),
    /// then host roots grouped `branching` at a time, iteratively, until one
    /// root remains. `branching` bounds the inter-machine fan-in.
    pub fn build(world_size: usize, gpus_per_host: usize, branching: usize) -> TreeTopology {
        assert!(world_size > 0 && gpus_per_host > 0 && branching > 1);
        let mut parent: Vec<Option<usize>> = vec![None; world_size];
        // Level 1: ranks on each host attach to the host's local rank 0.
        let mut level: Vec<usize> = Vec::new(); // current roots, ascending
        for host_start in (0..world_size).step_by(gpus_per_host) {
            let host_end = (host_start + gpus_per_host).min(world_size);
            for p in parent.iter_mut().take(host_end).skip(host_start + 1) {
                *p = Some(host_start);
            }
            level.push(host_start);
        }
        // Upper levels: group roots `branching` at a time; lowest global rank
        // in each group becomes the group root.
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(branching));
            for group in level.chunks(branching) {
                let root = group[0]; // ascending order -> lowest global rank
                for &r in &group[1..] {
                    parent[r] = Some(root);
                }
                next.push(root);
            }
            level = next;
        }
        let mut children = vec![Vec::new(); world_size];
        for (r, p) in parent.iter().enumerate() {
            if let Some(&p) = p.as_ref() {
                children[p].push(r);
            }
        }
        TreeTopology { parent, children }
    }

    /// Number of ranks.
    pub fn world_size(&self) -> usize {
        self.parent.len()
    }

    /// The root (coordinator) rank.
    pub fn root(&self) -> usize {
        self.parent.iter().position(|p| p.is_none()).expect("a tree always has a root")
    }

    /// Parent of `rank`, `None` for the root.
    pub fn parent(&self, rank: usize) -> Option<usize> {
        self.parent[rank]
    }

    /// Children of `rank`.
    pub fn children(&self, rank: usize) -> &[usize] {
        &self.children[rank]
    }

    /// Depth of `rank` (root = 0).
    pub fn depth(&self, rank: usize) -> usize {
        let mut d = 0;
        let mut r = rank;
        while let Some(p) = self.parent[r] {
            r = p;
            d += 1;
        }
        d
    }

    /// Height of the whole tree (max depth).
    pub fn height(&self) -> usize {
        (0..self.world_size()).map(|r| self.depth(r)).max().unwrap_or(0)
    }

    /// Maximum fan-in (children count) over all ranks. The flat topology's
    /// equivalent is `world_size - 1` at the coordinator; the tree keeps it
    /// at `max(gpus_per_host - 1, branching - 1)`-ish.
    pub fn max_fanin(&self) -> usize {
        self.children.iter().map(|c| c.len()).max().unwrap_or(0)
    }

    /// Total number of edges (== world_size - 1): the connection count a
    /// tree backend needs, vs. O(world²) worst case for flat P2P channels.
    pub fn num_edges(&self) -> usize {
        self.world_size() - 1
    }

    /// All ranks in the subtree rooted at `rank` (including `rank`), in
    /// ascending order. Used by hierarchical scatter to route each child its
    /// subtree's payload.
    pub fn subtree_members(&self, rank: usize) -> Vec<usize> {
        let mut members = vec![rank];
        let mut frontier = vec![rank];
        while let Some(r) = frontier.pop() {
            for &c in self.children(r) {
                members.push(c);
                frontier.push(c);
            }
        }
        members.sort_unstable();
        members
    }

    /// Ranks ordered bottom-up (children before parents): the order in which
    /// a hierarchical gather completes.
    pub fn bottom_up_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.world_size()).collect();
        order.sort_by_key(|&r| std::cmp::Reverse(self.depth(r)));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_host_is_a_star() {
        let t = TreeTopology::build(8, 8, 8);
        assert_eq!(t.root(), 0);
        assert_eq!(t.children(0), &[1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn multi_host_hierarchy() {
        // 4 hosts × 4 GPUs, branching 2: host roots 0,4,8,12;
        // groups (0,4) root 0 and (8,12) root 8; then (0,8) root 0.
        let t = TreeTopology::build(16, 4, 2);
        assert_eq!(t.root(), 0);
        assert_eq!(t.parent(4), Some(0));
        assert_eq!(t.parent(12), Some(8));
        assert_eq!(t.parent(8), Some(0));
        assert_eq!(t.depth(12), 2);
        assert_eq!(t.depth(13), 3);
        assert_eq!(t.num_edges(), 15);
    }

    #[test]
    fn every_rank_reaches_root() {
        let t = TreeTopology::build(100, 8, 4);
        let root = t.root();
        for r in 0..100 {
            let mut cur = r;
            let mut steps = 0;
            while let Some(p) = t.parent(cur) {
                cur = p;
                steps += 1;
                assert!(steps <= 100, "cycle detected");
            }
            assert_eq!(cur, root);
        }
    }

    #[test]
    fn fanin_stays_bounded_at_scale() {
        // The paper's pathology: flat NCCL gather at 8960 ranks needs 8959
        // peer connections at the coordinator. The tree keeps fan-in small.
        let world = 8960;
        let t = TreeTopology::build(world, 8, 8);
        // Rank 0 roots one group per level, so its fan-in is roughly
        // (gpus_per_host - 1) + levels * (branching - 1) — about 30 here,
        // nearly 300x smaller than the flat coordinator's 8959.
        assert!(t.max_fanin() <= 40, "fan-in {} too large", t.max_fanin());
        assert!(t.height() <= 8, "height {} too large", t.height());
        assert_eq!(t.num_edges(), world - 1);
    }

    #[test]
    fn partial_last_host() {
        let t = TreeTopology::build(10, 8, 8);
        // Host 0: ranks 0-7, host 1: ranks 8-9.
        assert_eq!(t.parent(9), Some(8));
        assert_eq!(t.parent(8), Some(0));
    }

    #[test]
    fn bottom_up_order_puts_children_first() {
        let t = TreeTopology::build(16, 4, 2);
        let order = t.bottom_up_order();
        let pos: Vec<usize> = {
            let mut p = vec![0; 16];
            for (i, &r) in order.iter().enumerate() {
                p[r] = i;
            }
            p
        };
        for r in 0..16 {
            if let Some(parent) = t.parent(r) {
                assert!(pos[r] < pos[parent], "child {r} must come before parent {parent}");
            }
        }
    }
}
