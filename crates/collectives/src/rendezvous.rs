//! The rendezvous table: the transport under every collective.
//!
//! A collective over group `G` with sequence number `s` is a *slot* keyed by
//! `(group key, s)`. Every participant deposits its input; the last arrival
//! runs a pure combine function that maps `rank → input` to `rank → output`;
//! everyone picks up its own output. The slot is freed when the last output
//! is taken. Timeouts make peer death observable instead of deadlocking —
//! the property the paper's integrity barrier relies on.

use crate::{CollectiveError, Result};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

type AnyBox = Box<dyn Any + Send>;

/// Key identifying one collective operation instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SlotKey {
    /// Stable hash of the sorted member ranks of the group.
    pub group: u64,
    /// Per-(group, rank) monotonically increasing op sequence number.
    pub seq: u64,
}

#[derive(Default)]
struct Slot {
    deposits: BTreeMap<usize, AnyBox>,
    outputs: Option<BTreeMap<usize, AnyBox>>,
    taken: usize,
}

/// Shared rendezvous table for one [`crate::CommWorld`].
pub struct Rendezvous {
    slots: Mutex<HashMap<SlotKey, Slot>>,
    /// Per-(group, rank) next sequence number.
    seqs: Mutex<HashMap<(u64, usize), u64>>,
    /// Ranks marked failed by failure injection.
    failed: Mutex<Vec<usize>>,
    cond: Condvar,
    /// Point-to-point mailbox: non-blocking sends deposit here; receivers
    /// block on [`Rendezvous::take`]. Keyed like collectives, but over a
    /// *directional channel* key so A→B and B→A streams stay independent.
    mailbox: Mutex<HashMap<SlotKey, AnyBox>>,
    mail_cond: Condvar,
}

impl Rendezvous {
    /// Create an empty table.
    pub fn new() -> Arc<Rendezvous> {
        Arc::new(Rendezvous {
            slots: Mutex::new(HashMap::new()),
            seqs: Mutex::new(HashMap::new()),
            failed: Mutex::new(Vec::new()),
            cond: Condvar::new(),
            mailbox: Mutex::new(HashMap::new()),
            mail_cond: Condvar::new(),
        })
    }

    /// Allocate the next sequence number for `rank` on `group`.
    ///
    /// Collectives are matched positionally (standard SPMD contract): the
    /// k-th collective a rank issues on a group pairs with every other
    /// member's k-th collective on that group.
    pub fn next_seq(&self, group: u64, rank: usize) -> u64 {
        let mut seqs = self.seqs.lock();
        let e = seqs.entry((group, rank)).or_insert(0);
        let s = *e;
        *e += 1;
        s
    }

    /// Mark a rank as failed: every in-flight and future rendezvous that
    /// expects it errors out promptly instead of timing out.
    ///
    /// The notifications are issued while holding each waiter's mutex:
    /// without that, a waiter that has just checked the failed set and is
    /// about to call `wait_for` misses the wakeup entirely and sleeps out
    /// its full timeout — the overlapped-load hang window. Taking the lock
    /// serializes this notify against every check-then-wait sequence.
    pub fn mark_failed(&self, rank: usize) {
        self.failed.lock().push(rank);
        {
            let _slots = self.slots.lock();
            self.cond.notify_all();
        }
        {
            let _mailbox = self.mailbox.lock();
            self.mail_cond.notify_all();
        }
    }

    /// Clear the failure-injection set (tests).
    pub fn clear_failures(&self) {
        self.failed.lock().clear();
        {
            let _slots = self.slots.lock();
            self.cond.notify_all();
        }
        {
            let _mailbox = self.mailbox.lock();
            self.mail_cond.notify_all();
        }
    }

    /// Deposit a point-to-point message under `key` without blocking. The
    /// non-blocking contract is what lets a set of ranks all send before any
    /// receives — eager forwarding cannot deadlock.
    pub fn post<T: Send + 'static>(&self, key: SlotKey, value: T) {
        self.mailbox.lock().insert(key, Box::new(value));
        self.mail_cond.notify_all();
    }

    /// Take the message deposited under `key`, blocking up to `timeout`.
    /// `from` is the expected sender: if it is marked failed before its
    /// message arrives, this errors promptly with `PeerFailed`.
    pub fn take<T: Send + 'static>(
        &self,
        op_name: &'static str,
        key: SlotKey,
        from: usize,
        timeout: Duration,
    ) -> Result<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut mailbox = self.mailbox.lock();
        loop {
            if let Some(boxed) = mailbox.remove(&key) {
                return Ok(*boxed.downcast::<T>().expect("uniform p2p message type per channel"));
            }
            if self.failed.lock().contains(&from) {
                return Err(CollectiveError::PeerFailed { rank: from });
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(CollectiveError::Timeout { op: op_name, arrived: 0, expected: 1 });
            }
            self.mail_cond.wait_for(&mut mailbox, remaining);
        }
    }

    /// Execute one collective: deposit `input` for `rank`, wait for all
    /// `members`, combine with `f` (run exactly once, by the last arrival),
    /// and return this rank's output.
    #[allow(clippy::too_many_arguments)] // a collective op's full identity
    pub fn exchange<I, O, F>(
        &self,
        op_name: &'static str,
        key: SlotKey,
        members: &[usize],
        rank: usize,
        input: I,
        timeout: Duration,
        f: F,
    ) -> Result<O>
    where
        I: Send + 'static,
        O: Send + 'static,
        F: FnOnce(BTreeMap<usize, I>) -> BTreeMap<usize, O>,
    {
        if !members.contains(&rank) {
            return Err(CollectiveError::NotAMember { rank });
        }
        let expected = members.len();
        let mut slots = self.slots.lock();
        {
            let slot = slots.entry(key.clone()).or_default();
            slot.deposits.insert(rank, Box::new(input));
            if slot.deposits.len() == expected {
                // Last arrival: run the combine function.
                let deposits = std::mem::take(&mut slot.deposits);
                let typed: BTreeMap<usize, I> = deposits
                    .into_iter()
                    .map(|(r, b)| (r, *b.downcast::<I>().expect("uniform collective input type")))
                    .collect();
                let outputs = f(typed);
                slot.outputs =
                    Some(outputs.into_iter().map(|(r, o)| (r, Box::new(o) as AnyBox)).collect());
                self.cond.notify_all();
            }
        }
        // Wait for outputs to materialize.
        let deadline = std::time::Instant::now() + timeout;
        loop {
            {
                let slot = slots.get_mut(&key).expect("slot present until all outputs taken");
                if let Some(outputs) = slot.outputs.as_mut() {
                    let out = outputs
                        .remove(&rank)
                        .expect("combine produced an output for every member")
                        .downcast::<O>()
                        .expect("uniform collective output type");
                    slot.taken += 1;
                    if slot.taken == expected {
                        slots.remove(&key);
                    }
                    return Ok(*out);
                }
                // Check failure injection: if any expected member is failed
                // and has not deposited, abort.
                let failed = self.failed.lock();
                if let Some(&dead) =
                    failed.iter().find(|r| members.contains(r) && !slot.deposits.contains_key(r))
                {
                    // Remove our deposit so a retry does not double-count.
                    slot.deposits.remove(&rank);
                    if slot.deposits.is_empty() {
                        slots.remove(&key);
                    }
                    return Err(CollectiveError::PeerFailed { rank: dead });
                }
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                let arrived = slots.get(&key).map_or(0, |s| s.deposits.len());
                return Err(CollectiveError::Timeout { op: op_name, arrived, expected });
            }
            self.cond.wait_for(&mut slots, remaining);
        }
    }
}

/// Stable group key from member ranks (order-independent).
pub fn group_key(members: &[usize]) -> u64 {
    let mut sorted: Vec<usize> = members.to_vec();
    sorted.sort_unstable();
    // FNV-1a over the rank list.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for r in sorted {
        for b in (r as u64).to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn exchange_runs_combine_once_and_routes_outputs() {
        let rdv = Rendezvous::new();
        let members = vec![0usize, 1, 2];
        let gk = group_key(&members);
        let mut handles = Vec::new();
        for rank in 0..3usize {
            let rdv = rdv.clone();
            let members = members.clone();
            handles.push(thread::spawn(move || {
                let seq = rdv.next_seq(gk, rank);
                rdv.exchange(
                    "test",
                    SlotKey { group: gk, seq },
                    &members,
                    rank,
                    rank * 10,
                    Duration::from_secs(5),
                    |inputs| {
                        let sum: usize = inputs.values().sum();
                        inputs.keys().map(|&r| (r, sum + r)).collect()
                    },
                )
                .unwrap()
            }));
        }
        let results: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(results, vec![30, 31, 32]);
    }

    #[test]
    fn timeout_when_member_missing() {
        let rdv = Rendezvous::new();
        let members = vec![0usize, 1];
        let gk = group_key(&members);
        let seq = rdv.next_seq(gk, 0);
        let err = rdv
            .exchange::<(), (), _>(
                "lonely",
                SlotKey { group: gk, seq },
                &members,
                0,
                (),
                Duration::from_millis(50),
                |i| i.keys().map(|&r| (r, ())).collect(),
            )
            .unwrap_err();
        assert_eq!(err, CollectiveError::Timeout { op: "lonely", arrived: 1, expected: 2 });
    }

    #[test]
    fn failure_injection_aborts_promptly() {
        let rdv = Rendezvous::new();
        let members = vec![0usize, 1];
        let gk = group_key(&members);
        rdv.mark_failed(1);
        let seq = rdv.next_seq(gk, 0);
        let start = std::time::Instant::now();
        let err = rdv
            .exchange::<(), (), _>(
                "dead-peer",
                SlotKey { group: gk, seq },
                &members,
                0,
                (),
                Duration::from_secs(10),
                |i| i.keys().map(|&r| (r, ())).collect(),
            )
            .unwrap_err();
        assert_eq!(err, CollectiveError::PeerFailed { rank: 1 });
        assert!(start.elapsed() < Duration::from_secs(1), "should abort fast, not wait timeout");
    }

    #[test]
    fn exchange_aborts_promptly_when_peer_fails_mid_wait() {
        // The failure lands while rank 0 is already blocked inside the
        // slot condvar — the notify must not be lost to the check-then-wait
        // window, or the exchange sleeps out the full 10s timeout.
        let rdv = Rendezvous::new();
        let members = vec![0usize, 1];
        let gk = group_key(&members);
        let seq = rdv.next_seq(gk, 0);
        let killer = {
            let rdv = rdv.clone();
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(50));
                rdv.mark_failed(1);
            })
        };
        let start = std::time::Instant::now();
        let err = rdv
            .exchange::<(), (), _>(
                "dies-mid-wait",
                SlotKey { group: gk, seq },
                &members,
                0,
                (),
                Duration::from_secs(10),
                |i| i.keys().map(|&r| (r, ())).collect(),
            )
            .unwrap_err();
        killer.join().unwrap();
        assert_eq!(err, CollectiveError::PeerFailed { rank: 1 });
        assert!(start.elapsed() < Duration::from_secs(2), "mid-wait failure must abort promptly");
    }

    #[test]
    fn take_aborts_promptly_when_peer_fails_mid_wait() {
        let rdv = Rendezvous::new();
        let key = SlotKey { group: group_key(&[0, 1]), seq: 0 };
        let killer = {
            let rdv = rdv.clone();
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(50));
                rdv.mark_failed(1);
            })
        };
        let start = std::time::Instant::now();
        let err = rdv.take::<u32>("recv-dead-peer", key, 1, Duration::from_secs(10)).unwrap_err();
        killer.join().unwrap();
        assert_eq!(err, CollectiveError::PeerFailed { rank: 1 });
        assert!(start.elapsed() < Duration::from_secs(2), "mailbox wait must abort promptly");
    }

    #[test]
    fn non_member_rejected() {
        let rdv = Rendezvous::new();
        let members = vec![0usize, 1];
        let gk = group_key(&members);
        let err = rdv
            .exchange::<(), (), _>(
                "outsider",
                SlotKey { group: gk, seq: 0 },
                &members,
                7,
                (),
                Duration::from_millis(10),
                |i| i.keys().map(|&r| (r, ())).collect(),
            )
            .unwrap_err();
        assert_eq!(err, CollectiveError::NotAMember { rank: 7 });
    }

    #[test]
    fn group_key_is_order_independent_and_distinguishing() {
        assert_eq!(group_key(&[0, 1, 2]), group_key(&[2, 1, 0]));
        assert_ne!(group_key(&[0, 1, 2]), group_key(&[0, 1, 3]));
        assert_ne!(group_key(&[0, 1]), group_key(&[0, 1, 2]));
    }

    #[test]
    fn sequences_are_per_group_and_per_rank() {
        let rdv = Rendezvous::new();
        assert_eq!(rdv.next_seq(1, 0), 0);
        assert_eq!(rdv.next_seq(1, 0), 1);
        assert_eq!(rdv.next_seq(1, 1), 0);
        assert_eq!(rdv.next_seq(2, 0), 0);
    }
}
