//! Process groups and the [`Communicator`] handle each rank uses.

use crate::rendezvous::{group_key, Rendezvous, SlotKey};
use crate::stats::CommStats;
use crate::tree::TreeTopology;
use crate::{CollectiveError, Result, DEFAULT_TIMEOUT};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Collective backend, mirroring the paper's §5.2 evolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Direct rendezvous of all participants (NCCL-style coordinator-centric
    /// gather/scatter; connection count explodes with scale).
    Flat,
    /// Hierarchical gather/scatter/broadcast/barrier over a host-aware tree
    /// (gRPC-style; parent↔child connections only). Data-plane ops
    /// (`all_gather`, `all_to_all`, `all_reduce`) remain direct, as in the
    /// paper where the tree serves the planning/integrity control plane.
    Tree {
        /// GPUs per host (first-level star subtrees).
        gpus_per_host: usize,
        /// Inter-machine grouping factor.
        branching: usize,
    },
}

/// Reduction operator for [`Communicator::all_reduce_f32`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

/// Shared state for one "job": the rendezvous table, backend and stats.
pub struct CommWorld {
    world_size: usize,
    backend: Backend,
    rdv: Arc<Rendezvous>,
    stats: Arc<CommStats>,
    timeout: Duration,
}

impl CommWorld {
    /// Create a world of `world_size` ranks with the given backend.
    pub fn new(world_size: usize, backend: Backend) -> Arc<CommWorld> {
        Arc::new(CommWorld {
            world_size,
            backend,
            rdv: Rendezvous::new(),
            stats: Arc::new(CommStats::default()),
            timeout: DEFAULT_TIMEOUT,
        })
    }

    /// Create a world with a custom collective timeout (failure tests).
    pub fn with_timeout(world_size: usize, backend: Backend, timeout: Duration) -> Arc<CommWorld> {
        Arc::new(CommWorld {
            world_size,
            backend,
            rdv: Rendezvous::new(),
            stats: Arc::new(CommStats::default()),
            timeout,
        })
    }

    /// Total number of ranks.
    pub fn world_size(&self) -> usize {
        self.world_size
    }

    /// Accumulated communication statistics.
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Mark a rank failed: its peers' collectives abort with
    /// [`CollectiveError::PeerFailed`] instead of hanging (failure injection).
    pub fn inject_failure(&self, rank: usize) {
        self.rdv.mark_failed(rank);
    }

    /// Clear injected failures.
    pub fn clear_failures(&self) {
        self.rdv.clear_failures();
    }

    /// Obtain the communicator handle for `rank` over the full world.
    pub fn communicator(self: &Arc<Self>, rank: usize) -> Result<Communicator> {
        if rank >= self.world_size {
            return Err(CollectiveError::NotAMember { rank });
        }
        let members: Arc<Vec<usize>> = Arc::new((0..self.world_size).collect());
        Ok(Communicator::new(self.clone(), rank, members))
    }
}

/// A per-rank handle for issuing collectives on a group of ranks.
///
/// All members must issue the same sequence of collectives on a group
/// (standard SPMD contract); operations are matched positionally.
#[derive(Clone)]
pub struct Communicator {
    world: Arc<CommWorld>,
    rank: usize,
    members: Arc<Vec<usize>>,
    group: u64,
    /// Virtual tree over member *indices*, present for the Tree backend.
    tree: Option<Arc<TreeTopology>>,
}

impl Communicator {
    fn new(world: Arc<CommWorld>, rank: usize, members: Arc<Vec<usize>>) -> Communicator {
        let group = group_key(&members);
        let tree = match world.backend {
            Backend::Flat => None,
            Backend::Tree { gpus_per_host, branching } => {
                let n = members.len();
                Some(Arc::new(TreeTopology::build(n, gpus_per_host.min(n).max(1), branching)))
            }
        };
        Communicator { world, rank, members, group, tree }
    }

    /// This rank's global rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Members of this group, ascending global ranks.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This rank's index within the group member list.
    pub fn index(&self) -> usize {
        self.members.iter().position(|&r| r == self.rank).expect("member")
    }

    /// Short description of the collective backend, attached to barrier and
    /// all-to-all spans so traces show how the control plane was shaped.
    pub fn backend_info(&self) -> String {
        match &self.tree {
            Some(tree) => {
                format!("tree(height={}, max_fanin={})", tree.height(), tree.max_fanin())
            }
            None => "flat".to_string(),
        }
    }

    /// Mark THIS rank as failed in the world's rendezvous, making every
    /// in-flight and future collective involving it abort with
    /// `PeerFailed` on the surviving ranks. Fault-injection hooks call this
    /// when a simulated crash fires, so a "dead" worker's peers unblock
    /// deterministically instead of waiting out the timeout.
    pub fn mark_self_failed(&self) {
        self.world.inject_failure(self.rank);
    }

    /// Derive a communicator over a subset of the world's ranks. The calling
    /// rank must be in `ranks`. All members must derive the subgroup before
    /// using it (no registration step is needed — groups are identified by
    /// their member set).
    pub fn subgroup(&self, ranks: &[usize]) -> Result<Communicator> {
        if !ranks.contains(&self.rank) {
            return Err(CollectiveError::NotAMember { rank: self.rank });
        }
        let mut sorted = ranks.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        Ok(Communicator::new(self.world.clone(), self.rank, Arc::new(sorted)))
    }

    fn next_key(&self) -> SlotKey {
        SlotKey { group: self.group, seq: self.world.rdv.next_seq(self.group, self.rank) }
    }

    /// One rendezvous among an ad-hoc sub-set of this group's members (tree
    /// edges). The sub-set gets its own group key derived from this group's,
    /// so different trees over the same world never collide.
    fn edge_exchange<I, O, F>(
        &self,
        op: &'static str,
        members: &[usize],
        input: I,
        f: F,
    ) -> Result<O>
    where
        I: Send + 'static,
        O: Send + 'static,
        F: FnOnce(BTreeMap<usize, I>) -> BTreeMap<usize, O>,
    {
        let sub = group_key(members) ^ self.group.rotate_left(17);
        let key = SlotKey { group: sub, seq: self.world.rdv.next_seq(sub, self.rank) };
        self.world.rdv.exchange(op, key, members, self.rank, input, self.world.timeout, f)
    }

    // ------------------------------------------------------------------
    // Control-plane collectives (tree-accelerated when Backend::Tree)
    // ------------------------------------------------------------------

    /// Gather one value from every member at `root` (a global rank).
    /// Returns `Some(values)` (ordered by member index) at the root, `None`
    /// elsewhere.
    pub fn gather<T: Send + 'static>(&self, root: usize, value: T) -> Result<Option<Vec<T>>> {
        match (&self.tree, self.members.iter().position(|&r| r == root)) {
            (Some(tree), Some(root_idx)) if tree.root() == root_idx => {
                self.tree_gather(tree.clone(), value).map(|o| {
                    o.map(|mut v| {
                        v.sort_by_key(|(idx, _)| *idx);
                        v.into_iter().map(|(_, t)| t).collect()
                    })
                })
            }
            _ => self.flat_gather(root, value),
        }
    }

    fn flat_gather<T: Send + 'static>(&self, root: usize, value: T) -> Result<Option<Vec<T>>> {
        if !self.members.contains(&root) {
            return Err(CollectiveError::BadInput(format!("gather root {root} not a member")));
        }
        for &m in self.members.iter() {
            self.world.stats.record_connection(root, m);
        }
        self.world.stats.record_op(self.size(), 0);
        let key = self.next_key();
        self.world.rdv.exchange(
            "gather",
            key,
            &self.members,
            self.rank,
            value,
            self.world.timeout,
            move |inputs| {
                let ranks: Vec<usize> = inputs.keys().copied().collect();
                let all: Vec<T> = inputs.into_values().collect(); // BTreeMap: rank order
                let mut out: BTreeMap<usize, Option<Vec<T>>> =
                    ranks.into_iter().map(|r| (r, None)).collect();
                out.insert(root, Some(all));
                out
            },
        )
    }

    fn tree_gather<T: Send + 'static>(
        &self,
        tree: Arc<TreeTopology>,
        value: T,
    ) -> Result<Option<Vec<(usize, T)>>> {
        let my_idx = self.index();
        let mut acc: Vec<(usize, T)> = vec![(my_idx, value)];
        // Phase 1: collect from children (if any).
        let children = tree.children(my_idx);
        if !children.is_empty() {
            let mut members: Vec<usize> = children.iter().map(|&c| self.members[c]).collect();
            members.push(self.rank);
            members.sort_unstable();
            for &c in children {
                self.world.stats.record_connection(self.rank, self.members[c]);
            }
            self.world.stats.record_op(members.len(), 0);
            let me = self.rank;
            let collected: Vec<(usize, T)> = self.edge_exchange(
                "tree-gather-up",
                &members,
                acc,
                move |inputs: BTreeMap<usize, Vec<(usize, T)>>| {
                    // All deposits flow to the subtree root; children get
                    // empty vectors back (they only needed the send).
                    let ranks: Vec<usize> = inputs.keys().copied().collect();
                    let mut all = Vec::new();
                    for (_, v) in inputs {
                        all.extend(v);
                    }
                    let mut out: BTreeMap<usize, Vec<(usize, T)>> =
                        ranks.into_iter().map(|r| (r, Vec::new())).collect();
                    out.insert(me, all);
                    out
                },
            )?;
            acc = collected;
        }
        // Phase 2: forward to the parent. This is *the same exchange* as the
        // parent's phase 1 — the child's "send" is its participation in the
        // parent's collect group — so both sides supply an equivalent
        // combine (whoever arrives last runs it). A leaf has no phase 1, so
        // its first op on the edge group is this send; ordering stays
        // consistent across the tree.
        match tree.parent(my_idx) {
            None => Ok(Some(acc)),
            Some(p) => {
                let parent_rank = self.members[p];
                let mut members: Vec<usize> =
                    tree.children(p).iter().map(|&c| self.members[c]).collect();
                members.push(parent_rank);
                members.sort_unstable();
                let _: Vec<(usize, T)> = self.edge_exchange(
                    "tree-gather-up",
                    &members,
                    acc,
                    move |inputs: BTreeMap<usize, Vec<(usize, T)>>| {
                        let ranks: Vec<usize> = inputs.keys().copied().collect();
                        let mut all = Vec::new();
                        for (_, v) in inputs {
                            all.extend(v);
                        }
                        let mut out: BTreeMap<usize, Vec<(usize, T)>> =
                            ranks.into_iter().map(|r| (r, Vec::new())).collect();
                        out.insert(parent_rank, all);
                        out
                    },
                )?;
                Ok(None)
            }
        }
    }

    /// Scatter a vector of per-member values from `root`; each member
    /// receives its element (by member index). Non-root members pass `None`.
    pub fn scatter<T: Send + 'static>(&self, root: usize, values: Option<Vec<T>>) -> Result<T> {
        if self.rank == root {
            match &values {
                Some(v) if v.len() == self.size() => {}
                Some(v) => {
                    return Err(CollectiveError::BadInput(format!(
                        "scatter needs {} values, got {}",
                        self.size(),
                        v.len()
                    )))
                }
                None => return Err(CollectiveError::BadInput("root must provide values".into())),
            }
        }
        match (&self.tree, self.members.iter().position(|&r| r == root)) {
            (Some(tree), Some(root_idx)) if tree.root() == root_idx => {
                self.tree_scatter(tree.clone(), values)
            }
            _ => self.flat_scatter(root, values),
        }
    }

    fn flat_scatter<T: Send + 'static>(&self, root: usize, values: Option<Vec<T>>) -> Result<T> {
        for &m in self.members.iter() {
            self.world.stats.record_connection(root, m);
        }
        self.world.stats.record_op(self.size(), 0);
        let key = self.next_key();
        let members = self.members.clone();
        let members_for_f = self.members.clone();
        self.world.rdv.exchange(
            "scatter",
            key,
            &members,
            self.rank,
            values,
            self.world.timeout,
            move |mut inputs: BTreeMap<usize, Option<Vec<T>>>| {
                let vals = inputs.remove(&root).flatten().expect("validated: root provided values");
                members_for_f.iter().copied().zip(vals).collect()
            },
        )
    }

    fn tree_scatter<T: Send + 'static>(
        &self,
        tree: Arc<TreeTopology>,
        values: Option<Vec<T>>,
    ) -> Result<T> {
        let my_idx = self.index();
        // Phase 1: receive my subtree's bundle from the parent (the root
        // already holds the full set).
        let mut bundle: Vec<(usize, T)> = match tree.parent(my_idx) {
            None => {
                let vals = values.expect("validated: root provided values");
                vals.into_iter().enumerate().collect()
            }
            Some(p) => {
                let parent_rank = self.members[p];
                let mut members: Vec<usize> =
                    tree.children(p).iter().map(|&c| self.members[c]).collect();
                members.push(parent_rank);
                members.sort_unstable();
                let tree2 = tree.clone();
                let members_map: Vec<usize> = self.members.as_ref().clone();
                // The parent deposits its bundle; children deposit empty.
                // The combine routes each child its subtree subset.
                let my_deposit: Vec<(usize, T)> = Vec::new();
                self.edge_exchange(
                    "tree-scatter-down",
                    &members,
                    my_deposit,
                    move |mut inputs: BTreeMap<usize, Vec<(usize, T)>>| {
                        let parent_bundle = inputs.remove(&parent_rank).unwrap_or_default();
                        route_bundle(parent_bundle, &tree2, p, &members_map, parent_rank)
                    },
                )?
            }
        };
        // Phase 2: forward children their subsets. A node's phase 2 is the
        // same exchange as each child's phase 1 above (the child deposits an
        // empty vector, the parent deposits the bundle; the combine routes
        // subtree subsets to the children).
        if !tree.children(my_idx).is_empty() {
            let mut members: Vec<usize> =
                tree.children(my_idx).iter().map(|&c| self.members[c]).collect();
            members.push(self.rank);
            members.sort_unstable();
            for &c in tree.children(my_idx) {
                self.world.stats.record_connection(self.rank, self.members[c]);
            }
            self.world.stats.record_op(members.len(), 0);
            let tree2 = tree.clone();
            let members_map: Vec<usize> = self.members.as_ref().clone();
            let me = self.rank;
            let mine: Vec<(usize, T)> = self.edge_exchange(
                "tree-scatter-down",
                &members,
                bundle,
                move |mut inputs: BTreeMap<usize, Vec<(usize, T)>>| {
                    let parent_bundle = inputs.remove(&me).unwrap_or_default();
                    route_bundle(parent_bundle, &tree2, my_idx, &members_map, me)
                },
            )?;
            bundle = mine;
        }
        let my_idx_final = my_idx;
        bundle
            .into_iter()
            .find(|(idx, _)| *idx == my_idx_final)
            .map(|(_, t)| t)
            .ok_or_else(|| CollectiveError::BadInput("scatter routing lost my element".into()))
    }

    /// Broadcast a value from `root` to all members.
    pub fn broadcast<T: Send + Clone + 'static>(&self, root: usize, value: Option<T>) -> Result<T> {
        if self.rank == root && value.is_none() {
            return Err(CollectiveError::BadInput("broadcast root must provide a value".into()));
        }
        // Broadcast is scatter of clones; reuse scatter's tree routing by
        // expanding at the root. Payloads are small control-plane values.
        let values = if self.rank == root {
            let v = value.expect("checked above");
            Some(vec![v; self.size()])
        } else {
            None
        };
        self.scatter(root, values)
    }

    /// Barrier: returns only when every member has arrived. Tree backend
    /// runs gather-up + broadcast-down over the hierarchy (Appendix B's
    /// optimized integrity barrier); flat is a single rendezvous.
    pub fn barrier(&self) -> Result<()> {
        match &self.tree {
            Some(tree) => {
                let t = tree.clone();
                let up = self.tree_gather(t, ())?;
                let root_rank = self.members[tree.root()];
                let token = if up.is_some() { Some(()) } else { None };
                // Only the tree root holds Some; broadcast from it.
                self.broadcast_from_tree_root(root_rank, token)?;
                Ok(())
            }
            None => {
                self.world.stats.record_op(self.size(), 0);
                let key = self.next_key();
                self.world.rdv.exchange(
                    "barrier",
                    key,
                    &self.members,
                    self.rank,
                    (),
                    self.world.timeout,
                    |inputs| inputs.into_keys().map(|r| (r, ())).collect(),
                )
            }
        }
    }

    fn broadcast_from_tree_root(&self, root_rank: usize, token: Option<()>) -> Result<()> {
        let values = if self.rank == root_rank {
            debug_assert!(token.is_some());
            Some(vec![(); self.size()])
        } else {
            None
        };
        self.scatter(root_rank, values)
    }

    // ------------------------------------------------------------------
    // Point-to-point messaging (eager, non-blocking sends)
    // ------------------------------------------------------------------

    /// Directional channel key for messages `from → to` within this group.
    /// Order-dependent (unlike [`group_key`]) so the two directions of a
    /// pair have independent sequence streams, and seeded with the group key
    /// so distinct subgroups over the same ranks never collide.
    fn p2p_channel(&self, from: usize, to: usize) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.group.rotate_left(29);
        for r in [from, to] {
            for b in (r as u64).to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        h
    }

    /// Post `value` to member `to` without blocking. The k-th send to a
    /// given peer pairs with that peer's k-th [`Communicator::recv`] from
    /// this rank (positional matching, like collectives). Eager sends let
    /// the load pipeline forward intersections as soon as they are
    /// extracted, while peers are still fetching.
    pub fn send_async<T: Send + 'static>(&self, to: usize, value: T) -> Result<()> {
        if !self.members.contains(&to) {
            return Err(CollectiveError::BadInput(format!("send target {to} not a member")));
        }
        let chan = self.p2p_channel(self.rank, to);
        let seq = self.world.rdv.next_seq(chan, self.rank);
        self.world.stats.record_connection(self.rank, to);
        self.world.stats.record_op(2, 0);
        self.world.rdv.post(SlotKey { group: chan, seq }, value);
        Ok(())
    }

    /// Receive the next message sent by member `from` to this rank,
    /// blocking up to the world timeout. Errors promptly with `PeerFailed`
    /// if `from` is marked failed before its message arrives.
    pub fn recv<T: Send + 'static>(&self, from: usize) -> Result<T> {
        if !self.members.contains(&from) {
            return Err(CollectiveError::BadInput(format!("recv source {from} not a member")));
        }
        let chan = self.p2p_channel(from, self.rank);
        let seq = self.world.rdv.next_seq(chan, self.rank);
        self.world.rdv.take("recv", SlotKey { group: chan, seq }, from, self.world.timeout)
    }

    // ------------------------------------------------------------------
    // Data-plane collectives (always direct)
    // ------------------------------------------------------------------

    /// Every member receives every member's value, ordered by member index.
    pub fn all_gather<T: Send + Clone + 'static>(&self, value: T) -> Result<Vec<T>> {
        for (i, &a) in self.members.iter().enumerate() {
            for &b in self.members.iter().skip(i + 1) {
                self.world.stats.record_connection(a, b);
            }
        }
        self.world.stats.record_op(self.size(), 0);
        let key = self.next_key();
        self.world.rdv.exchange(
            "all_gather",
            key,
            &self.members,
            self.rank,
            value,
            self.world.timeout,
            |inputs: BTreeMap<usize, T>| {
                let all: Vec<T> = inputs.values().cloned().collect();
                inputs.into_keys().map(|r| (r, all.clone())).collect()
            },
        )
    }

    /// All-to-all: `sends[j]` goes to the j-th member; the result's i-th
    /// element came from the i-th member. This is the tensor-exchange
    /// primitive of redundancy-eliminated loading (§4.1).
    pub fn all_to_all<T: Send + 'static>(&self, sends: Vec<T>) -> Result<Vec<T>> {
        if sends.len() != self.size() {
            return Err(CollectiveError::BadInput(format!(
                "all_to_all needs {} sends, got {}",
                self.size(),
                sends.len()
            )));
        }
        for (i, &a) in self.members.iter().enumerate() {
            for &b in self.members.iter().skip(i + 1) {
                self.world.stats.record_connection(a, b);
            }
        }
        self.world.stats.record_op(self.size(), 0);
        let key = self.next_key();
        let members = self.members.clone();
        let member_list = self.members.as_ref().clone();
        self.world.rdv.exchange(
            "all_to_all",
            key,
            &members,
            self.rank,
            sends,
            self.world.timeout,
            move |inputs: BTreeMap<usize, Vec<T>>| {
                // inputs[src][dst_idx] -> outputs[dst][src_idx]
                let mut outs: BTreeMap<usize, Vec<T>> = BTreeMap::new();
                let mut columns: Vec<Vec<T>> = Vec::new();
                for (_, row) in inputs {
                    columns.push(row);
                }
                // columns[src_idx][dst_idx]; transpose.
                let n = columns.len();
                let mut transposed: Vec<Vec<T>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
                for row in columns.into_iter() {
                    for (dst_idx, item) in row.into_iter().enumerate() {
                        transposed[dst_idx].push(item);
                    }
                }
                for (dst_idx, items) in transposed.into_iter().enumerate() {
                    outs.insert(member_list[dst_idx], items);
                }
                outs
            },
        )
    }

    /// Elementwise all-reduce over `f32` vectors (used by the genuinely
    /// trained data-parallel example).
    pub fn all_reduce_f32(&self, data: Vec<f32>, op: ReduceOp) -> Result<Vec<f32>> {
        self.world.stats.record_op(self.size(), (data.len() * 4) as u64);
        let key = self.next_key();
        self.world.rdv.exchange(
            "all_reduce",
            key,
            &self.members,
            self.rank,
            data,
            self.world.timeout,
            move |inputs: BTreeMap<usize, Vec<f32>>| {
                let mut iter = inputs.values();
                let mut acc = iter.next().cloned().unwrap_or_default();
                for v in iter {
                    for (a, b) in acc.iter_mut().zip(v) {
                        *a = match op {
                            ReduceOp::Sum => *a + b,
                            ReduceOp::Max => a.max(*b),
                            ReduceOp::Min => a.min(*b),
                        };
                    }
                }
                inputs.into_keys().map(|r| (r, acc.clone())).collect()
            },
        )
    }
}

/// Route a scatter bundle held at tree node `holder_idx` to itself and its
/// children (each child gets its whole subtree's elements).
fn route_bundle<T>(
    bundle: Vec<(usize, T)>,
    tree: &TreeTopology,
    holder_idx: usize,
    members: &[usize],
    holder_rank: usize,
) -> BTreeMap<usize, Vec<(usize, T)>> {
    let mut out: BTreeMap<usize, Vec<(usize, T)>> = BTreeMap::new();
    out.insert(holder_rank, Vec::new());
    // Precompute child subtree membership.
    let child_subtrees: Vec<(usize, Vec<usize>)> =
        tree.children(holder_idx).iter().map(|&c| (c, tree.subtree_members(c))).collect();
    for (c, _) in &child_subtrees {
        out.insert(members[*c], Vec::new());
    }
    for (idx, item) in bundle {
        if idx == holder_idx {
            out.get_mut(&holder_rank).expect("inserted").push((idx, item));
            continue;
        }
        let mut routed = false;
        for (c, subtree) in &child_subtrees {
            if subtree.binary_search(&idx).is_ok() {
                out.get_mut(&members[*c]).expect("inserted").push((idx, item));
                routed = true;
                break;
            }
        }
        debug_assert!(routed, "element for idx {idx} had no route from {holder_idx}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_world<F, T>(n: usize, backend: Backend, f: F) -> Vec<T>
    where
        F: Fn(Communicator) -> T + Send + Sync + 'static,
        T: Send + 'static,
    {
        let world = CommWorld::new(n, backend);
        let f = Arc::new(f);
        let mut handles = Vec::new();
        for rank in 0..n {
            let world = world.clone();
            let f = f.clone();
            handles.push(thread::spawn(move || f(world.communicator(rank).unwrap())));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    fn backends() -> Vec<Backend> {
        vec![Backend::Flat, Backend::Tree { gpus_per_host: 4, branching: 2 }]
    }

    #[test]
    fn gather_orders_by_rank() {
        for backend in backends() {
            let results = run_world(8, backend, |c| c.gather(0, c.rank() * 2).unwrap());
            assert_eq!(results[0], Some(vec![0, 2, 4, 6, 8, 10, 12, 14]), "{backend:?}");
            for r in &results[1..] {
                assert_eq!(*r, None);
            }
        }
    }

    #[test]
    fn scatter_routes_by_rank() {
        for backend in backends() {
            let results = run_world(8, backend, |c| {
                let vals =
                    if c.rank() == 0 { Some((0..8).map(|i| i * 100).collect()) } else { None };
                c.scatter(0, vals).unwrap()
            });
            assert_eq!(results, (0..8).map(|i| i * 100).collect::<Vec<_>>(), "{backend:?}");
        }
    }

    #[test]
    fn broadcast_delivers_everywhere() {
        for backend in backends() {
            let results = run_world(6, backend, |c| {
                let v = if c.rank() == 0 { Some("payload".to_string()) } else { None };
                c.broadcast(0, v).unwrap()
            });
            assert!(results.iter().all(|r| r == "payload"), "{backend:?}");
        }
    }

    #[test]
    fn barrier_completes_for_all() {
        for backend in backends() {
            let results = run_world(8, backend, |c| c.barrier().is_ok());
            assert!(results.into_iter().all(|ok| ok), "{backend:?}");
        }
    }

    #[test]
    fn all_gather_everyone_sees_everything() {
        for backend in backends() {
            let results = run_world(5, backend, |c| c.all_gather(c.rank()).unwrap());
            for r in results {
                assert_eq!(r, vec![0, 1, 2, 3, 4], "{backend:?}");
            }
        }
    }

    #[test]
    fn all_to_all_transposes() {
        let results = run_world(4, Backend::Flat, |c| {
            let sends: Vec<String> = (0..4).map(|d| format!("{}->{}", c.rank(), d)).collect();
            c.all_to_all(sends).unwrap()
        });
        for (dst, got) in results.into_iter().enumerate() {
            let want: Vec<String> = (0..4).map(|s| format!("{s}->{dst}")).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn all_reduce_sums() {
        let results = run_world(3, Backend::Flat, |c| {
            c.all_reduce_f32(vec![c.rank() as f32, 1.0], ReduceOp::Sum).unwrap()
        });
        for r in results {
            assert_eq!(r, vec![3.0, 3.0]);
        }
    }

    #[test]
    fn subgroups_are_independent() {
        let results = run_world(6, Backend::Flat, |c| {
            // Two DP groups: evens and odds.
            let mine: Vec<usize> = if c.rank() % 2 == 0 { vec![0, 2, 4] } else { vec![1, 3, 5] };
            let sub = c.subgroup(&mine).unwrap();
            sub.all_gather(c.rank()).unwrap()
        });
        assert_eq!(results[0], vec![0, 2, 4]);
        assert_eq!(results[1], vec![1, 3, 5]);
        assert_eq!(results[4], vec![0, 2, 4]);
    }

    #[test]
    fn tree_backend_uses_fewer_connections_at_root() {
        // 16 ranks, 4 per host. Flat gather at root connects root to all 15;
        // tree connects only along edges.
        let flat = CommWorld::new(16, Backend::Flat);
        let tree = CommWorld::new(16, Backend::Tree { gpus_per_host: 4, branching: 2 });
        for (world, _name) in [(flat, "flat"), (tree, "tree")] {
            let mut handles = Vec::new();
            for rank in 0..16 {
                let w = world.clone();
                handles.push(thread::spawn(move || {
                    let c = w.communicator(rank).unwrap();
                    c.gather(0, rank).unwrap()
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        }
        // Re-run to capture stats per world.
        let flat = CommWorld::new(16, Backend::Flat);
        let tree = CommWorld::new(16, Backend::Tree { gpus_per_host: 4, branching: 2 });
        for world in [&flat, &tree] {
            let mut handles = Vec::new();
            for rank in 0..16 {
                let w = world.clone();
                handles.push(thread::spawn(move || {
                    let c = w.communicator(rank).unwrap();
                    c.gather(0, rank).unwrap()
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        }
        let flat_conns = flat.stats().snapshot().connections;
        let tree_conns = tree.stats().snapshot().connections;
        assert_eq!(flat_conns, 15);
        assert_eq!(tree_conns, 15); // a tree has n-1 edges
                                    // The structural difference is fan-in, visible on the topology.
        let t = TreeTopology::build(16, 4, 2);
        assert!(t.max_fanin() < 15);
    }

    #[test]
    fn failure_injection_propagates() {
        let world = CommWorld::new(3, Backend::Flat);
        world.inject_failure(2);
        let mut handles = Vec::new();
        for rank in 0..2 {
            let w = world.clone();
            handles.push(thread::spawn(move || {
                let c = w.communicator(rank).unwrap();
                c.barrier()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), Err(CollectiveError::PeerFailed { rank: 2 }));
        }
    }

    #[test]
    fn scatter_validates_input_length() {
        let world = CommWorld::new(2, Backend::Flat);
        let c0 = world.communicator(0).unwrap();
        let err = c0.scatter(0, Some(vec![1])).unwrap_err();
        assert!(matches!(err, CollectiveError::BadInput(_)));
    }

    #[test]
    fn p2p_sends_match_receives_in_order() {
        let results = run_world(2, Backend::Flat, |c| {
            if c.rank() == 0 {
                for i in 0..5u32 {
                    c.send_async(1, format!("msg-{i}")).unwrap();
                }
                Vec::new()
            } else {
                (0..5).map(|_| c.recv::<String>(0).unwrap()).collect()
            }
        });
        assert_eq!(results[1], (0..5).map(|i| format!("msg-{i}")).collect::<Vec<_>>());
    }

    #[test]
    fn p2p_directions_are_independent() {
        // Both ranks send before either receives: non-blocking sends plus
        // per-direction channels mean neither order can deadlock or
        // cross-deliver.
        let results = run_world(2, Backend::Flat, |c| {
            let peer = 1 - c.rank();
            c.send_async(peer, format!("from-{}", c.rank())).unwrap();
            c.recv::<String>(peer).unwrap()
        });
        assert_eq!(results, vec!["from-1".to_string(), "from-0".to_string()]);
    }

    #[test]
    fn p2p_recv_from_failed_peer_errors_promptly() {
        let world = CommWorld::new(2, Backend::Flat);
        world.inject_failure(0);
        let c = world.communicator(1).unwrap();
        let start = std::time::Instant::now();
        let err = c.recv::<u32>(0).unwrap_err();
        assert_eq!(err, CollectiveError::PeerFailed { rank: 0 });
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn p2p_recv_times_out_without_sender() {
        let world = CommWorld::with_timeout(2, Backend::Flat, Duration::from_millis(50));
        let c = world.communicator(1).unwrap();
        let err = c.recv::<u32>(0).unwrap_err();
        assert!(matches!(err, CollectiveError::Timeout { op: "recv", .. }));
    }

    #[test]
    fn p2p_validates_membership() {
        let world = CommWorld::new(2, Backend::Flat);
        let c = world.communicator(0).unwrap();
        assert!(matches!(c.send_async(9, 1u8), Err(CollectiveError::BadInput(_))));
        assert!(matches!(c.recv::<u8>(9), Err(CollectiveError::BadInput(_))));
    }

    #[test]
    fn large_tree_world_gather() {
        // 32 ranks, deeper tree; checks multi-level up-propagation.
        let results = run_world(32, Backend::Tree { gpus_per_host: 8, branching: 2 }, |c| {
            c.gather(0, c.rank() as u64).unwrap()
        });
        assert_eq!(results[0], Some((0..32u64).collect::<Vec<_>>()));
    }
}
