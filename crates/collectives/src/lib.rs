//! # bcp-collectives — in-process collective communication substrate
//!
//! ByteCheckpoint's workflow depends on collectives in three places: plan
//! gather/scatter at the coordinator (Fig. 8 steps 3–4), all-to-all tensor
//! exchange during redundancy-eliminated loading (§4.1), and the integrity
//! barrier (Appendix B). In production those run over NCCL or gRPC; here a
//! *process group* is a set of OS threads inside one process, and transport
//! is a shared rendezvous table — which preserves exactly the semantics the
//! checkpointing code observes (ordering, grouping, blocking behaviour).
//!
//! Two backends mirror the paper's §5.2 evolution:
//!
//! * [`Backend::Flat`] — every collective rendezvouses all participants
//!   directly at the root, like NCCL's coordinator-centric gather/scatter.
//!   The world tracks one "connection" per (root, peer) pair, modeling
//!   NCCL's lazily-built P2P channels whose setup cost and device-memory
//!   footprint blow up at 10k ranks.
//! * [`Backend::Tree`] — gather/scatter/barrier run hierarchically over a
//!   [`tree::TreeTopology`] built from the `ClusterLayout`: ranks on one
//!   host form first-level subtrees rooted at local rank 0, then hosts are
//!   grouped iteratively until a single root remains (the coordinator).
//!   Connections are only parent↔child, so the connection count stays
//!   `O(n)` with bounded fan-in.
//!
//! [`CommStats`] exposes connection/op counts so tests (and the simulator's
//! cost model) can verify the structural difference.

pub mod comm;
pub mod rendezvous;
pub mod stats;
pub mod tree;

pub use comm::{Backend, CommWorld, Communicator, ReduceOp};
pub use stats::CommStats;
pub use tree::TreeTopology;

use std::time::Duration;

/// Default timeout for any single collective operation. Generous enough for
/// slow CI machines, small enough that failure-injection tests finish fast.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

/// Errors produced by collective operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectiveError {
    /// Not all participants arrived within the timeout (peer died or hung).
    Timeout { op: &'static str, arrived: usize, expected: usize },
    /// The calling rank is not a member of the group.
    NotAMember { rank: usize },
    /// Input had the wrong shape (e.g. scatter vector length != group size).
    BadInput(String),
    /// A peer was explicitly marked failed (failure injection).
    PeerFailed { rank: usize },
}

impl std::fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectiveError::Timeout { op, arrived, expected } => {
                write!(f, "collective {op} timed out: {arrived}/{expected} participants arrived")
            }
            CollectiveError::NotAMember { rank } => write!(f, "rank {rank} is not a group member"),
            CollectiveError::BadInput(msg) => write!(f, "bad collective input: {msg}"),
            CollectiveError::PeerFailed { rank } => write!(f, "peer rank {rank} failed"),
        }
    }
}

impl std::error::Error for CollectiveError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, CollectiveError>;
