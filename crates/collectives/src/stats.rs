//! Communication statistics, used by tests and the scale experiments to
//! show the structural difference between flat and tree backends.

use parking_lot::Mutex;
use std::collections::HashSet;

/// Counters accumulated by a [`crate::CommWorld`] over its lifetime.
#[derive(Debug, Default)]
pub struct CommStats {
    inner: Mutex<Inner>,
}

#[derive(Debug, Default, Clone)]
struct Inner {
    /// Distinct point-to-point "connections" established, as (lo, hi) pairs.
    /// Flat backends establish root↔peer channels per collective root;
    /// tree backends only parent↔child edges.
    connections: HashSet<(usize, usize)>,
    /// Total collective operations executed (one per group op, not per rank).
    ops: u64,
    /// Total per-rank participations.
    participations: u64,
    /// Approximate payload bytes moved (where callers provide sizes).
    bytes: u64,
}

/// A point-in-time snapshot of [`CommStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommStatsSnapshot {
    /// Number of distinct point-to-point connections established.
    pub connections: usize,
    /// Collective operations executed.
    pub ops: u64,
    /// Per-rank participations in collectives.
    pub participations: u64,
    /// Approximate payload bytes moved.
    pub bytes: u64,
}

impl CommStats {
    /// Record a connection between two ranks (undirected, deduplicated).
    pub fn record_connection(&self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let key = (a.min(b), a.max(b));
        self.inner.lock().connections.insert(key);
    }

    /// Record one collective op with `participants` members moving
    /// approximately `bytes` of payload.
    pub fn record_op(&self, participants: usize, bytes: u64) {
        let mut g = self.inner.lock();
        g.ops += 1;
        g.participations += participants as u64;
        g.bytes += bytes;
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> CommStatsSnapshot {
        let g = self.inner.lock();
        CommStatsSnapshot {
            connections: g.connections.len(),
            ops: g.ops,
            participations: g.participations,
            bytes: g.bytes,
        }
    }

    /// Reset all counters (tests).
    pub fn reset(&self) {
        *self.inner.lock() = Inner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connections_dedupe_and_ignore_self() {
        let s = CommStats::default();
        s.record_connection(1, 2);
        s.record_connection(2, 1);
        s.record_connection(3, 3);
        assert_eq!(s.snapshot().connections, 1);
    }

    #[test]
    fn ops_accumulate() {
        let s = CommStats::default();
        s.record_op(4, 100);
        s.record_op(2, 50);
        let snap = s.snapshot();
        assert_eq!(snap.ops, 2);
        assert_eq!(snap.participations, 6);
        assert_eq!(snap.bytes, 150);
        s.reset();
        assert_eq!(s.snapshot().ops, 0);
    }
}
