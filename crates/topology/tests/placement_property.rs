//! Property tests for the hot-tier replica placement: across random meshes,
//! `gpus_per_host` and replica counts, (a) no replica ever shares a host
//! with its source, (b) replica hosts are pairwise distinct, and (c) every
//! shard stays recoverable in the hot tier after deleting any one host's
//! ranks — the surviving copies are the source's own (its host survived) or
//! at least one peer replica (its host died, replicas live elsewhere).

use bcp_topology::{DeviceMesh, ReplicaPlacement};
use proptest::prelude::*;

/// Random mesh shapes whose world size drives the placement, mirroring how
/// jobs derive their world from a parallelism mesh.
fn mesh_strategy() -> impl Strategy<Value = DeviceMesh> {
    (1usize..=4, 1usize..=4, 1usize..=4)
        .prop_map(|(pp, dp, tp)| DeviceMesh::of(&[("pp", pp), ("dp", dp), ("tp", tp)]).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn replicas_never_share_the_source_host(
        mesh in mesh_strategy(),
        gpus_per_host in 1usize..=8,
        replicas in 0usize..=3,
    ) {
        let world = mesh.world_size();
        let p = ReplicaPlacement::new(world, gpus_per_host, replicas).unwrap();
        let layout = *p.layout();
        for source in 0..world {
            let targets = p.targets(source);
            prop_assert_eq!(targets.len(), p.effective_replicas());
            let mut hosts = Vec::new();
            for t in targets {
                prop_assert!(t < world, "replica rank {} outside world {}", t, world);
                prop_assert_ne!(t, source);
                prop_assert_ne!(
                    layout.host_of(t), layout.host_of(source),
                    "replica {} shares host with source {}", t, source
                );
                hosts.push(layout.host_of(t));
            }
            hosts.sort_unstable();
            hosts.dedup();
            prop_assert_eq!(hosts.len(), p.effective_replicas(), "replica hosts must be distinct");
        }
    }

    #[test]
    fn every_shard_survives_any_single_host_loss(
        mesh in mesh_strategy(),
        gpus_per_host in 1usize..=8,
        replicas in 1usize..=3,
    ) {
        let world = mesh.world_size();
        let p = ReplicaPlacement::new(world, gpus_per_host, replicas).unwrap();
        let layout = *p.layout();
        // Single-host coverage is only promisable with a second host.
        prop_assume!(layout.num_hosts() > 1);
        for lost_host in 0..layout.num_hosts() {
            for source in 0..world {
                // Copies: the source's own hot entry plus every replica.
                let survives = layout.host_of(source) != lost_host
                    || p.targets(source).iter().any(|&t| layout.host_of(t) != lost_host);
                prop_assert!(
                    survives,
                    "shard of rank {} unrecoverable after losing host {}", source, lost_host
                );
            }
        }
    }

    #[test]
    fn placement_is_deterministic_and_inverse_consistent(
        mesh in mesh_strategy(),
        gpus_per_host in 1usize..=8,
        replicas in 0usize..=3,
    ) {
        let world = mesh.world_size();
        let a = ReplicaPlacement::new(world, gpus_per_host, replicas).unwrap();
        let b = ReplicaPlacement::new(world, gpus_per_host, replicas).unwrap();
        for source in 0..world {
            prop_assert_eq!(a.targets(source), b.targets(source));
        }
        for holder in 0..world {
            for s in a.sources_for(holder) {
                prop_assert!(a.targets(s).contains(&holder));
            }
        }
        for source in 0..world {
            for t in a.targets(source) {
                prop_assert!(a.sources_for(t).contains(&source));
            }
        }
    }
}
