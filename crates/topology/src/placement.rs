//! Failure-domain-aware replica placement for the hot checkpoint tier.
//!
//! Every rank keeps its own shard frames in an in-process hot tier and
//! replicates them onto `R` peer ranks. The failure domain is the host
//! (ranks grouped [`ClusterLayout::gpus_per_host`] at a time, matching the
//! tree-collective topology), so the placement rule is:
//!
//! * a replica never lands on the source's host, and
//! * the `R` replicas land on `R` *distinct* other hosts (rotating
//!   `host + 1 + j` for replica `j`), so losing any single host leaves at
//!   least one copy alive: the source's own (host survived) or a replica
//!   (source's host lost, replicas are elsewhere by construction).
//!
//! With fewer than `R + 1` hosts the placement degrades gracefully: the
//! effective replica count is capped at `num_hosts - 1` (zero on a single
//! host, where no placement can survive the only failure domain).

use crate::{ClusterLayout, Result};

/// The replica placement for one job: a deterministic pure function of
/// `(world_size, gpus_per_host, replicas)`, so every rank computes the same
/// targets without coordination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaPlacement {
    layout: ClusterLayout,
    replicas: usize,
}

impl ReplicaPlacement {
    /// Build a placement; `replicas` is the *requested* count, capped at
    /// `num_hosts - 1` (see [`ReplicaPlacement::effective_replicas`]).
    pub fn new(
        world_size: usize,
        gpus_per_host: usize,
        replicas: usize,
    ) -> Result<ReplicaPlacement> {
        Ok(ReplicaPlacement { layout: ClusterLayout::new(world_size, gpus_per_host)?, replicas })
    }

    /// The cluster layout the placement is computed over.
    pub fn layout(&self) -> &ClusterLayout {
        &self.layout
    }

    /// Replicas actually placed per shard: `min(requested, num_hosts - 1)` —
    /// there is no way to put more copies on distinct non-source hosts.
    pub fn effective_replicas(&self) -> usize {
        self.replicas.min(self.layout.num_hosts().saturating_sub(1))
    }

    /// Number of ranks on host `h` (the last host may be partially filled).
    fn host_size(&self, host: usize) -> usize {
        let base = host * self.layout.gpus_per_host;
        self.layout.gpus_per_host.min(self.layout.world_size.saturating_sub(base))
    }

    /// The ranks that hold a hot replica of `source`'s shard frames.
    /// Replica `j` lands on host `(host(source) + 1 + j) % num_hosts`, at
    /// the source's local index (mod that host's size) so replica traffic
    /// spreads across local ranks instead of piling onto each host's rank 0.
    pub fn targets(&self, source: usize) -> Vec<usize> {
        let hosts = self.layout.num_hosts();
        let h = self.layout.host_of(source);
        let l = self.layout.local_rank(source);
        (0..self.effective_replicas())
            .map(|j| {
                let host = (h + 1 + j) % hosts;
                host * self.layout.gpus_per_host + l % self.host_size(host)
            })
            .collect()
    }

    /// Inverse map: the sources whose replicas `holder` stores. Used by the
    /// post-commit exchange so each rank knows exactly which peers will
    /// `send_async` to it (p2p matching is positional).
    pub fn sources_for(&self, holder: usize) -> Vec<usize> {
        (0..self.layout.world_size)
            .filter(|&s| s != holder && self.targets(s).contains(&holder))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_avoid_source_host_and_distinct_hosts() {
        let p = ReplicaPlacement::new(16, 4, 2).unwrap();
        for s in 0..16 {
            let t = p.targets(s);
            assert_eq!(t.len(), 2);
            let sh = p.layout().host_of(s);
            let hosts: Vec<usize> = t.iter().map(|&r| p.layout().host_of(r)).collect();
            assert!(hosts.iter().all(|&h| h != sh), "source {s} -> {t:?}");
            assert_ne!(hosts[0], hosts[1], "replica hosts must differ: {t:?}");
        }
    }

    #[test]
    fn single_host_places_nothing() {
        let p = ReplicaPlacement::new(8, 8, 2).unwrap();
        assert_eq!(p.effective_replicas(), 0);
        assert!(p.targets(3).is_empty());
    }

    #[test]
    fn replica_count_caps_at_other_hosts() {
        let p = ReplicaPlacement::new(6, 2, 5).unwrap(); // 3 hosts
        assert_eq!(p.effective_replicas(), 2);
    }

    #[test]
    fn sources_for_is_the_inverse_of_targets() {
        let p = ReplicaPlacement::new(10, 3, 2).unwrap(); // partial last host
        for holder in 0..10 {
            for s in p.sources_for(holder) {
                assert!(p.targets(s).contains(&holder));
            }
        }
        for s in 0..10 {
            for t in p.targets(s) {
                assert!(p.sources_for(t).contains(&s), "source {s} target {t}");
            }
        }
    }

    #[test]
    fn partial_last_host_targets_stay_in_world() {
        let p = ReplicaPlacement::new(7, 4, 1).unwrap(); // hosts of 4 + 3
        for s in 0..7 {
            for t in p.targets(s) {
                assert!(t < 7, "source {s} placed replica on nonexistent rank {t}");
            }
        }
    }
}
