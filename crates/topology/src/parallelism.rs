//! 3D parallelism (TP × DP × PP) rank arithmetic and cluster layout.

use crate::{Result, TopologyError};
use serde::{Deserialize, Serialize};

/// A 3D parallelism configuration.
///
/// Rank order follows the Megatron-LM convention used throughout the paper's
/// examples: **TP varies fastest, then DP, then PP**, i.e.
/// `global_rank = pp * (dp_degree * tp_degree) + dp * tp_degree + tp`.
///
/// Degenerate degrees express the other frameworks: FSDP/DDP are
/// `tp = pp = 1` with `dp = world size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Parallelism {
    /// Tensor-parallel degree.
    pub tp: usize,
    /// Data-parallel degree.
    pub dp: usize,
    /// Pipeline-parallel degree.
    pub pp: usize,
}

/// A rank's coordinates in the TP × DP × PP grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RankCoord {
    /// Index within the tensor-parallel group.
    pub tp: usize,
    /// Index within the data-parallel group.
    pub dp: usize,
    /// Pipeline stage index.
    pub pp: usize,
}

impl Parallelism {
    /// Construct, validating non-zero degrees.
    pub fn new(tp: usize, dp: usize, pp: usize) -> Result<Parallelism> {
        if tp == 0 || dp == 0 || pp == 0 {
            return Err(TopologyError::ZeroDegree);
        }
        Ok(Parallelism { tp, dp, pp })
    }

    /// Pure data parallelism over `dp` ranks (FSDP/DDP/ZeRO configurations).
    pub fn data_parallel(dp: usize) -> Result<Parallelism> {
        Parallelism::new(1, dp, 1)
    }

    /// Total number of ranks.
    pub fn world_size(&self) -> usize {
        self.tp * self.dp * self.pp
    }

    /// Coordinates of a global rank.
    pub fn coords(&self, rank: usize) -> Result<RankCoord> {
        if rank >= self.world_size() {
            return Err(TopologyError::RankOutOfRange { rank, world: self.world_size() });
        }
        Ok(RankCoord {
            tp: rank % self.tp,
            dp: (rank / self.tp) % self.dp,
            pp: rank / (self.tp * self.dp),
        })
    }

    /// Global rank of a coordinate triple.
    pub fn rank_of(&self, c: RankCoord) -> Result<usize> {
        if c.tp >= self.tp || c.dp >= self.dp || c.pp >= self.pp {
            return Err(TopologyError::RankOutOfRange {
                rank: c.pp * self.tp * self.dp + c.dp * self.tp + c.tp,
                world: self.world_size(),
            });
        }
        Ok(c.pp * self.tp * self.dp + c.dp * self.tp + c.tp)
    }

    /// All global ranks in the same TP group as `rank` (fixed dp, pp).
    pub fn tp_group(&self, rank: usize) -> Result<Vec<usize>> {
        let c = self.coords(rank)?;
        (0..self.tp).map(|t| self.rank_of(RankCoord { tp: t, ..c })).collect()
    }

    /// All global ranks in the same DP group as `rank` (fixed tp, pp).
    ///
    /// Model states are *replicated* across this group; ZeRO shards optimizer
    /// (and, for ZeRO-3, parameter) state across it.
    pub fn dp_group(&self, rank: usize) -> Result<Vec<usize>> {
        let c = self.coords(rank)?;
        (0..self.dp).map(|d| self.rank_of(RankCoord { dp: d, ..c })).collect()
    }

    /// All global ranks in the same PP group as `rank` (fixed tp, dp).
    pub fn pp_group(&self, rank: usize) -> Result<Vec<usize>> {
        let c = self.coords(rank)?;
        (0..self.pp).map(|p| self.rank_of(RankCoord { pp: p, ..c })).collect()
    }

    /// Whether `rank` is the one that saves dataloader state files.
    ///
    /// Per the paper (Fig. 6): "the dataloader state file is generated only
    /// by training workers whose ranks for all parallelism degrees, except
    /// for DP degrees, are 0" — i.e. tp == 0 and pp == 0.
    pub fn holds_dataloader_state(&self, rank: usize) -> bool {
        match self.coords(rank) {
            Ok(c) => c.tp == 0 && c.pp == 0,
            Err(_) => false,
        }
    }

    /// Short human-readable description, e.g. `TP=4,DP=75,PP=8`.
    pub fn describe(&self) -> String {
        format!("TP={},DP={},PP={}", self.tp, self.dp, self.pp)
    }
}

impl std::fmt::Display for Parallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

/// Physical placement of ranks onto hosts, used by the tree-based collective
/// topology (local-rank-0 as first-level subtree roots, paper §5.2) and by
/// the cluster simulator's per-host NIC model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterLayout {
    /// GPUs (ranks) per host; 8 on the paper's A100/H800 machines.
    pub gpus_per_host: usize,
    /// Total number of ranks.
    pub world_size: usize,
}

impl ClusterLayout {
    /// Create a layout; the last host may be partially filled.
    pub fn new(world_size: usize, gpus_per_host: usize) -> Result<ClusterLayout> {
        if gpus_per_host == 0 {
            return Err(TopologyError::ZeroDegree);
        }
        Ok(ClusterLayout { gpus_per_host, world_size })
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.world_size.div_ceil(self.gpus_per_host)
    }

    /// Host index of a rank.
    pub fn host_of(&self, rank: usize) -> usize {
        rank / self.gpus_per_host
    }

    /// Local rank (index within the host) of a rank.
    pub fn local_rank(&self, rank: usize) -> usize {
        rank % self.gpus_per_host
    }

    /// All ranks on a host.
    pub fn ranks_on_host(&self, host: usize) -> Vec<usize> {
        let start = host * self.gpus_per_host;
        let end = ((host + 1) * self.gpus_per_host).min(self.world_size);
        (start..end).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rank_coord_round_trip_tp_fastest() {
        let p = Parallelism::new(2, 3, 4).unwrap();
        assert_eq!(p.world_size(), 24);
        // Rank 0 and 1 differ only in tp.
        assert_eq!(p.coords(0).unwrap(), RankCoord { tp: 0, dp: 0, pp: 0 });
        assert_eq!(p.coords(1).unwrap(), RankCoord { tp: 1, dp: 0, pp: 0 });
        assert_eq!(p.coords(2).unwrap(), RankCoord { tp: 0, dp: 1, pp: 0 });
        assert_eq!(p.coords(6).unwrap(), RankCoord { tp: 0, dp: 0, pp: 1 });
        for r in 0..p.world_size() {
            assert_eq!(p.rank_of(p.coords(r).unwrap()).unwrap(), r);
        }
    }

    #[test]
    fn groups_have_correct_shape() {
        let p = Parallelism::new(2, 3, 4).unwrap();
        let r = 13; // arbitrary
        let tp = p.tp_group(r).unwrap();
        let dp = p.dp_group(r).unwrap();
        let pp = p.pp_group(r).unwrap();
        assert_eq!(tp.len(), 2);
        assert_eq!(dp.len(), 3);
        assert_eq!(pp.len(), 4);
        assert!(tp.contains(&r) && dp.contains(&r) && pp.contains(&r));
        // TP group members are contiguous ranks.
        assert_eq!(tp, vec![12, 13]);
    }

    #[test]
    fn zero_degree_rejected() {
        assert_eq!(Parallelism::new(0, 1, 1), Err(TopologyError::ZeroDegree));
    }

    #[test]
    fn dataloader_holders_are_tp0_pp0() {
        let p = Parallelism::new(2, 4, 2).unwrap();
        let holders: Vec<usize> =
            (0..p.world_size()).filter(|&r| p.holds_dataloader_state(r)).collect();
        // One per DP index, all in pp stage 0, tp index 0.
        assert_eq!(holders.len(), 4);
        for &h in &holders {
            let c = p.coords(h).unwrap();
            assert_eq!((c.tp, c.pp), (0, 0));
        }
    }

    #[test]
    fn cluster_layout_basics() {
        let l = ClusterLayout::new(20, 8).unwrap();
        assert_eq!(l.num_hosts(), 3);
        assert_eq!(l.host_of(15), 1);
        assert_eq!(l.local_rank(15), 7);
        assert_eq!(l.ranks_on_host(2), vec![16, 17, 18, 19]);
    }

    proptest! {
        #[test]
        fn groups_partition_world(tp in 1usize..5, dp in 1usize..5, pp in 1usize..5) {
            let p = Parallelism::new(tp, dp, pp).unwrap();
            // Every rank appears in exactly one DP group when iterating over
            // (tp, pp) representative pairs.
            let mut seen = vec![false; p.world_size()];
            for t in 0..tp {
                for s in 0..pp {
                    let rep = p.rank_of(RankCoord { tp: t, dp: 0, pp: s }).unwrap();
                    for r in p.dp_group(rep).unwrap() {
                        prop_assert!(!seen[r], "rank {} in two DP groups", r);
                        seen[r] = true;
                    }
                }
            }
            prop_assert!(seen.into_iter().all(|s| s));
        }
    }
}
