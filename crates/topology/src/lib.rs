//! # bcp-topology — parallelism topology substrate
//!
//! Models how training workers (ranks) are organized and how tensors are
//! sharded across them, independent of any particular training framework:
//!
//! * [`Parallelism`] — classic Megatron-style 3D parallelism (TP × DP × PP)
//!   with the conventional rank order (TP fastest-varying, PP slowest).
//! * [`DeviceMesh`] — a generic named-axis mesh (used by the veScale-style
//!   planner, where each tensor carries per-axis placements).
//! * [`ShardSpec`] — how one logical tensor is split: replicated, sharded
//!   along grid dimensions, or a **flat 1-D range of the flattened tensor**
//!   (ZeRO-style), which is what produces the paper's *irregular tensors*.
//! * [`ClusterLayout`] — rank → (host, local rank) mapping, needed by the
//!   tree-based collective topology (paper §5.2) and the cluster simulator.
//! * [`ReplicaPlacement`] — failure-domain-aware placement of hot-tier
//!   checkpoint replicas: never on the source host, spread across distinct
//!   hosts so any single-host loss leaves a copy.

pub mod mesh;
pub mod parallelism;
pub mod placement;
pub mod shard;

pub use mesh::DeviceMesh;
pub use parallelism::{ClusterLayout, Parallelism, RankCoord};
pub use placement::ReplicaPlacement;
pub use shard::{DimShard, ShardSpec};

/// Errors produced by topology operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A rank is outside the world size.
    RankOutOfRange { rank: usize, world: usize },
    /// A mesh axis name does not exist.
    UnknownAxis(String),
    /// A shard spec refers to a dimension outside the tensor rank.
    DimOutOfRange { dim: usize, rank: usize },
    /// A shard index is outside the number of shards.
    ShardIndexOutOfRange { index: usize, num_shards: usize },
    /// Degrees must be non-zero.
    ZeroDegree,
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::RankOutOfRange { rank, world } => {
                write!(f, "rank {rank} out of range for world size {world}")
            }
            TopologyError::UnknownAxis(a) => write!(f, "unknown mesh axis {a:?}"),
            TopologyError::DimOutOfRange { dim, rank } => {
                write!(f, "sharding dim {dim} out of range for tensor rank {rank}")
            }
            TopologyError::ShardIndexOutOfRange { index, num_shards } => {
                write!(f, "shard index {index} out of range for {num_shards} shards")
            }
            TopologyError::ZeroDegree => write!(f, "parallelism degrees must be non-zero"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, TopologyError>;
