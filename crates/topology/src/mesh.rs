//! Generic named-axis device meshes (veScale / PyTorch DTensor style).
//!
//! A [`DeviceMesh`] arranges ranks into an n-D grid with named axes (e.g.
//! `["pp", "dp", "tp"]`). Frameworks that describe placements per axis
//! (veScale's DTensor) use the mesh to translate "sharded along axis `tp`,
//! tensor dim 0" into a concrete [`crate::ShardSpec`] per rank.

use crate::{Result, TopologyError};
use serde::{Deserialize, Serialize};

/// An n-dimensional arrangement of ranks with named axes. Row-major: the
/// last axis varies fastest (matching [`crate::Parallelism`] when axes are
/// `["pp", "dp", "tp"]`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceMesh {
    axes: Vec<(String, usize)>,
}

impl DeviceMesh {
    /// Build a mesh from `(axis name, size)` pairs.
    pub fn new(axes: Vec<(String, usize)>) -> Result<DeviceMesh> {
        if axes.iter().any(|(_, s)| *s == 0) {
            return Err(TopologyError::ZeroDegree);
        }
        Ok(DeviceMesh { axes })
    }

    /// Convenience constructor from string literals.
    pub fn of(axes: &[(&str, usize)]) -> Result<DeviceMesh> {
        DeviceMesh::new(axes.iter().map(|(n, s)| (n.to_string(), *s)).collect())
    }

    /// The standard 3D mesh matching [`crate::Parallelism`] rank order.
    pub fn from_parallelism(p: crate::Parallelism) -> DeviceMesh {
        DeviceMesh::of(&[("pp", p.pp), ("dp", p.dp), ("tp", p.tp)]).expect("non-zero degrees")
    }

    /// Total number of ranks.
    pub fn world_size(&self) -> usize {
        self.axes.iter().map(|(_, s)| s).product()
    }

    /// Axis names in order.
    pub fn axis_names(&self) -> Vec<&str> {
        self.axes.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Size of a named axis.
    pub fn axis_size(&self, name: &str) -> Result<usize> {
        self.axes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
            .ok_or_else(|| TopologyError::UnknownAxis(name.to_string()))
    }

    /// This rank's coordinate along a named axis.
    pub fn coord(&self, rank: usize, axis: &str) -> Result<usize> {
        if rank >= self.world_size() {
            return Err(TopologyError::RankOutOfRange { rank, world: self.world_size() });
        }
        let mut rem = rank;
        for (name, size) in self.axes.iter().rev() {
            let c = rem % size;
            if name == axis {
                return Ok(c);
            }
            rem /= size;
        }
        Err(TopologyError::UnknownAxis(axis.to_string()))
    }

    /// All ranks that share every coordinate with `rank` except along `axis`
    /// (i.e. the communication group along that axis), in axis order.
    pub fn group_along(&self, rank: usize, axis: &str) -> Result<Vec<usize>> {
        let size = self.axis_size(axis)?;
        if rank >= self.world_size() {
            return Err(TopologyError::RankOutOfRange { rank, world: self.world_size() });
        }
        // Stride of the axis in the row-major rank numbering.
        let mut stride = 1usize;
        for (name, s) in self.axes.iter().rev() {
            if name == axis {
                break;
            }
            stride *= s;
        }
        let my_coord = self.coord(rank, axis)?;
        let base = rank - my_coord * stride;
        Ok((0..size).map(|i| base + i * stride).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Parallelism;

    #[test]
    fn mesh_matches_parallelism_rank_order() {
        let p = Parallelism::new(2, 3, 4).unwrap();
        let m = DeviceMesh::from_parallelism(p);
        assert_eq!(m.world_size(), p.world_size());
        for r in 0..p.world_size() {
            let c = p.coords(r).unwrap();
            assert_eq!(m.coord(r, "tp").unwrap(), c.tp);
            assert_eq!(m.coord(r, "dp").unwrap(), c.dp);
            assert_eq!(m.coord(r, "pp").unwrap(), c.pp);
        }
    }

    #[test]
    fn group_along_matches_parallelism_groups() {
        let p = Parallelism::new(2, 3, 4).unwrap();
        let m = DeviceMesh::from_parallelism(p);
        for r in [0, 7, 13, 23] {
            assert_eq!(m.group_along(r, "tp").unwrap(), p.tp_group(r).unwrap());
            assert_eq!(m.group_along(r, "dp").unwrap(), p.dp_group(r).unwrap());
            assert_eq!(m.group_along(r, "pp").unwrap(), p.pp_group(r).unwrap());
        }
    }

    #[test]
    fn unknown_axis_and_bad_rank() {
        let m = DeviceMesh::of(&[("dp", 4)]).unwrap();
        assert!(matches!(m.coord(0, "tp"), Err(TopologyError::UnknownAxis(_))));
        assert!(matches!(m.coord(4, "dp"), Err(TopologyError::RankOutOfRange { .. })));
        assert!(m.group_along(5, "dp").is_err());
    }

    #[test]
    fn zero_axis_rejected() {
        assert!(DeviceMesh::of(&[("dp", 0)]).is_err());
    }
}
