//! Sharding specifications: how one logical tensor is split across ranks.
//!
//! A [`ShardSpec`] is the framework-facing description the planner consumes
//! (the paper's "sharding specification such as Megatron ShardedTensor or
//! FSDP DTensor"). It resolves to either a *regular* hyper-rectangular box
//! or an *irregular* flat range of the flattened tensor.

use crate::{Result, TopologyError};
use bcp_tensor::layout::even_split;
use serde::{Deserialize, Serialize};

/// Sharding of one tensor dimension across a group of ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DimShard {
    /// Tensor dimension being split.
    pub dim: usize,
    /// Number of shards along that dimension (the parallel-group size).
    pub num_shards: usize,
    /// This rank's index within the group.
    pub index: usize,
}

/// How a rank's local shard relates to the global tensor.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShardSpec {
    /// The rank holds a full replica.
    Replicated,
    /// The tensor is split along one or more dimensions (regular shards).
    /// Multiple entries compose, e.g. TP column sharding + veScale mesh
    /// sharding. Entries must reference distinct dims.
    Grid(Vec<DimShard>),
    /// ZeRO-style: the tensor was flattened row-major and this rank holds
    /// the 1-D element range `[offset, offset + length)`. The range
    /// generally does **not** correspond to any n-D box — this is the
    /// paper's *irregular tensor* case (Fig. 7).
    Flat {
        /// Start element in the flattened global tensor.
        offset: usize,
        /// Number of elements held.
        length: usize,
    },
    /// Megatron-LM distributed-optimizer style: the tensor's TP shard (the
    /// sub-box `box_offsets/box_lengths` of the global tensor) was flattened
    /// row-major, and this rank holds the 1-D range `[offset, offset +
    /// length)` *of that flattening*. "TP-sharded tensors of one layer in
    /// the distributed optimizer are first flattened and then ... sharded
    /// according to the designated DP degree" (paper Appendix A).
    FlatOfBox {
        /// The sub-box's offsets inside the global tensor.
        box_offsets: Vec<usize>,
        /// The sub-box's lengths.
        box_lengths: Vec<usize>,
        /// Start element in the row-major flattening of the sub-box.
        offset: usize,
        /// Number of elements held.
        length: usize,
    },
}

impl ShardSpec {
    /// Convenience: shard evenly along one dimension.
    pub fn dim(dim: usize, num_shards: usize, index: usize) -> ShardSpec {
        ShardSpec::Grid(vec![DimShard { dim, num_shards, index }])
    }

    /// Convenience: ZeRO flat shard `index` of `num_shards` over a tensor
    /// with `global_numel` elements, using PyTorch-chunk even splitting.
    pub fn flat_even(global_numel: usize, num_shards: usize, index: usize) -> ShardSpec {
        let (offset, length) = even_split(global_numel, num_shards, index);
        ShardSpec::Flat { offset, length }
    }

    /// Resolve a grid/replicated spec to the n-D box `(offsets, lengths)` of
    /// the local shard inside `global_shape`.
    ///
    /// Errors on [`ShardSpec::Flat`] (use [`ShardSpec::flat_range`]) and on
    /// out-of-range dims/indices.
    pub fn grid_box(&self, global_shape: &[usize]) -> Result<(Vec<usize>, Vec<usize>)> {
        match self {
            ShardSpec::Replicated => Ok((vec![0; global_shape.len()], global_shape.to_vec())),
            ShardSpec::Grid(dims) => {
                let mut offsets = vec![0; global_shape.len()];
                let mut lengths = global_shape.to_vec();
                for d in dims {
                    if d.dim >= global_shape.len() {
                        return Err(TopologyError::DimOutOfRange {
                            dim: d.dim,
                            rank: global_shape.len(),
                        });
                    }
                    if d.index >= d.num_shards {
                        return Err(TopologyError::ShardIndexOutOfRange {
                            index: d.index,
                            num_shards: d.num_shards,
                        });
                    }
                    let (off, len) = even_split(global_shape[d.dim], d.num_shards, d.index);
                    offsets[d.dim] = off;
                    lengths[d.dim] = len;
                }
                Ok((offsets, lengths))
            }
            ShardSpec::Flat { .. } | ShardSpec::FlatOfBox { .. } => {
                Err(TopologyError::DimOutOfRange { dim: usize::MAX, rank: global_shape.len() })
            }
        }
    }

    /// Resolve to the flat element range `[start, start+len)` of the
    /// flattened global tensor, when the spec is [`ShardSpec::Flat`].
    pub fn flat_range(&self) -> Option<(usize, usize)> {
        match self {
            ShardSpec::Flat { offset, length } => Some((*offset, *length)),
            _ => None,
        }
    }

    /// Whether this spec produces an irregular shard for `global_shape`:
    /// a flat range that cannot be expressed as a single n-D box.
    ///
    /// A flat range over a row-major tensor is regular iff it covers whole
    /// "rows" of some suffix of the shape (including the degenerate cases of
    /// a range within a single innermost row, or the full tensor).
    pub fn is_irregular(&self, global_shape: &[usize]) -> bool {
        match self {
            ShardSpec::Flat { offset, length } => {
                !flat_range_is_box(global_shape, *offset, *length)
            }
            ShardSpec::FlatOfBox { box_lengths, offset, length, .. } => {
                // Regular iff the range is a box of the sub-box AND that box,
                // placed back into global coordinates, stays one box — which
                // it does, since the sub-box is axis-aligned.
                !flat_range_is_box(box_lengths, *offset, *length)
            }
            _ => false,
        }
    }

    /// Number of elements in the local shard for `global_shape`.
    pub fn local_numel(&self, global_shape: &[usize]) -> Result<usize> {
        match self {
            ShardSpec::Flat { length, .. } | ShardSpec::FlatOfBox { length, .. } => Ok(*length),
            _ => {
                let (_, lengths) = self.grid_box(global_shape)?;
                Ok(bcp_tensor::layout::numel(&lengths))
            }
        }
    }

    /// Visit every element of the local shard in local storage order,
    /// yielding `(local_flat_index, global_flat_index)`.
    ///
    /// This is the bridge the deterministic trainer uses to make parameter
    /// evolution parallelism-independent: updates are addressed by *global*
    /// index regardless of which rank stores the element.
    pub fn for_each_global_index(
        &self,
        global_shape: &[usize],
        mut f: impl FnMut(usize, usize),
    ) -> Result<()> {
        let strides = bcp_tensor::layout::contiguous_strides(global_shape);
        match self {
            ShardSpec::Flat { offset, length } => {
                for i in 0..*length {
                    f(i, offset + i);
                }
                Ok(())
            }
            ShardSpec::FlatOfBox { box_offsets, box_lengths, offset, length } => {
                // Walk the sub-box row-major, skipping to `offset`.
                let box_n = bcp_tensor::layout::numel(box_lengths);
                if offset + length > box_n {
                    return Err(TopologyError::ShardIndexOutOfRange {
                        index: offset + length,
                        num_shards: box_n,
                    });
                }
                for i in 0..*length {
                    let in_box = bcp_tensor::layout::unravel_index(offset + i, box_lengths);
                    let mut g = 0usize;
                    for (d, &c) in in_box.iter().enumerate() {
                        g += (box_offsets[d] + c) * strides[d];
                    }
                    f(i, g);
                }
                Ok(())
            }
            _ => {
                let (off, len) = self.grid_box(global_shape)?;
                let n = bcp_tensor::layout::numel(&len);
                for i in 0..n {
                    let in_box = bcp_tensor::layout::unravel_index(i, &len);
                    let mut g = 0usize;
                    for (d, &c) in in_box.iter().enumerate() {
                        g += (off[d] + c) * strides[d];
                    }
                    f(i, g);
                }
                Ok(())
            }
        }
    }
}

/// Does the flat range `[offset, offset+length)` of a row-major tensor with
/// `shape` form a single n-D box?
///
/// True in exactly three cases: empty range; range within one innermost row;
/// or the range is aligned to whole blocks of some suffix of the shape (it
/// starts and ends on multiples of `prod(shape[k..])` for some `k`, spanning
/// consecutive rows of the `k-1` level — and at that level, the covered row
/// indices must stay within a single "super-row").
pub fn flat_range_is_box(shape: &[usize], offset: usize, length: usize) -> bool {
    if length == 0 {
        return true;
    }
    let n: usize = shape.iter().product();
    if offset + length > n {
        return false; // out of bounds is certainly not a box
    }
    // Try every suffix block size: block = prod(shape[k..]); the range is a
    // box iff for some k it is aligned to `block`, spans consecutive blocks,
    // and those block indices lie within one row of dimension k-1.
    let mut block = 1usize;
    for k in (0..=shape.len()).rev() {
        // block == prod(shape[k..]) at this point.
        if offset.is_multiple_of(block) && length.is_multiple_of(block) {
            let start_blk = offset / block;
            let num_blk = length / block;
            // Blocks along dimension k-1 (or the whole tensor when k == 0).
            let dim_size = if k == 0 { 1 } else { shape[k - 1] };
            let within = (start_blk % dim_size.max(1)) + num_blk <= dim_size.max(1);
            if within {
                return true;
            }
        }
        if k > 0 {
            block = block.saturating_mul(shape[k - 1]);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicated_box_is_full_tensor() {
        let spec = ShardSpec::Replicated;
        assert_eq!(spec.grid_box(&[3, 4]).unwrap(), (vec![0, 0], vec![3, 4]));
        assert_eq!(spec.local_numel(&[3, 4]).unwrap(), 12);
    }

    #[test]
    fn dim_shard_boxes() {
        // Column-parallel split of a (6, 4) weight across 3 ranks along dim 0.
        for i in 0..3 {
            let spec = ShardSpec::dim(0, 3, i);
            let (off, len) = spec.grid_box(&[6, 4]).unwrap();
            assert_eq!(off, vec![2 * i, 0]);
            assert_eq!(len, vec![2, 4]);
        }
    }

    #[test]
    fn multi_dim_grid() {
        let spec = ShardSpec::Grid(vec![
            DimShard { dim: 0, num_shards: 2, index: 1 },
            DimShard { dim: 1, num_shards: 2, index: 0 },
        ]);
        let (off, len) = spec.grid_box(&[4, 6]).unwrap();
        assert_eq!(off, vec![2, 0]);
        assert_eq!(len, vec![2, 3]);
    }

    #[test]
    fn grid_errors() {
        assert!(ShardSpec::dim(2, 2, 0).grid_box(&[4, 4]).is_err());
        assert!(ShardSpec::dim(0, 2, 5).grid_box(&[4, 4]).is_err());
    }

    #[test]
    fn paper_fig7_example_tensor_b_is_irregular() {
        // Tensor B: shape (3, 2), evenly split into two flat shards of 3.
        let shard0 = ShardSpec::flat_even(6, 2, 0);
        let shard1 = ShardSpec::flat_even(6, 2, 1);
        assert_eq!(shard0.flat_range(), Some((0, 3)));
        assert_eq!(shard1.flat_range(), Some((3, 3)));
        assert!(shard0.is_irregular(&[3, 2]));
        assert!(shard1.is_irregular(&[3, 2]));
    }

    #[test]
    fn regular_flat_ranges_detected() {
        // Whole tensor.
        assert!(!ShardSpec::Flat { offset: 0, length: 12 }.is_irregular(&[3, 4]));
        // Whole rows.
        assert!(!ShardSpec::Flat { offset: 4, length: 8 }.is_irregular(&[3, 4]));
        // Within one row.
        assert!(!ShardSpec::Flat { offset: 5, length: 2 }.is_irregular(&[3, 4]));
        // Crosses a row boundary without covering whole rows -> irregular.
        assert!(ShardSpec::Flat { offset: 2, length: 4 }.is_irregular(&[3, 4]));
        // 1-D tensors are never irregular.
        assert!(!ShardSpec::Flat { offset: 3, length: 5 }.is_irregular(&[16]));
    }

    #[test]
    fn flat_range_box_3d() {
        let shape = [2, 3, 4];
        // One full (3,4) plane: box.
        assert!(flat_range_is_box(&shape, 12, 12));
        // Two rows of one plane: box.
        assert!(flat_range_is_box(&shape, 4, 8));
        // Two rows straddling planes: NOT a box (different planes).
        assert!(!flat_range_is_box(&shape, 8, 8));
        // Out of bounds.
        assert!(!flat_range_is_box(&shape, 20, 8));
    }

    #[test]
    fn flat_of_box_irregularity_and_indexing() {
        // Global (4, 6); TP shard = rows 2..4 (box offsets (2,0), lengths (2,6)).
        // Distributed optimizer splits the 12-element flattening across 2 DP
        // ranks: ranges [0,6) and [6,12) — each one whole row: regular.
        let reg = ShardSpec::FlatOfBox {
            box_offsets: vec![2, 0],
            box_lengths: vec![2, 6],
            offset: 0,
            length: 6,
        };
        assert!(!reg.is_irregular(&[4, 6]));
        // Ranges [0,8) cross a row boundary: irregular.
        let irr = ShardSpec::FlatOfBox {
            box_offsets: vec![2, 0],
            box_lengths: vec![2, 6],
            offset: 0,
            length: 8,
        };
        assert!(irr.is_irregular(&[4, 6]));
        // Global indices: box starts at global flat 12 (row 2 of 6-wide).
        let mut pairs = Vec::new();
        irr.for_each_global_index(&[4, 6], |l, g| pairs.push((l, g))).unwrap();
        assert_eq!(pairs[0], (0, 12));
        assert_eq!(pairs[5], (5, 17));
        assert_eq!(pairs[6], (6, 18));
        assert_eq!(pairs.len(), 8);
    }

    #[test]
    fn global_index_iteration_for_grid() {
        // (4, 4) split along dim 0 into 2; shard 1 covers rows 2..4.
        let spec = ShardSpec::dim(0, 2, 1);
        let mut globals = Vec::new();
        spec.for_each_global_index(&[4, 4], |_, g| globals.push(g)).unwrap();
        assert_eq!(globals, (8..16).collect::<Vec<_>>());
    }

    #[test]
    fn global_index_iteration_for_flat() {
        let spec = ShardSpec::Flat { offset: 5, length: 3 };
        let mut pairs = Vec::new();
        spec.for_each_global_index(&[4, 4], |l, g| pairs.push((l, g))).unwrap();
        assert_eq!(pairs, vec![(0, 5), (1, 6), (2, 7)]);
    }

    #[test]
    fn flat_even_covers_tensor() {
        let total = 37;
        let mut covered = 0;
        for i in 0..5 {
            let s = ShardSpec::flat_even(total, 5, i);
            let (off, len) = s.flat_range().unwrap();
            assert_eq!(off, covered);
            covered += len;
        }
        assert_eq!(covered, total);
    }
}
