//! Property-style fuzzing of the two untrusted parse surfaces a corrupt or
//! hostile checkpoint reaches first: the frame decoder
//! (`format::decode_frames`) and the global-metadata decoder
//! (`GlobalMetadata::from_bytes`). The property under test is totality:
//! arbitrary mutation — bit flips, truncation, random bytes — must yield
//! either a successful parse or a typed error (`BcpError::Corrupt` /
//! `Err(String)`), never a panic, abort, or attacker-sized allocation.

use bcp_core::format::{decode_frames, encode_frame};
use bcp_core::metadata::{GlobalMetadata, ShardMeta};
use bcp_core::BcpError;
use bcp_tensor::DType;
use bytes::Bytes;
use proptest::prelude::*;

/// A valid multi-frame storage file to mutate.
fn valid_frame_file() -> Vec<u8> {
    let mut file = Vec::new();
    for i in 0..3usize {
        let shard = ShardMeta {
            fqn: format!("layers.{i}.weight"),
            offsets: vec![i * 2, 0],
            lengths: vec![2, 4],
        };
        let payload: Vec<u8> = (0..32u8).map(|b| b.wrapping_add(i as u8)).collect();
        let (frame, _) = encode_frame(&shard, DType::F32, &payload);
        file.extend_from_slice(&frame);
    }
    file
}

/// A valid global-metadata JSON document to mutate.
fn valid_metadata_bytes() -> Vec<u8> {
    let mut meta = GlobalMetadata::new("ddp", 42, "TP=1,DP=2,PP=1", 2);
    meta.extra_files.insert(0, "extra_0.bin".to_string());
    meta.to_bytes()
}

/// Accept only the documented outcomes of a frame decode.
fn assert_total(
    result: bcp_core::Result<Vec<bcp_core::format::Frame>>,
) -> Result<(), TestCaseError> {
    match result {
        Ok(_) => Ok(()),
        Err(BcpError::Corrupt(_)) => Ok(()),
        Err(e) => Err(TestCaseError::fail(format!("non-Corrupt error from decode: {e}"))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Fully random input: the decoder is a total function.
    #[test]
    fn decode_frames_is_total_on_random_bytes(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
        assert_total(decode_frames(&Bytes::from(data)))?;
    }

    /// Single-bit flips of a valid file: either still decodable (a flip in
    /// header bytes not covered by the payload CRC can parse differently)
    /// or a typed Corrupt error — never a panic.
    #[test]
    fn decode_frames_survives_bit_flips(byte in any::<prop::sample::Index>(), bit in 0u8..8) {
        let mut file = valid_frame_file();
        let at = byte.index(file.len());
        file[at] ^= 1 << bit;
        assert_total(decode_frames(&Bytes::from(file)))?;
    }

    /// Truncation at every possible length: a prefix of a valid file is
    /// either empty-valid or Corrupt.
    #[test]
    fn decode_frames_survives_truncation(len in any::<prop::sample::Index>()) {
        let mut file = valid_frame_file();
        let keep = len.index(file.len() + 1);
        file.truncate(keep);
        assert_total(decode_frames(&Bytes::from(file)))?;
    }

    /// Forged length fields must not drive allocation: overwrite each
    /// 8-byte window with a huge little-endian value and decode. The
    /// decoder bounds-checks against the real file size before sizing
    /// anything, so this must stay a cheap typed error.
    #[test]
    fn decode_frames_rejects_forged_lengths_without_allocating(
        window in any::<prop::sample::Index>(),
        forged in (u32::MAX as u64)..u64::MAX,
    ) {
        let mut file = valid_frame_file();
        let at = window.index(file.len().saturating_sub(8));
        file[at..at + 8].copy_from_slice(&forged.to_le_bytes());
        assert_total(decode_frames(&Bytes::from(file)))?;
    }

    /// Fully random metadata input: parse never panics.
    #[test]
    fn metadata_decode_is_total_on_random_bytes(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let _ = GlobalMetadata::from_bytes(&data);
    }

    /// Mutated valid metadata: parse and validation both stay total.
    #[test]
    fn metadata_decode_survives_mutation(
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
        len in any::<prop::sample::Index>(),
    ) {
        let mut doc = valid_metadata_bytes();
        let at = byte.index(doc.len());
        doc[at] ^= 1 << bit;
        doc.truncate(len.index(doc.len() + 1));
        if let Ok(meta) = GlobalMetadata::from_bytes(&doc) {
            let _ = meta.validate();
        }
    }
}
