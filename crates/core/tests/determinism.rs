//! Save-output determinism: the execution engine must produce *bit-identical*
//! checkpoint files no matter how its I/O pool interleaves uploads — for any
//! `io_threads`, and for asynchronous vs synchronous save — because every
//! worker writes through offsets fixed by `SavePlan::byte_metas()`, never by
//! arrival order. Restored state must likewise be identical across load
//! configurations (overlapped vs sequential, any thread count).

use bcp_collectives::{Backend, CommWorld};
use bcp_core::api::{Checkpointer, LoadRequest, SaveRequest};
use bcp_core::engine::load::LoadConfig;
use bcp_core::engine::save::SaveConfig;
use bcp_core::registry::BackendRegistry;
use bcp_core::workflow::WorkflowOptions;
use bcp_model::states::{build_train_state, Framework};
use bcp_model::{zoo, TrainState, TrainerConfig};
use bcp_storage::uri::Scheme;
use bcp_storage::{DynBackend, MemoryBackend};
use bcp_topology::Parallelism;
use std::collections::BTreeMap;
use std::sync::Arc;

const WORLD: usize = 2;
const STEPS: u64 = 2;

fn memory_registry() -> (Arc<BackendRegistry>, DynBackend) {
    let mem: DynBackend = Arc::new(MemoryBackend::new());
    let mut reg = BackendRegistry::new();
    reg.register(Scheme::Memory, mem.clone());
    (Arc::new(reg), mem)
}

fn trained_state(rank: usize) -> TrainState {
    let par = Parallelism::data_parallel(WORLD).unwrap();
    let mut s =
        build_train_state(&zoo::tiny_gpt(), Framework::Fsdp { zero3: true }, par, rank, true);
    TrainerConfig::default().run(&mut s, 0, STEPS);
    s
}

/// Run one full save (all ranks) with the given workflow options; return
/// every stored object under the prefix, keyed by path.
fn save_with(
    registry: Arc<BackendRegistry>,
    mem: DynBackend,
    options: WorkflowOptions,
    prefix: &str,
) -> BTreeMap<String, Vec<u8>> {
    let par = Parallelism::data_parallel(WORLD).unwrap();
    let comm_world = CommWorld::new(WORLD, Backend::Flat);
    let location = format!("mem://d/{prefix}");
    let mut handles = Vec::new();
    for rank in 0..WORLD {
        let comm_world = comm_world.clone();
        let registry = registry.clone();
        let options = options.clone();
        let location = location.clone();
        handles.push(std::thread::spawn(move || {
            let comm = comm_world.communicator(rank).unwrap();
            let ckpt = Checkpointer::builder(comm)
                .framework(Framework::Fsdp { zero3: true })
                .parallelism(par)
                .registry(registry)
                .workflow(options)
                // Telemetry artifacts embed wall-clock timings; exclude them
                // so the byte comparison covers pure checkpoint data.
                .telemetry(false)
                .build()
                .unwrap();
            let state = trained_state(rank);
            ckpt.save(&SaveRequest::new(location, &state, STEPS)).unwrap().wait().unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut files = BTreeMap::new();
    for path in mem.list(prefix).unwrap() {
        files.insert(path.clone(), mem.read(&path).unwrap().to_vec());
    }
    assert!(!files.is_empty(), "save under {prefix} produced no files");
    files
}

/// Load the checkpoint at `prefix` on all ranks with the given options and
/// return each rank's restored state.
fn load_with(
    registry: Arc<BackendRegistry>,
    options: WorkflowOptions,
    prefix: &str,
) -> Vec<TrainState> {
    let par = Parallelism::data_parallel(WORLD).unwrap();
    let comm_world = CommWorld::new(WORLD, Backend::Flat);
    let location = format!("mem://d/{prefix}");
    let mut handles = Vec::new();
    for rank in 0..WORLD {
        let comm_world = comm_world.clone();
        let registry = registry.clone();
        let options = options.clone();
        let location = location.clone();
        handles.push(std::thread::spawn(move || {
            let comm = comm_world.communicator(rank).unwrap();
            let ckpt = Checkpointer::builder(comm)
                .framework(Framework::Fsdp { zero3: true })
                .parallelism(par)
                .registry(registry)
                .workflow(options)
                .telemetry(false)
                .build()
                .unwrap();
            let mut state = build_train_state(
                &zoo::tiny_gpt(),
                Framework::Fsdp { zero3: true },
                par,
                rank,
                true,
            );
            ckpt.load(&mut LoadRequest::new(location, &mut state)).unwrap();
            state
        }));
    }
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

fn assert_file_maps_identical(
    reference: &BTreeMap<String, Vec<u8>>,
    got: &BTreeMap<String, Vec<u8>>,
    variant: &str,
) {
    // Same listing modulo the per-variant prefix...
    let strip = |m: &BTreeMap<String, Vec<u8>>| -> Vec<String> {
        m.keys()
            .map(|k| k.split_once('/').map_or(k.as_str(), |(_, rest)| rest).to_string())
            .collect()
    };
    assert_eq!(strip(reference), strip(got), "{variant}: file listings differ");
    // ... and byte-identical contents file by file.
    for ((ref_path, ref_bytes), (got_path, got_bytes)) in reference.iter().zip(got.iter()) {
        assert_eq!(ref_bytes, got_bytes, "{variant}: {got_path} differs from reference {ref_path}");
    }
}

#[test]
fn saved_bytes_are_identical_for_any_io_threads_and_sync_mode() {
    let (registry, mem) = memory_registry();
    let mut variants = Vec::new();
    for io_threads in [1usize, 4, 16] {
        for async_upload in [false, true] {
            let options = WorkflowOptions {
                save: SaveConfig { io_threads, async_upload, ..Default::default() },
                ..Default::default()
            };
            let tag = format!("t{io_threads}_{}", if async_upload { "async" } else { "sync" });
            let files = save_with(registry.clone(), mem.clone(), options, &tag);
            variants.push((tag, files));
        }
    }
    let (ref_tag, reference) = &variants[0];
    for (tag, files) in &variants[1..] {
        assert_file_maps_identical(reference, files, &format!("{tag} vs {ref_tag}"));
    }
}

#[test]
fn restored_state_is_identical_across_load_configurations() {
    let (registry, mem) = memory_registry();
    let saved = save_with(registry.clone(), mem, WorkflowOptions::default(), "src");
    assert!(saved.len() > 2);

    let mut restored = Vec::new();
    for (overlap, io_threads) in [(false, 1usize), (false, 8), (true, 1), (true, 8)] {
        let options = WorkflowOptions {
            load: LoadConfig { overlap, io_threads, ..Default::default() },
            ..Default::default()
        };
        restored.push((
            format!("overlap={overlap},threads={io_threads}"),
            load_with(registry.clone(), options, "src"),
        ));
    }
    let (_, reference) = &restored[0];
    // All configurations agree with each other AND with the ground truth.
    for rank in 0..WORLD {
        let want = trained_state(rank);
        for (tag, states) in &restored {
            let got = &states[rank];
            for (dict_name, got_d, want_d) in
                [("model", &got.model, &want.model), ("optimizer", &got.optimizer, &want.optimizer)]
            {
                for (fqn, w) in &want_d.entries {
                    let g = got_d.get(fqn).unwrap_or_else(|| panic!("{tag} rank {rank}: {fqn}"));
                    assert!(
                        g.tensor.bitwise_eq(&w.tensor),
                        "{tag} rank {rank} {dict_name} {fqn}: bytes differ from reference"
                    );
                }
            }
            let ref_state = &reference[rank];
            for (fqn, r) in &ref_state.model.entries {
                assert!(
                    got.model.get(fqn).unwrap().tensor.bitwise_eq(&r.tensor),
                    "{tag} rank {rank}: {fqn} differs across load configurations"
                );
            }
        }
    }
}
