//! End-to-end multi-rank workflow tests: real threads as training workers,
//! real collectives, real bytes through real storage backends, and bitwise
//! verification of every resharding path (the paper's §6.3 check, made
//! element-exact by the deterministic trainer).

use bcp_collectives::{Backend, CommWorld};
use bcp_core::api::{Checkpointer, LoadRequest, SaveRequest};
use bcp_core::planner::balance::DedupStrategy;
use bcp_core::registry::BackendRegistry;
use bcp_core::workflow::WorkflowOptions;
use bcp_model::states::{build_train_state, Framework};
use bcp_model::{zoo, TrainState, TrainerConfig};
use bcp_storage::uri::Scheme;
use bcp_storage::{DynBackend, MemoryBackend};
use bcp_topology::Parallelism;
use std::sync::Arc;

/// Spawn one thread per rank, each constructing a Checkpointer over a shared
/// world + registry, and run `f`.
fn run_ranks<F, T>(
    world: usize,
    registry: Arc<BackendRegistry>,
    fw: Framework,
    par: Parallelism,
    f: F,
) -> Vec<T>
where
    F: Fn(usize, Checkpointer) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    assert_eq!(world, par.world_size());
    let comm_world = CommWorld::new(world, Backend::Tree { gpus_per_host: 4, branching: 2 });
    let f = Arc::new(f);
    let mut handles = Vec::new();
    for rank in 0..world {
        let comm_world = comm_world.clone();
        let registry = registry.clone();
        let f = f.clone();
        handles.push(std::thread::spawn(move || {
            let comm = comm_world.communicator(rank).unwrap();
            let ckpt = Checkpointer::builder(comm)
                .framework(fw)
                .parallelism(par)
                .registry(registry)
                .build()
                .unwrap();
            f(rank, ckpt)
        }));
    }
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

fn memory_registry() -> (Arc<BackendRegistry>, DynBackend) {
    let mem: DynBackend = Arc::new(MemoryBackend::new());
    let mut reg = BackendRegistry::new();
    for scheme in [Scheme::Memory, Scheme::File, Scheme::Hdfs, Scheme::Nas] {
        reg.register(scheme, mem.clone());
    }
    (Arc::new(reg), mem)
}

/// Reference state at (fw, par, rank) trained to `steps` — the pure-function
/// ground truth any correctly-resharded load must match bitwise.
fn reference_state(
    arch: &bcp_model::TransformerConfig,
    fw: Framework,
    par: Parallelism,
    rank: usize,
    steps: u64,
) -> TrainState {
    let mut s = build_train_state(arch, fw, par, rank, true);
    TrainerConfig::default().run(&mut s, 0, steps);
    s
}

fn assert_states_bitwise_eq(got: &TrainState, want: &TrainState, rank: usize) {
    for (dict_name, got_d, want_d) in
        [("model", &got.model, &want.model), ("optimizer", &got.optimizer, &want.optimizer)]
    {
        assert_eq!(
            got_d.entries.len(),
            want_d.entries.len(),
            "rank {rank} {dict_name}: entry count"
        );
        for (fqn, w) in &want_d.entries {
            let g = got_d.get(fqn).unwrap_or_else(|| panic!("rank {rank}: missing {fqn}"));
            assert!(
                g.tensor.bitwise_eq(&w.tensor),
                "rank {rank} {dict_name} {fqn}: loaded bytes differ from reference"
            );
        }
    }
}

/// Save under (fw_a, par_a), load under (fw_b, par_b), verify bitwise.
fn save_then_reshard(
    arch: bcp_model::TransformerConfig,
    fw_a: Framework,
    par_a: Parallelism,
    fw_b: Framework,
    par_b: Parallelism,
    steps: u64,
) {
    let (registry, _mem) = memory_registry();
    let arch2 = arch.clone();
    // Phase 1: train + save under configuration A.
    run_ranks(par_a.world_size(), registry.clone(), fw_a, par_a, move |rank, ckpt| {
        let state = reference_state(&arch2, fw_a, par_a, rank, steps);
        let ticket =
            ckpt.save(&SaveRequest::new("mem://test/ckpt/step_final", &state, steps)).unwrap();
        ticket.wait().unwrap();
    });
    // Phase 2: load under configuration B; verify against the reference.
    let arch2 = arch.clone();
    run_ranks(par_b.world_size(), registry, fw_b, par_b, move |rank, ckpt| {
        // Target skeleton: right sharding, wrong (freshly initialized) data.
        let mut state = build_train_state(&arch2, fw_b, par_b, rank, true);
        ckpt.load(&mut LoadRequest::new("mem://test/ckpt/step_final", &mut state)).unwrap();
        let want = reference_state(&arch2, fw_b, par_b, rank, steps);
        assert_states_bitwise_eq(&state, &want, rank);
    });
}

#[test]
fn ddp_round_trip_same_parallelism() {
    let par = Parallelism::data_parallel(2).unwrap();
    save_then_reshard(zoo::tiny_gpt(), Framework::Ddp, par, Framework::Ddp, par, 3);
}

#[test]
fn fsdp_zero3_reshard_shrink() {
    // Training resumption with fewer GPUs (Fig. 2 scenario 1): DP 4 -> 2.
    save_then_reshard(
        zoo::tiny_gpt(),
        Framework::Fsdp { zero3: true },
        Parallelism::data_parallel(4).unwrap(),
        Framework::Fsdp { zero3: true },
        Parallelism::data_parallel(2).unwrap(),
        3,
    );
}

#[test]
fn fsdp_zero2_reshard_grow() {
    save_then_reshard(
        zoo::tiny_dit(),
        Framework::Fsdp { zero3: false },
        Parallelism::data_parallel(2).unwrap(),
        Framework::Fsdp { zero3: false },
        Parallelism::data_parallel(3).unwrap(),
        2,
    );
}

#[test]
fn megatron_pp_reshard() {
    // Fig. 13a: PP 2 -> 4 at fixed TP.
    let fw = Framework::Megatron { distributed_optimizer: true };
    save_then_reshard(
        zoo::tiny_gpt_8l(),
        fw,
        Parallelism::new(1, 2, 2).unwrap(),
        fw,
        Parallelism::new(1, 1, 4).unwrap(),
        2,
    );
}

#[test]
fn megatron_tp_reshard() {
    // Fig. 13b: TP 1 -> 2.
    let fw = Framework::Megatron { distributed_optimizer: true };
    save_then_reshard(
        zoo::tiny_gpt(),
        fw,
        Parallelism::new(1, 2, 2).unwrap(),
        fw,
        Parallelism::new(2, 1, 2).unwrap(),
        2,
    );
}

#[test]
fn megatron_hybrid_reshard() {
    // Fig. 16b: hybrid change of TP, DP and PP at once.
    let fw = Framework::Megatron { distributed_optimizer: true };
    save_then_reshard(
        zoo::tiny_gpt_8l(),
        fw,
        Parallelism::new(1, 2, 4).unwrap(),
        fw,
        Parallelism::new(2, 2, 2).unwrap(),
        2,
    );
}

#[test]
fn cross_stage_megatron_to_fsdp() {
    // Cross-stage transition (Fig. 2 scenario 2): pre-training under 3D
    // Megatron, fine-tuning under FSDP on fewer GPUs — and the unified
    // representation also crosses frameworks.
    save_then_reshard(
        zoo::tiny_gpt(),
        Framework::Megatron { distributed_optimizer: true },
        Parallelism::new(2, 2, 2).unwrap(),
        Framework::Fsdp { zero3: true },
        Parallelism::data_parallel(2).unwrap(),
        2,
    );
}

#[test]
fn evaluation_single_rank_consolidation() {
    // Evaluation (Fig. 2 scenario 3): load everything into one worker.
    save_then_reshard(
        zoo::tiny_gpt(),
        Framework::Megatron { distributed_optimizer: true },
        Parallelism::new(2, 2, 1).unwrap(),
        Framework::Ddp,
        Parallelism::data_parallel(1).unwrap(),
        2,
    );
}

#[test]
fn bf16_weights_reshard_bitwise() {
    save_then_reshard(
        zoo::tiny_gpt_bf16(),
        Framework::Fsdp { zero3: true },
        Parallelism::data_parallel(3).unwrap(),
        Framework::Fsdp { zero3: true },
        Parallelism::data_parallel(2).unwrap(),
        2,
    );
}

#[test]
fn vescale_to_megatron() {
    save_then_reshard(
        zoo::tiny_gpt(),
        Framework::VeScale,
        Parallelism::new(2, 2, 1).unwrap(),
        Framework::Megatron { distributed_optimizer: false },
        Parallelism::new(2, 1, 2).unwrap(),
        2,
    );
}

#[test]
fn uncommitted_checkpoint_is_rejected() {
    let (registry, mem) = memory_registry();
    let arch = zoo::tiny_gpt();
    let par = Parallelism::data_parallel(1).unwrap();
    run_ranks(1, registry.clone(), Framework::Ddp, par, move |rank, ckpt| {
        let state = reference_state(&zoo::tiny_gpt(), Framework::Ddp, par, rank, 1);
        ckpt.save(&SaveRequest::new("mem://t/torn", &state, 1)).unwrap().wait().unwrap();
    });
    // Tear the checkpoint: remove the COMPLETE marker.
    mem.delete("torn/COMPLETE").unwrap();
    let results = run_ranks(1, registry, Framework::Ddp, par, move |_rank, ckpt| {
        let mut state = build_train_state(&arch, Framework::Ddp, par, 0, true);
        ckpt.load(&mut LoadRequest::new("mem://t/torn", &mut state)).err().map(|e| e.to_string())
    });
    let err = results[0].clone().expect("load must fail");
    assert!(err.contains("COMPLETE"), "{err}");
}

#[test]
fn plan_cache_eliminates_replanning() {
    let (registry, _mem) = memory_registry();
    let par = Parallelism::data_parallel(2).unwrap();
    let fw = Framework::Ddp;
    let stats = run_ranks(2, registry, fw, par, move |rank, ckpt| {
        let mut state = build_train_state(&zoo::tiny_gpt(), fw, par, rank, true);
        let trainer = TrainerConfig::default();
        for step in 0..3u64 {
            trainer.step(&mut state, step);
            ckpt.save(&SaveRequest::new(format!("mem://t/cache/step_{step}"), &state, step))
                .unwrap()
                .wait()
                .unwrap();
        }
        ckpt.plan_cache_stats()
    });
    for (hits, misses) in stats {
        assert_eq!(misses, 1, "planning must be a one-time cost");
        assert_eq!(hits, 2);
    }
}

#[test]
fn extra_state_round_trips() {
    let (registry, _mem) = memory_registry();
    let par = Parallelism::data_parallel(2).unwrap();
    let extras = run_ranks(2, registry.clone(), Framework::Ddp, par, move |rank, ckpt| {
        let state = reference_state(&zoo::tiny_gpt(), Framework::Ddp, par, rank, 1);
        let mut extra = bcp_model::ExtraState::new(77 + rank as u64);
        extra.step = 1;
        extra.next_random();
        ckpt.save(&SaveRequest::new("mem://t/extra", &state, 1).with_extra(&extra))
            .unwrap()
            .wait()
            .unwrap();
        extra
    });
    let arch = zoo::tiny_gpt();
    let loaded = run_ranks(2, registry, Framework::Ddp, par, move |rank, ckpt| {
        let mut state = build_train_state(&arch, Framework::Ddp, par, rank, true);
        let out = ckpt.load(&mut LoadRequest::new("mem://t/extra", &mut state)).unwrap();
        out.report.extra.expect("extra state present")
    });
    for (rank, (want, got)) in extras.iter().zip(&loaded).enumerate() {
        assert_eq!(want, got, "rank {rank} extra state");
    }
}

#[test]
fn first_replica_baseline_also_round_trips() {
    // The baseline dedup strategy must stay *correct* (it is only slower).
    let (registry, _mem) = memory_registry();
    let par = Parallelism::data_parallel(3).unwrap();
    let comm_world = CommWorld::new(3, Backend::Flat);
    let mut handles = Vec::new();
    for rank in 0..3 {
        let comm_world = comm_world.clone();
        let registry = registry.clone();
        handles.push(std::thread::spawn(move || {
            let comm = comm_world.communicator(rank).unwrap();
            let ckpt = Checkpointer::builder(comm)
                .framework(Framework::Ddp)
                .parallelism(par)
                .registry(registry)
                .workflow(WorkflowOptions {
                    dedup: DedupStrategy::FirstReplica,
                    ..Default::default()
                })
                .build()
                .unwrap();
            let state = reference_state(&zoo::tiny_gpt(), Framework::Ddp, par, rank, 2);
            ckpt.save(&SaveRequest::new("mem://t/baseline", &state, 2)).unwrap().wait().unwrap();
            let mut fresh = build_train_state(&zoo::tiny_gpt(), Framework::Ddp, par, rank, true);
            ckpt.load(&mut LoadRequest::new("mem://t/baseline", &mut fresh)).unwrap();
            let want = reference_state(&zoo::tiny_gpt(), Framework::Ddp, par, rank, 2);
            assert_states_bitwise_eq(&fresh, &want, rank);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}
