//! Recovery-subsystem integration tests: the crash-stage fault matrix
//! (Appendix B's claim that no single-worker failure can commit a torn
//! checkpoint), auto-resume via `load_latest`, and graceful degradation to
//! a fallback storage tier with full observability.

use bcp_collectives::{Backend, CommWorld};
use bcp_core::api::{Checkpointer, LoadRequest, SaveRequest};
use bcp_core::fault::{FaultPlan, LOAD_STAGES};
use bcp_core::integrity::{record_failovers, FailureLog, FAILOVER_STAGE};
use bcp_core::registry::BackendRegistry;
use bcp_model::states::{build_train_state, Framework};
use bcp_model::{zoo, TrainState, TrainerConfig};
use bcp_monitor::MetricsHub;
use bcp_storage::flaky::{FailureMode, FlakyBackend};
use bcp_storage::uri::Scheme;
use bcp_storage::{DynBackend, FallbackBackend, MemoryBackend};
use bcp_topology::Parallelism;
use std::sync::Arc;
use std::time::Duration;

const WORLD: usize = 2;

fn fw() -> Framework {
    Framework::Ddp
}

fn par() -> Parallelism {
    Parallelism::data_parallel(WORLD).unwrap()
}

fn memory_registry() -> (Arc<BackendRegistry>, DynBackend) {
    let mem: DynBackend = Arc::new(MemoryBackend::new());
    let mut reg = BackendRegistry::new();
    reg.register(Scheme::Memory, mem.clone());
    (Arc::new(reg), mem)
}

/// Ground-truth state at `rank` after `steps` deterministic training steps.
fn reference_state(rank: usize, steps: u64) -> TrainState {
    let mut s = build_train_state(&zoo::tiny_gpt(), fw(), par(), rank, true);
    TrainerConfig::default().run(&mut s, 0, steps);
    s
}

fn assert_states_bitwise_eq(got: &TrainState, want: &TrainState, rank: usize, ctx: &str) {
    for (dict_name, got_d, want_d) in
        [("model", &got.model, &want.model), ("optimizer", &got.optimizer, &want.optimizer)]
    {
        for (fqn, w) in &want_d.entries {
            let g = got_d.get(fqn).unwrap_or_else(|| panic!("{ctx}: rank {rank} missing {fqn}"));
            assert!(
                g.tensor.bitwise_eq(&w.tensor),
                "{ctx}: rank {rank} {dict_name} {fqn} differs from reference"
            );
        }
    }
}

/// Spawn one thread per rank over a fresh world (bounded collective timeout
/// so an injected crash can never hang the suite) and run `f`.
fn run_world<F, T>(registry: Arc<BackendRegistry>, faults: FaultPlan, f: F) -> Vec<T>
where
    F: Fn(usize, Checkpointer) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    let world = CommWorld::with_timeout(WORLD, Backend::Flat, Duration::from_secs(10));
    let f = Arc::new(f);
    let handles: Vec<_> = (0..WORLD)
        .map(|rank| {
            let world = world.clone();
            let registry = registry.clone();
            let faults = faults.clone();
            let f = f.clone();
            std::thread::spawn(move || {
                let ckpt = Checkpointer::builder(world.communicator(rank).unwrap())
                    .framework(fw())
                    .parallelism(par())
                    .registry(registry)
                    .fault_plan(faults)
                    .build()
                    .unwrap();
                f(rank, ckpt)
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// Appendix B, made exhaustive: kill one rank at every named stage of the
/// save pipeline. Whatever the stage, (a) every rank observes the failure,
/// (b) the torn step never gains a `COMPLETE` marker, and (c) a restarted
/// job auto-resumes from the last committed step with the torn one GC'd.
#[test]
fn crash_at_every_save_stage_never_commits_and_auto_resumes() {
    // Coordinator-only stages kill rank 0; the rest kill a non-coordinator
    // so both "victim" and "survivor" code paths are exercised.
    let cases: &[(&str, usize)] = &[
        ("save/plan", 1),
        ("save/capture", 1),
        ("save/serialize", 1),
        ("save/upload", 1),
        ("save/barrier", 1),
        ("save/metadata", 0),
        ("save/commit", 0),
    ];
    for &(stage, victim) in cases {
        let (registry, mem) = memory_registry();

        // Step 1 commits cleanly — the checkpoint recovery must land on.
        run_world(registry.clone(), FaultPlan::new(), move |rank, ckpt| {
            let state = reference_state(rank, 1);
            ckpt.save(&SaveRequest::new("mem://jobs/train/step_1", &state, 1))
                .unwrap()
                .wait()
                .unwrap();
        });

        // Step 2: the victim dies mid-save. Every rank must error — the
        // victim with the injected crash, its peers via `PeerFailed`
        // collectives — and the step must never commit.
        let errs =
            run_world(registry.clone(), FaultPlan::new().kill(victim, stage), move |rank, ckpt| {
                let state = reference_state(rank, 2);
                ckpt.save(&SaveRequest::new("mem://jobs/train/step_2", &state, 2))
                    .and_then(|t| t.wait())
                    .err()
                    .map(|e| e.to_string())
            });
        for (rank, err) in errs.iter().enumerate() {
            assert!(err.is_some(), "{stage}: rank {rank} must observe the failure");
        }
        assert!(
            errs[victim].as_ref().unwrap().contains("injected crash"),
            "{stage}: victim saw {:?}",
            errs[victim]
        );
        assert!(
            !mem.exists("train/step_2/COMPLETE").unwrap(),
            "{stage}: torn step must never commit"
        );

        // Restart: a fresh world resumes from step 1; the torn step_2
        // debris is garbage-collected along the way.
        run_world(registry, FaultPlan::new(), move |rank, ckpt| {
            let mut state = build_train_state(&zoo::tiny_gpt(), fw(), par(), rank, true);
            let out = ckpt
                .load_latest("mem://jobs/train", &mut state, None)
                .unwrap()
                .unwrap_or_else(|| panic!("{stage}: a committed step must survive"));
            assert_eq!(out.resumed_step(), 1, "{stage}: must resume from the committed step");
            let want = reference_state(rank, 1);
            assert_states_bitwise_eq(&state, &want, rank, stage);
        });
        assert!(
            mem.list("train/step_2").unwrap().is_empty(),
            "{stage}: torn step must be GC'd on resume"
        );
    }
}

/// The load-side half of the matrix: a rank dying at any load stage fails
/// the load on every rank but leaves the checkpoint itself untouched, so a
/// retry on a healthy world succeeds.
#[test]
fn crash_at_every_load_stage_leaves_checkpoint_loadable() {
    let (registry, _mem) = memory_registry();
    run_world(registry.clone(), FaultPlan::new(), move |rank, ckpt| {
        let state = reference_state(rank, 1);
        ckpt.save(&SaveRequest::new("mem://jobs/train/step_1", &state, 1)).unwrap().wait().unwrap();
    });

    for &stage in LOAD_STAGES {
        let errs =
            run_world(registry.clone(), FaultPlan::new().kill(1, stage), move |rank, ckpt| {
                let mut state = build_train_state(&zoo::tiny_gpt(), fw(), par(), rank, true);
                ckpt.load(&mut LoadRequest::new("mem://jobs/train/step_1", &mut state))
                    .err()
                    .map(|e| e.to_string())
            });
        for (rank, err) in errs.iter().enumerate() {
            assert!(err.is_some(), "{stage}: rank {rank} must observe the failure");
        }
        assert!(
            errs[1].as_ref().unwrap().contains("injected crash"),
            "{stage}: victim saw {:?}",
            errs[1]
        );
    }

    // The failed loads were read-only: a healthy world still resumes.
    run_world(registry, FaultPlan::new(), move |rank, ckpt| {
        let mut state = build_train_state(&zoo::tiny_gpt(), fw(), par(), rank, true);
        let out = ckpt.load_latest("mem://jobs/train", &mut state, None).unwrap().unwrap();
        assert_eq!(out.resumed_step(), 1);
        let want = reference_state(rank, 1);
        assert_states_bitwise_eq(&state, &want, rank, "post-load-crash resume");
    });
}

/// The overlapped-load hang window: a peer dying mid-load must abort the
/// survivors *promptly* via rendezvous failure propagation — the condvar
/// wake-up on `mark_failed`, not the collective timeout expiring. The world
/// runs with a 10 s timeout; the whole failed load must finish far sooner.
#[test]
fn peer_death_mid_load_aborts_survivors_promptly() {
    let (registry, _mem) = memory_registry();
    run_world(registry.clone(), FaultPlan::new(), move |rank, ckpt| {
        let state = reference_state(rank, 1);
        ckpt.save(&SaveRequest::new("mem://jobs/train/step_1", &state, 1)).unwrap().wait().unwrap();
    });

    let started = std::time::Instant::now();
    let errs = run_world(registry, FaultPlan::new().kill(1, "load/read"), move |rank, ckpt| {
        let mut state = build_train_state(&zoo::tiny_gpt(), fw(), par(), rank, true);
        ckpt.load(&mut LoadRequest::new("mem://jobs/train/step_1", &mut state))
            .err()
            .map(|e| e.to_string())
    });
    let elapsed = started.elapsed();
    for (rank, err) in errs.iter().enumerate() {
        assert!(err.is_some(), "rank {rank} must observe the mid-load failure");
    }
    assert!(
        elapsed < Duration::from_secs(5),
        "survivors must abort via failure propagation, not the 10s timeout (took {elapsed:?})"
    );
}

/// `load_latest` on an empty root is a fresh start, not an error.
#[test]
fn load_latest_on_empty_root_is_a_fresh_start() {
    let (registry, _mem) = memory_registry();
    run_world(registry, FaultPlan::new(), move |rank, ckpt| {
        let mut state = build_train_state(&zoo::tiny_gpt(), fw(), par(), rank, true);
        assert!(ckpt.load_latest("mem://jobs/untouched", &mut state, None).unwrap().is_none());
        rank
    });
}

/// Graceful degradation end to end: a save against a dead primary tier
/// trips the [`FallbackBackend`] onto its secondary, the downgrade is
/// recorded in both the failure log and the metrics stream, and the
/// checkpoint written across the failover loads back bitwise-intact.
#[test]
fn degraded_primary_fails_over_and_is_recorded() {
    let secondary: DynBackend = Arc::new(MemoryBackend::new());
    let primary: DynBackend = Arc::new(FlakyBackend::new(
        Arc::new(MemoryBackend::new()),
        FailureMode::Writes,
        u32::MAX, // the primary tier is down for good
    ));
    let fallback = Arc::new(FallbackBackend::with_threshold(primary, secondary.clone(), 1));
    let log = Arc::new(FailureLog::new());
    let hub = Arc::new(MetricsHub::new());
    record_failovers(&fallback, log.clone(), hub.sink(), 0);

    let registry = {
        let backend: DynBackend = fallback.clone();
        let mut reg = BackendRegistry::new();
        reg.register(Scheme::Memory, backend);
        Arc::new(reg)
    };

    // The save must succeed despite every primary write failing: the first
    // failure trips the wrapper and the whole checkpoint lands on the
    // secondary tier.
    run_world(registry.clone(), FaultPlan::new(), move |rank, ckpt| {
        let state = reference_state(rank, 1);
        ckpt.save(&SaveRequest::new("mem://prod/job/step_1", &state, 1)).unwrap().wait().unwrap();
    });

    assert!(fallback.is_degraded(), "dead primary must trip the wrapper");
    assert!(
        secondary.exists("job/step_1/COMPLETE").unwrap(),
        "the commit marker must land on the secondary tier"
    );
    assert_eq!(fallback.events().len(), 1, "the trip is recorded exactly once");
    assert!(
        log.records().iter().any(|r| r.stage == FAILOVER_STAGE),
        "the downgrade must appear in the failure log"
    );
    assert!(
        hub.records().iter().any(|m| m.name == FAILOVER_STAGE),
        "the downgrade must appear in the metrics stream"
    );

    // Reads consult both tiers, so the degraded wrapper still resumes.
    run_world(registry, FaultPlan::new(), move |rank, ckpt| {
        let mut state = build_train_state(&zoo::tiny_gpt(), fw(), par(), rank, true);
        let out = ckpt.load_latest("mem://prod/job", &mut state, None).unwrap().unwrap();
        assert_eq!(out.resumed_step(), 1);
        let want = reference_state(rank, 1);
        assert_states_bitwise_eq(&state, &want, rank, "failover resume");
    });
}
