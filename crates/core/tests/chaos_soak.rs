//! Chaos soak: a bounded multi-cycle train → save → kill → recover loop
//! over a 2-host/4-rank world with the hot tier enabled, seeded random
//! stage kills, backend write flakiness + latency jitter, and host-memory
//! wipes. Invariants held every cycle:
//!
//! * training always resumes from the newest *committed* step, bitwise
//!   equal to the deterministic reference trajectory;
//! * committed progress is monotone — a torn save never commits, a
//!   post-commit death never un-commits;
//! * no cycle hangs anywhere near the collective timeout (failure
//!   propagation aborts survivors promptly);
//! * recoveries are served from peer hot-tier replicas when coverage
//!   exists (≥ 90% hot at least once), degrade to a partial overlay when a
//!   source's copies died, and fall through to the persistent tree
//!   entirely — without error — after a full host-memory wipe.

use bcp_collectives::{Backend, CommWorld};
use bcp_core::api::{Checkpointer, SaveRequest};
use bcp_core::fault::FaultPlan;
use bcp_core::integrity::RetryPolicy;
use bcp_core::registry::BackendRegistry;
use bcp_core::HotTierConfig;
use bcp_model::states::{build_train_state, Framework};
use bcp_model::{zoo, TrainState, TrainerConfig};
use bcp_storage::flaky::{FailureMode, FlakyBackend};
use bcp_storage::uri::Scheme;
use bcp_storage::{DynBackend, HotTier, MemoryBackend};
use bcp_topology::Parallelism;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WORLD: usize = 4;
const GPUS_PER_HOST: usize = 2; // host 0 = ranks {0,1}, host 1 = ranks {2,3}
const TIMEOUT: Duration = Duration::from_secs(10);

fn fw() -> Framework {
    Framework::Ddp
}

fn par() -> Parallelism {
    Parallelism::data_parallel(WORLD).unwrap()
}

/// Ground-truth state at `rank` after `steps` deterministic training steps.
fn reference_state(rank: usize, steps: u64) -> TrainState {
    let mut s = build_train_state(&zoo::tiny_gpt(), fw(), par(), rank, true);
    TrainerConfig::default().run(&mut s, 0, steps);
    s
}

fn assert_states_bitwise_eq(got: &TrainState, want: &TrainState, rank: usize, ctx: &str) {
    for (dict_name, got_d, want_d) in
        [("model", &got.model, &want.model), ("optimizer", &got.optimizer, &want.optimizer)]
    {
        for (fqn, w) in &want_d.entries {
            let g = got_d.get(fqn).unwrap_or_else(|| panic!("{ctx}: rank {rank} missing {fqn}"));
            assert!(
                g.tensor.bitwise_eq(&w.tensor),
                "{ctx}: rank {rank} {dict_name} {fqn} differs from reference"
            );
        }
    }
}

/// The fixtures that outlive worker "processes": the persistent store (one
/// flaky, jittery backend shared by every cycle) and per-rank hot tiers
/// (host memory surviving a process restart).
struct Cluster {
    registry: Arc<BackendRegistry>,
    /// Raw store underneath the flaky wrapper, for commit-marker checks.
    mem: DynBackend,
    tiers: Vec<Arc<HotTier>>,
}

impl Cluster {
    fn new(jitter_seed: u64) -> Cluster {
        let mem: DynBackend = Arc::new(MemoryBackend::new());
        // Every path's first write fails (exercising the retry machinery on
        // every new object) and every data op sleeps a seeded jitter.
        let flaky: DynBackend = Arc::new(
            FlakyBackend::new(mem.clone(), FailureMode::Writes, 1)
                .with_jitter(jitter_seed, Duration::from_micros(200)),
        );
        let mut reg = BackendRegistry::new();
        reg.register(Scheme::Memory, flaky);
        Cluster {
            registry: Arc::new(reg),
            mem,
            tiers: (0..WORLD).map(|_| Arc::new(HotTier::new(2))).collect(),
        }
    }
}

/// What one rank observed in one cycle.
#[derive(Default)]
struct RankReport {
    load_err: Option<String>,
    save_err: Option<String>,
    hot_files: usize,
    cold_files: usize,
    fallbacks: Vec<String>,
}

/// One simulated incarnation of the job: fresh world + fresh checkpointers
/// against the cluster's persistent store and hot tiers.
fn run_cycle<F>(cluster: &Cluster, plan: FaultPlan, f: F) -> Vec<RankReport>
where
    F: Fn(usize, Checkpointer) -> RankReport + Send + Sync + 'static,
{
    let world = CommWorld::with_timeout(WORLD, Backend::Flat, TIMEOUT);
    let f = Arc::new(f);
    let handles: Vec<_> = (0..WORLD)
        .map(|rank| {
            let world = world.clone();
            let registry = cluster.registry.clone();
            let tier = cluster.tiers[rank].clone();
            let plan = plan.clone();
            let f = f.clone();
            std::thread::spawn(move || {
                let ckpt = Checkpointer::builder(world.communicator(rank).unwrap())
                    .framework(fw())
                    .parallelism(par())
                    .registry(registry)
                    .fault_plan(plan)
                    .retry_policy(RetryPolicy::exponential(3, Duration::from_millis(2)))
                    .hot_tier_handle(tier)
                    .hot_tier(
                        HotTierConfig::enabled()
                            .gpus_per_host(GPUS_PER_HOST)
                            .replicas(1)
                            .capacity_steps(2),
                    )
                    .build()
                    .unwrap();
                f(rank, ckpt)
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// What the chaos scheduler does to a cycle.
#[derive(Clone, Copy, Debug)]
enum Kind {
    /// No injected fault (backend flakiness/jitter still applies).
    Clean,
    /// Wipe one host's hot tiers before the cycle (single-failure-domain
    /// memory loss; placement must keep recovery 100% hot).
    WipeHost(usize),
    /// Wipe every hot tier (total memory loss; recovery must fall through
    /// to the persistent tree without error).
    WipeAll,
    /// Kill `rank` at a pre-commit save stage: the step must never commit.
    KillSave(&'static str, usize),
    /// Kill `rank` at the post-commit hot replication: the step stays
    /// committed, hot coverage degrades.
    KillSaveHot(usize),
    /// Kill `rank` at a load stage: the load fails everywhere, the
    /// checkpoint survives untouched.
    KillLoad(&'static str, usize),
}

/// Cycles 0–5 are a designed scenario ladder (bootstrap → replicated →
/// host wipe → post-commit death → partial-hot recovery → total wipe);
/// everything after is drawn from the seeded RNG.
fn schedule(cycle: usize, rng: &mut StdRng) -> Kind {
    match cycle {
        0 | 1 => Kind::Clean,
        2 => Kind::WipeHost(0),
        3 => Kind::KillSaveHot(1),
        4 => Kind::Clean, // resumes the step whose hot coverage lost rank 1
        5 => Kind::WipeAll,
        _ => match rng.gen_range(0..10u32) {
            0 => Kind::KillSave("save/upload", rng.gen_range(0..WORLD)),
            1 => Kind::KillSave("save/barrier", rng.gen_range(0..WORLD)),
            2 => Kind::KillSave("save/metadata", 0),
            3 => Kind::KillSave("save/commit", 0),
            4 => Kind::KillSaveHot(rng.gen_range(0..WORLD)),
            5 => Kind::KillLoad("load/read", rng.gen_range(0..WORLD)),
            6 => Kind::KillLoad("load/hot", rng.gen_range(0..WORLD)),
            _ => Kind::Clean,
        },
    }
}

fn run_soak(cluster: &Cluster, cycles: usize, seed: u64) {
    assert!(cycles >= 6, "the designed scenario ladder needs 6 cycles");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut committed: Option<u64> = None;
    let mut full_hot_recoveries = 0usize;

    for cycle in 0..cycles {
        let kind = schedule(cycle, &mut rng);
        match kind {
            Kind::WipeHost(h) => {
                for tier in &cluster.tiers[h * GPUS_PER_HOST..(h + 1) * GPUS_PER_HOST] {
                    tier.wipe();
                }
            }
            Kind::WipeAll => cluster.tiers.iter().for_each(|t| t.wipe()),
            _ => {}
        }
        let plan = match kind {
            Kind::KillSave(stage, victim) | Kind::KillLoad(stage, victim) => {
                FaultPlan::new().kill(victim, stage)
            }
            Kind::KillSaveHot(victim) => FaultPlan::new().kill(victim, "save/hot"),
            _ => FaultPlan::new(),
        };

        let expected = committed;
        let next = committed.map_or(1, |s| s + 1);
        let started = Instant::now();
        let reports = run_cycle(cluster, plan, move |rank, ckpt| {
            let mut report = RankReport::default();
            let mut state = build_train_state(&zoo::tiny_gpt(), fw(), par(), rank, true);
            let resumed = match ckpt.load_latest("mem://jobs/train", &mut state, None) {
                Err(e) => {
                    report.load_err = Some(e.to_string());
                    return report;
                }
                Ok(None) => {
                    assert!(
                        expected.is_none(),
                        "cycle {cycle}: rank {rank} found nothing but step {expected:?} committed"
                    );
                    0
                }
                Ok(Some(out)) => {
                    let want_step = expected.unwrap_or_else(|| {
                        panic!(
                            "cycle {cycle}: rank {rank} resumed step {} with nothing committed",
                            out.resumed_step()
                        )
                    });
                    assert_eq!(
                        out.resumed_step(),
                        want_step,
                        "cycle {cycle}: rank {rank} must resume the newest committed step"
                    );
                    let want = reference_state(rank, want_step);
                    assert_states_bitwise_eq(&state, &want, rank, &format!("cycle {cycle}"));
                    if let Some(t) = out.tier() {
                        report.hot_files = t.hot_files;
                        report.cold_files = t.cold_files;
                        report.fallbacks = t.fallbacks.clone();
                    }
                    want_step
                }
            };
            TrainerConfig::default().run(&mut state, resumed, 1);
            let target = resumed + 1;
            let save = ckpt
                .save(&SaveRequest::new(format!("mem://jobs/train/step_{target}"), &state, target))
                .and_then(|t| t.wait());
            if let Err(e) = save {
                report.save_err = Some(e.to_string());
            }
            report
        });
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(8),
            "cycle {cycle} ({kind:?}) took {elapsed:?}: survivors must abort via failure \
             propagation, never ride out the {TIMEOUT:?} collective timeout"
        );

        // Commit-marker ground truth (read through the raw store, no
        // injection): did this cycle's save step become durable?
        let durable = cluster.mem.exists(&format!("train/step_{next}/COMPLETE")).unwrap();
        match kind {
            Kind::Clean | Kind::WipeHost(_) | Kind::WipeAll => {
                for (r, rep) in reports.iter().enumerate() {
                    assert!(
                        rep.load_err.is_none(),
                        "cycle {cycle}: rank {r} load failed: {:?}",
                        rep.load_err
                    );
                    assert!(
                        rep.save_err.is_none(),
                        "cycle {cycle}: rank {r} save failed: {:?}",
                        rep.save_err
                    );
                }
                assert!(durable, "cycle {cycle}: a clean cycle must commit step {next}");
                committed = Some(next);
            }
            Kind::KillLoad(stage, victim) => {
                for (r, rep) in reports.iter().enumerate() {
                    assert!(
                        rep.load_err.is_some(),
                        "cycle {cycle}: rank {r} must observe the {stage} kill"
                    );
                }
                assert!(
                    reports[victim].load_err.as_ref().unwrap().contains("injected crash"),
                    "cycle {cycle}: victim saw {:?}",
                    reports[victim].load_err
                );
                assert!(!durable, "cycle {cycle}: a failed load must not commit anything");
            }
            Kind::KillSave(stage, victim) => {
                for (r, rep) in reports.iter().enumerate() {
                    assert!(rep.load_err.is_none(), "cycle {cycle}: rank {r} load must succeed");
                    assert!(
                        rep.save_err.is_some(),
                        "cycle {cycle}: rank {r} must observe the {stage} kill"
                    );
                }
                assert!(
                    reports[victim].save_err.as_ref().unwrap().contains("injected crash"),
                    "cycle {cycle}: victim saw {:?}",
                    reports[victim].save_err
                );
                assert!(!durable, "cycle {cycle}: a {stage} kill must never commit step {next}");
            }
            Kind::KillSaveHot(victim) => {
                for (r, rep) in reports.iter().enumerate() {
                    assert!(rep.load_err.is_none(), "cycle {cycle}: rank {r} load must succeed");
                }
                assert!(
                    reports[victim].save_err.as_ref().unwrap().contains("injected crash"),
                    "cycle {cycle}: victim saw {:?}",
                    reports[victim].save_err
                );
                assert!(
                    durable,
                    "cycle {cycle}: save/hot fires after commit — step {next} must stay durable"
                );
                committed = Some(next);
            }
        }

        // Recovery-tier composition, on the designed scenario cycles.
        let hot_total: usize = reports.iter().map(|r| r.hot_files).sum();
        let cold_total: usize = reports.iter().map(|r| r.cold_files).sum();
        match cycle {
            2 => {
                // One host's memory is gone; the failure-domain-aware
                // placement put every source's replica on the other host.
                assert!(
                    hot_total > 0 && cold_total == 0,
                    "cycle 2: single-host wipe must still recover 100% hot \
                     (hot {hot_total}, cold {cold_total})"
                );
            }
            4 => {
                // Rank 1 died at save/hot last cycle: its files are in no
                // tier, everyone else's replicated — a mixed recovery.
                assert!(hot_total > 0, "cycle 4: surviving sources must serve hot");
                assert!(
                    cold_total > 0,
                    "cycle 4: rank 1's shard files must fall through to the cold tree"
                );
                assert!(
                    reports.iter().any(|r| r.fallbacks.iter().any(|f| f.contains("rank 1"))),
                    "cycle 4: the fallback reason must name the lost source"
                );
            }
            5 => {
                // Total hot-memory loss: the ladder bottoms out on the
                // persistent tree, silently correct.
                assert!(
                    hot_total == 0 && cold_total > 0,
                    "cycle 5: full wipe must read everything cold \
                     (hot {hot_total}, cold {cold_total})"
                );
                for (r, rep) in reports.iter().enumerate() {
                    assert!(
                        rep.fallbacks.len() >= WORLD,
                        "cycle 5: rank {r} must record one miss per lost source, got {:?}",
                        rep.fallbacks
                    );
                }
            }
            _ => {}
        }
        if hot_total > 0 && hot_total * 10 >= (hot_total + cold_total) * 9 {
            full_hot_recoveries += 1;
        }
    }

    assert!(
        full_hot_recoveries >= 1,
        "at least one recovery must be served >= 90% from the hot tier"
    );
    let last = committed.expect("the soak must commit progress");
    assert!(last >= 5, "monotone progress: the scenario ladder alone commits 5+ steps, got {last}");
}

/// The full soak: 34 seeded kill/recover cycles (>= 30 per the acceptance
/// bar) over the scenario ladder plus the random chaos schedule.
#[test]
fn soak_thirty_plus_seeded_kill_recover_cycles() {
    let cluster = Cluster::new(0xC4A05);
    run_soak(&cluster, 34, 0xB07_7E57);
}

/// Bounded smoke variant for `scripts/check.sh`: the whole scenario ladder
/// plus two random cycles, well under a minute.
#[test]
fn smoke_bounded_soak() {
    let cluster = Cluster::new(7);
    run_soak(&cluster, 8, 42);
}
