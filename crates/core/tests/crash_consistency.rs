//! Crash-consistency exploration (Appendix B, made exhaustive): record an
//! 8-rank save through a mutation journal, enumerate *every* storage state
//! a crash could leave behind — each mutation-log prefix plus torn variants
//! of the in-flight write, including mid-segment cuts and the torn
//! `COMPLETE` marker — and drive recovery (`gc_torn` + `load_latest`)
//! against each. The invariant: recovery always lands on a committed,
//! CRC-verified step with bitwise-correct state, never applies torn data,
//! and never hangs (the worlds run with a bounded collective timeout).
//!
//! Also the verified-fallback acceptance path: a silently bit-flipped
//! newest step is detected by the pre-load scrub, quarantined, logged, and
//! recovery resumes from the previous committed step.

use bcp_collectives::{Backend, CommWorld};
use bcp_core::api::{Checkpointer, SaveRequest};
use bcp_core::crashsim::{enumerate_crash_states, torn_counts};
use bcp_core::metadata::{GlobalMetadata, COMPLETE_MARKER, METADATA_FILE};
use bcp_core::registry::BackendRegistry;
use bcp_core::scrub::scrub_step;
use bcp_model::states::{build_train_state, Framework};
use bcp_model::{zoo, TrainState, TrainerConfig};
use bcp_storage::journal::{JournalBackend, JournalOp};
use bcp_storage::uri::Scheme;
use bcp_storage::{CorruptingBackend, DynBackend, MemoryBackend};
use bcp_topology::Parallelism;
use std::sync::Arc;
use std::time::Duration;

const WORLD: usize = 8;

fn fw() -> Framework {
    Framework::Ddp
}

fn par() -> Parallelism {
    Parallelism::data_parallel(WORLD).unwrap()
}

fn registry_for(backend: DynBackend) -> Arc<BackendRegistry> {
    let mut reg = BackendRegistry::new();
    reg.register(Scheme::Memory, backend);
    Arc::new(reg)
}

/// Ground-truth state at `rank` after `steps` deterministic training steps.
fn reference_state(rank: usize, steps: u64) -> TrainState {
    let mut s = build_train_state(&zoo::tiny_gpt(), fw(), par(), rank, true);
    TrainerConfig::default().run(&mut s, 0, steps);
    s
}

fn assert_states_bitwise_eq(got: &TrainState, want: &TrainState, rank: usize, ctx: &str) {
    for (dict_name, got_d, want_d) in
        [("model", &got.model, &want.model), ("optimizer", &got.optimizer, &want.optimizer)]
    {
        for (fqn, w) in &want_d.entries {
            let g = got_d.get(fqn).unwrap_or_else(|| panic!("{ctx}: rank {rank} missing {fqn}"));
            assert!(
                g.tensor.bitwise_eq(&w.tensor),
                "{ctx}: rank {rank} {dict_name} {fqn} differs from reference"
            );
        }
    }
}

/// Spawn one thread per rank over a fresh world. The bounded collective
/// timeout is the "recovery never hangs" backstop: any state that wedged a
/// rank would fail the whole test within 10 s, not block the suite.
fn run_world<F, T>(registry: Arc<BackendRegistry>, f: F) -> Vec<T>
where
    F: Fn(usize, Checkpointer) -> T + Send + Sync + 'static,
    T: Send + 'static,
{
    let world = CommWorld::with_timeout(WORLD, Backend::Flat, Duration::from_secs(10));
    let f = Arc::new(f);
    let handles: Vec<_> = (0..WORLD)
        .map(|rank| {
            let world = world.clone();
            let registry = registry.clone();
            let f = f.clone();
            std::thread::spawn(move || {
                let ckpt = Checkpointer::builder(world.communicator(rank).unwrap())
                    .framework(fw())
                    .parallelism(par())
                    .registry(registry)
                    .telemetry(false)
                    .build()
                    .unwrap();
                f(rank, ckpt)
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

/// New bytes an op writes, or `None` for atomic ops (no torn variants).
fn op_new_bytes(op: &JournalOp) -> Option<u64> {
    match op {
        JournalOp::Write { data, .. } | JournalOp::Append { data, .. } => Some(data.len() as u64),
        JournalOp::WriteSegments { segments, .. } => {
            Some(segments.iter().map(|s| s.len() as u64).sum())
        }
        // Concat sizes depend on prior state; torn coverage for concat is
        // asserted at the journal unit-test level.
        JournalOp::Concat { .. } => None,
        JournalOp::Delete { .. } | JournalOp::Rename { .. } => None,
    }
}

/// The full matrix: every crash state of a journaled 8-rank save recovers
/// to a committed, scrub-clean step whose state matches the reference
/// bitwise. Torn data is never applied, and every rank agrees on the step.
#[test]
fn every_crash_state_recovers_to_a_committed_verified_step() {
    let mem: DynBackend = Arc::new(MemoryBackend::new());
    let journal = Arc::new(JournalBackend::new(mem).unwrap());
    let journal_dyn: DynBackend = journal.clone();
    let registry = registry_for(journal_dyn);

    // Step 1 commits cleanly, then becomes the journal baseline: every
    // enumerated crash state contains a committed step to fall back to.
    run_world(registry.clone(), move |rank, ckpt| {
        let state = reference_state(rank, 1);
        ckpt.save(&SaveRequest::new("mem://jobs/train/step_1", &state, 1)).unwrap().wait().unwrap();
    });
    journal.rebase().unwrap();

    // Step 2 is recorded op by op.
    run_world(registry, move |rank, ckpt| {
        let state = reference_state(rank, 2);
        ckpt.save(&SaveRequest::new("mem://jobs/train/step_2", &state, 2)).unwrap().wait().unwrap();
    });

    let ops = journal.ops();
    assert!(
        ops.len() >= 4,
        "an 8-rank save must journal shard uploads + metadata + marker, got {}",
        ops.len()
    );
    assert!(
        matches!(ops.last(), Some(JournalOp::Write { path, .. }) if path.ends_with(COMPLETE_MARKER)),
        "the COMPLETE marker must be the final journaled op"
    );

    let states = enumerate_crash_states(&journal).unwrap();

    // Matrix coverage: every prefix, ≥ 3 torn cuts per multi-byte write
    // (the 2-byte marker gets its created-empty and one-byte cuts), and the
    // torn-marker state itself.
    let prefixes = states.iter().filter(|s| s.torn_cut.is_none()).count();
    assert_eq!(prefixes, ops.len() + 1, "every mutation-log prefix must be enumerated");
    let torn = torn_counts(&states);
    for (i, op) in ops.iter().enumerate() {
        if let Some(bytes) = op_new_bytes(op) {
            let want = if bytes >= 4 { 3 } else { 1 };
            let got = torn.iter().find(|&&(idx, _)| idx == i).map(|&(_, n)| n).unwrap_or(0);
            assert!(
                got >= want,
                "op {i} ({}, {bytes} bytes) has {got} torn variants, want ≥ {want}",
                op.label()
            );
        }
    }
    assert!(
        states.iter().any(|s| s.torn_cut.is_some() && s.label.contains(COMPLETE_MARKER)),
        "the torn-COMPLETE-marker state must be in the matrix"
    );

    // References computed once; shared read-only across every world.
    let refs: Arc<Vec<[TrainState; 2]>> =
        Arc::new((0..WORLD).map(|r| [reference_state(r, 1), reference_state(r, 2)]).collect());

    for state in &states {
        let label = state.label.clone();
        let refs = refs.clone();
        let steps = run_world(registry_for(state.backend.clone()), move |rank, ckpt| {
            let mut target = build_train_state(&zoo::tiny_gpt(), fw(), par(), rank, true);
            let out = ckpt
                .load_latest("mem://jobs/train", &mut target, None)
                .unwrap_or_else(|e| panic!("{label}: rank {rank} recovery failed: {e}"))
                .unwrap_or_else(|| panic!("{label}: a committed step must survive"));
            let step = out.resumed_step();
            assert!(
                step == 1 || step == 2,
                "{label}: rank {rank} resumed from impossible step {step}"
            );
            assert_states_bitwise_eq(&target, &refs[rank][(step - 1) as usize], rank, &label);
            step
        });
        assert!(
            steps.iter().all(|&s| s == steps[0]),
            "{}: ranks disagree on the resumed step: {steps:?}",
            state.label
        );
        // The step recovery landed on is committed and fully verified —
        // torn data was either GC'd or never loadable.
        let step = steps[0];
        let report = scrub_step(&state.backend, &format!("train/step_{step}"), step).unwrap();
        assert!(
            report.committed && report.is_clean(),
            "{}: recovered step {step} must be committed and scrub-clean: {:?}",
            state.label,
            report.issues
        );
    }
}

/// Verified fallback end to end: one silently flipped bit in the newest
/// step's shard data costs exactly one step of progress. `load_latest`
/// detects it before loading, quarantines the step, records the failure,
/// and every rank resumes bitwise-correct from the previous committed step.
#[test]
fn bit_flipped_newest_step_is_quarantined_and_previous_step_loads() {
    let mem: DynBackend = Arc::new(MemoryBackend::new());
    let registry = registry_for(mem.clone());

    for step in 1..=2u64 {
        run_world(registry.clone(), move |rank, ckpt| {
            let state = reference_state(rank, step);
            let loc = format!("mem://jobs/train/step_{step}");
            ckpt.save(&SaveRequest::new(loc.as_str(), &state, step)).unwrap().wait().unwrap();
        });
    }

    // Flip one seed-derived bit in a step-2 shard file, at rest.
    let meta =
        GlobalMetadata::from_bytes(&mem.read(&format!("train/step_2/{METADATA_FILE}")).unwrap())
            .unwrap();
    let shard_file = meta
        .tensor_map
        .values()
        .flatten()
        .map(|e| e.byte.file.clone())
        .next()
        .expect("step 2 references at least one shard file");
    let corruptor = CorruptingBackend::new(mem.clone(), 0xB1C7);
    corruptor.flip_bit_at_rest(&format!("train/step_2/{shard_file}")).unwrap();
    assert_eq!(corruptor.injected(), 1);

    let results = run_world(registry, move |rank, ckpt| {
        let mut target = build_train_state(&zoo::tiny_gpt(), fw(), par(), rank, true);
        let out = ckpt
            .load_latest("mem://jobs/train", &mut target, None)
            .unwrap()
            .expect("step 1 must survive the fallback");
        let want = reference_state(rank, 1);
        assert_states_bitwise_eq(&target, &want, rank, "verified fallback");
        let verify_failures =
            ckpt.failures().records().iter().filter(|r| r.stage == "load/verify").count();
        (out.resumed_step(), out.fell_back(), out.quarantined.clone(), verify_failures)
    });

    for (rank, (step, fell_back, quarantined, _)) in results.iter().enumerate() {
        assert_eq!(*step, 1, "rank {rank} must resume from the previous committed step");
        assert!(*fell_back, "rank {rank} must report the fallback");
        assert_eq!(quarantined.len(), 1, "rank {rank} must see the quarantined step");
        assert_eq!(quarantined[0].step, 2);
        assert!(
            quarantined[0].reason.contains(&shard_file),
            "rank {rank}: reason {:?} must name the corrupt shard file",
            quarantined[0].reason
        );
    }
    assert!(
        results.iter().any(|(_, _, _, n)| *n > 0),
        "the coordinator must log a load/verify failure record"
    );

    // The corrupt step was moved aside, not deleted: it is out of the
    // manager's step listing but preserved for forensics.
    assert!(
        mem.list("train/step_2/").unwrap().is_empty(),
        "quarantined step must leave the live tree"
    );
    assert!(
        !mem.list("train/quarantine/step_2/").unwrap().is_empty(),
        "quarantined step must be preserved under quarantine/"
    );
}
