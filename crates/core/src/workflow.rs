//! The generic save/load (resharding) workflow (§3.3, Fig. 8).
//!
//! Save: local plans → gather at the coordinator → balanced dedup → global
//! metadata construction → scatter final plans → engine pipeline → integrity
//! barrier → coordinator commits (metadata + `COMPLETE` marker). The plan
//! cache (§4.1) turns everything before the engine into a one-time cost.
//!
//! Load: read global metadata → local load plans (box matching against the
//! TensorShardToBasicByteMap) → gather → redundant-read elimination →
//! scatter → engine pipeline (reads + all-to-all forwarding) → barrier.

use crate::engine::iopool::IoPool;
use crate::engine::load::{execute_load, LoadConfig, LoadStats};
use crate::engine::pool::PinnedPool;
use crate::engine::save::{execute_save_staged, HotStaging, SaveConfig, SaveStats};
use crate::fault::{FaultHook, FaultPlan};
use crate::hottier::{replicate_after_commit, HotTierConfig, TierBreakdown};
use crate::integrity::{commit_checkpoint, is_committed, with_retries, FailureLog, FailureRecord};
use crate::metadata::{
    GlobalMetadata, LoaderMap, LoaderShardFileEntry, COMPLETE_MARKER, METADATA_FILE,
};
use crate::plan::{build_tensor_map, local_load_plan, LoadPlan, SavePlan};
use crate::planner::balance::{
    dedup_save_plans, eliminate_redundant_reads, AssignedLoadPlan, DedupStrategy,
};
use crate::planner::cache::{CachedSave, PlanCache};
use crate::planner::planner_for;
use crate::telemetry::{collect_rank_telemetry, persist_step_telemetry};
use crate::{BcpError, Result};
use bcp_collectives::Communicator;
use bcp_dataloader::{LoaderReplicatedState, LoaderShardState};
use bcp_model::{ExtraState, Framework, TrainState};
use bcp_monitor::{
    enter_context, MetricsHub, MetricsSink, TELEMETRY_LOAD_FILE, TELEMETRY_SAVE_FILE,
};
use bcp_storage::hot::HotTier;
use bcp_storage::{DynBackend, TieredReadBackend};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-job context shared by save and load.
pub struct JobContext {
    /// World communicator for this training job.
    pub comm: Communicator,
    /// Framework whose planner interprets the state dicts.
    pub framework: Framework,
    /// Current parallelism.
    pub parallelism: bcp_topology::Parallelism,
}

impl JobContext {
    /// This worker's global rank.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// The coordinator rank (lowest member, conventionally 0).
    pub fn coordinator(&self) -> usize {
        self.comm.members()[0]
    }
}

/// Workflow-level options.
#[derive(Clone)]
pub struct WorkflowOptions {
    /// Save dedup strategy (§4.1). `WorstFit` is ByteCheckpoint.
    pub dedup: DedupStrategy,
    /// Engine save configuration.
    pub save: SaveConfig,
    /// Engine load configuration.
    pub load: LoadConfig,
    /// Use the plan & metadata cache (§4.1).
    pub plan_cache: bool,
    /// Eliminate redundant reads across DP replicas on load (§4.1).
    pub dedup_reads: bool,
    /// Injected crash schedule (empty in production; recovery tests kill
    /// ranks at named pipeline stages through it).
    pub faults: FaultPlan,
    /// Verified-fallback loading: `load_latest` scrubs the newest committed
    /// step first and falls back past corrupt ones (quarantining them)
    /// instead of erroring.
    pub verified_fallback: bool,
    /// Tiered recovery: peer-replicate committed shard files into the
    /// in-process hot tier and recover through it before the persistent
    /// tree. Must agree across ranks (the replication exchange is a
    /// symmetric collective).
    pub hot: HotTierConfig,
}

impl Default for WorkflowOptions {
    fn default() -> WorkflowOptions {
        WorkflowOptions {
            dedup: DedupStrategy::WorstFit,
            save: SaveConfig::default(),
            load: LoadConfig::default(),
            plan_cache: true,
            dedup_reads: true,
            faults: FaultPlan::new(),
            verified_fallback: true,
            hot: HotTierConfig::default(),
        }
    }
}

/// What each rank contributes to the gathered save-planning round.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LocalSaveMsg {
    plan: SavePlan,
    loader_files: Vec<LoaderShardFileEntry>,
    has_replicated_loader: bool,
    extra_file: Option<String>,
}

/// Everything a save leaves behind for the caller.
pub struct SaveTicket {
    /// Training-blocking duration (capture + planning when uncached).
    pub blocking: Duration,
    finalize: Option<std::thread::JoinHandle<Result<SaveStats>>>,
    sync_stats: Option<SaveStats>,
}

impl SaveTicket {
    /// Wait for the asynchronous tail (upload + barrier + commit).
    pub fn wait(self) -> Result<SaveStats> {
        match self.finalize {
            Some(h) => {
                h.join().map_err(|_| BcpError::Corrupt("finalize thread panicked".into()))?
            }
            None => Ok(self.sync_stats.expect("sync stats")),
        }
    }
}

/// Inputs to one checkpoint save.
pub struct SaveArgs<'a> {
    /// Training state (model + optimizer dicts).
    pub state: &'a TrainState,
    /// Dataloader states, when the caller owns a dataloader shard.
    pub loader: Option<(&'a LoaderReplicatedState, &'a LoaderShardState)>,
    /// Extra (CPU) state for this rank.
    pub extra: Option<&'a ExtraState>,
    /// Global step being checkpointed.
    pub step: u64,
}

/// Execute the full save workflow on this rank.
#[allow(clippy::too_many_arguments)]
pub fn save_checkpoint(
    ctx: &JobContext,
    backend: DynBackend,
    prefix: &str,
    args: SaveArgs<'_>,
    options: &WorkflowOptions,
    cache: &PlanCache,
    pool: &Arc<PinnedPool>,
    io: &Arc<IoPool>,
    sink: &MetricsSink,
    log: Arc<FailureLog>,
    telemetry: Option<Arc<MetricsHub>>,
) -> Result<SaveTicket> {
    save_checkpoint_hot(
        ctx, backend, prefix, args, options, cache, pool, io, sink, log, telemetry, None,
    )
}

/// [`save_checkpoint`] with an optional hot tier: when present (and
/// `options.hot.enabled`), the finalize tail replicates the committed step's
/// shard files into `hot_tier` and to `R` placement peers, off the save
/// critical path.
#[allow(clippy::too_many_arguments)]
pub fn save_checkpoint_hot(
    ctx: &JobContext,
    backend: DynBackend,
    prefix: &str,
    args: SaveArgs<'_>,
    options: &WorkflowOptions,
    cache: &PlanCache,
    pool: &Arc<PinnedPool>,
    io: &Arc<IoPool>,
    sink: &MetricsSink,
    log: Arc<FailureLog>,
    telemetry: Option<Arc<MetricsHub>>,
    hot_tier: Option<Arc<HotTier>>,
) -> Result<SaveTicket> {
    let rank = ctx.rank();
    let step = args.step;
    let planner = planner_for(ctx.framework);
    planner.validate(args.state, ctx.parallelism, rank)?;
    // A crashing rank declares itself dead to its peers so their collectives
    // abort with `PeerFailed` instead of waiting out the timeout.
    let faults = {
        let comm = ctx.comm.clone();
        FaultHook::new(options.faults.clone(), rank).with_on_kill(move || comm.mark_self_failed())
    };
    faults.check("save/plan")?;
    let blocking_start = Instant::now();
    // Root span for the whole save. Uncounted: phase spans below it carry
    // the durations that feed the per-phase aggregations.
    let root = sink
        .span("save", rank, step)
        .uncounted()
        .attr("prefix", prefix)
        .attr("parallelism", ctx.parallelism.describe())
        .attr("backend", backend.name());

    // ---- Planning (Fig. 8 steps 2-4, save direction), cache-aware. ----
    let sig = PlanCache::signature(planner.name(), &ctx.parallelism.describe(), rank, args.state);
    let cached: Option<Arc<CachedSave>> = if options.plan_cache { cache.get(sig) } else { None };
    // All ranks must agree on the cache path or the collectives deadlock.
    let all_hit = ctx.comm.all_gather(cached.is_some() as u8)?.into_iter().all(|h| h == 1);

    let (final_plan, metadata): (SavePlan, Option<GlobalMetadata>) = if all_hit {
        let c = cached.expect("all_hit implies local hit");
        let mut meta = c.metadata.clone();
        if let Some(m) = meta.as_mut() {
            m.step = step; // the only step-dependent field
        }
        (c.plan.clone(), meta)
    } else {
        let _t = root.child("save/plan");
        let local = planner.local_save_plan(rank, args.state)?;
        let msg = LocalSaveMsg {
            plan: local,
            loader_files: loader_file_entries(args.loader),
            has_replicated_loader: rank == ctx.coordinator() && args.loader.is_some(),
            extra_file: args.extra.map(|_| format!("extra_{rank}.bin")),
        };
        let gathered = ctx.comm.gather(ctx.coordinator(), msg)?;
        let mine: (SavePlan, GlobalMetadata) = if let Some(msgs) = gathered {
            // Coordinator: dedup + balance, build metadata, scatter plans.
            let mut plans: Vec<SavePlan> = msgs.iter().map(|m| m.plan.clone()).collect();
            dedup_save_plans(&mut plans, options.dedup);
            let mut meta = GlobalMetadata::new(
                planner.name(),
                step,
                &ctx.parallelism.describe(),
                ctx.comm.size(),
            );
            meta.tensor_map = build_tensor_map(&plans);
            let mut loader_map = LoaderMap::default();
            for m in &msgs {
                loader_map.shards.extend(m.loader_files.iter().cloned());
                if m.has_replicated_loader {
                    loader_map.replicated_file = Some("loader/replicated.json".to_string());
                }
            }
            meta.loader_map = loader_map;
            for (m, &member) in msgs.iter().zip(ctx.comm.members()) {
                if let Some(f) = &m.extra_file {
                    meta.extra_files.insert(member, f.clone());
                }
            }
            // Ship the metadata to everyone alongside their plan so every
            // rank can cache it (only the coordinator commits it).
            let payload: Vec<(SavePlan, GlobalMetadata)> =
                plans.into_iter().map(|p| (p, meta.clone())).collect();
            ctx.comm.scatter(ctx.coordinator(), Some(payload))?
        } else {
            ctx.comm.scatter(ctx.coordinator(), None)?
        };
        debug_assert_eq!(mine.0.rank, rank, "scatter must deliver this rank's plan");
        if options.plan_cache {
            cache.insert(sig, CachedSave { plan: mine.0.clone(), metadata: Some(mine.1.clone()) });
        }
        (mine.0, Some(mine.1))
    };

    // ---- Engine pipeline (blocking part = capture). ----
    let hot_active = hot_tier.is_some() && options.hot.enabled;
    let staging: Option<HotStaging> =
        hot_active.then(|| Arc::new(parking_lot::Mutex::new(Vec::new())));
    let handle = execute_save_staged(
        &final_plan,
        args.state,
        backend.clone(),
        prefix,
        pool,
        io,
        sink,
        log.clone(),
        &options.save,
        step,
        &faults,
        root.context(),
        staging.clone(),
    )?;
    let blocking = blocking_start.elapsed();

    // ---- Small-state uploads + integrity + commit, off the critical path. ----
    let loader_payloads = build_loader_payloads(ctx, args.loader);
    let extra_payload = args.extra.map(|e| (format!("extra_{rank}.bin"), Bytes::from(e.pack())));
    let comm = ctx.comm.clone();
    let coordinator = ctx.coordinator();
    let prefix2 = prefix.to_string();
    let retries = options.save.retries;
    let io2 = io.clone();
    let hot_opts = options.hot;
    let comm_abort = ctx.comm.clone();
    let finalize_inner = move || -> Result<SaveStats> {
        let mut root = root;
        // Upload dataloader shard files concurrently ("we implemented a
        // process pool for concurrent uploads", §6.4) and the extra state.
        faults.check("save/loader")?;
        {
            let mut t = root.child("save/loader");
            let tctx = t.context();
            let jobs: Vec<Box<dyn FnOnce() -> Result<()> + Send + 'static>> = loader_payloads
                .iter()
                .map(|(file, data)| {
                    let backend = backend.clone();
                    let log = log.clone();
                    let path = format!("{prefix2}/{file}");
                    let data = data.clone();
                    Box::new(move || {
                        // Parent the worker's storage spans under the phase.
                        let _e = enter_context(tctx);
                        with_retries(retries, &log, rank, "save/loader", Some(&path), || {
                            backend.write(&path, data.clone())
                        })
                    }) as Box<dyn FnOnce() -> Result<()> + Send + 'static>
                })
                .collect();
            for res in io2.run_batch(jobs) {
                res?;
            }
            t.add_bytes(loader_payloads.iter().map(|(_, d)| d.len() as u64).sum());
        }
        faults.check("save/extra")?;
        if let Some((file, data)) = &extra_payload {
            let path = format!("{prefix2}/{file}");
            let t = root.child("save/extra").bytes(data.len() as u64).path(path.clone());
            let _in_extra = t.enter();
            with_retries(retries, &log, rank, "save/extra", Some(&path), || {
                backend.write(&path, data.clone())
            })?;
        }
        let stats = handle.wait()?;
        // Integrity barrier (tree-based when the backend is Tree), then the
        // coordinator alone commits.
        faults.check("save/barrier")?;
        {
            let _t = root.child("sync/save_barrier").attr("collective", comm.backend_info());
            comm.barrier()?;
        }
        if rank == coordinator {
            faults.check("save/metadata")?;
            let meta = metadata
                .ok_or_else(|| BcpError::Plan("coordinator lost the metadata template".into()))?;
            let meta_path = format!("{prefix2}/{METADATA_FILE}");
            let meta_bytes = Bytes::from(meta.to_bytes());
            {
                let t = root
                    .child("save/metadata")
                    .bytes(meta_bytes.len() as u64)
                    .path(meta_path.clone());
                let _in_meta = t.enter();
                with_retries(retries, &log, rank, "save/metadata", Some(&meta_path), || {
                    backend.write(&meta_path, meta_bytes.clone())
                })?;
            }
            faults.check("save/commit")?;
            let t = root.child("save/commit").path(prefix2.clone());
            let _in_commit = t.enter();
            with_retries(retries, &log, rank, "save/commit", Some(&prefix2), || {
                match commit_checkpoint(&backend, &prefix2) {
                    Ok(()) => Ok(()),
                    Err(BcpError::Storage(e)) => Err(e),
                    Err(_) => unreachable!("commit only produces storage errors"),
                }
            })?;
            root.event("commit");
        }
        // Hot-tier replication, strictly after the commit (only committed
        // steps are worth replicating) and still off the training-blocking
        // path. A peer dying mid-exchange is logged best-effort: the
        // checkpoint is already durable, the hot hit rate just drops.
        if let (Some(hot), Some(staging)) = (&hot_tier, &staging) {
            faults.check("save/hot")?;
            let files = std::mem::take(&mut *staging.lock());
            let mut t = root.child("save/hot_replicate").uncounted();
            t.set_attr("files", files.len().to_string());
            t.set_attr("replicas", hot_opts.replicas.to_string());
            t.add_bytes(files.iter().map(|(_, b)| b.len() as u64).sum());
            let _in_hot = t.enter();
            if let Err(e) = replicate_after_commit(&comm, hot, &hot_opts, step, files) {
                log.log(FailureRecord {
                    rank,
                    stage: "save/hot".into(),
                    path: Some(prefix2.clone()),
                    attempt: 1,
                    error: e.to_string(),
                    retried: false,
                });
            }
        }
        // The checkpoint is committed: close the root span and persist the
        // step's telemetry artifact next to the data (best-effort — a
        // telemetry failure degrades observability, never the checkpoint).
        drop(root);
        if let Some(hub) = &telemetry {
            let mine = collect_rank_telemetry(hub, &log, rank, step, "save");
            if let Err(e) =
                persist_step_telemetry(&comm, &backend, &prefix2, mine, TELEMETRY_SAVE_FILE)
            {
                log.log(FailureRecord {
                    rank,
                    stage: "save/telemetry".into(),
                    path: Some(format!("{prefix2}/{TELEMETRY_SAVE_FILE}")),
                    attempt: 1,
                    error: e.to_string(),
                    retried: false,
                });
            }
        }
        // Second barrier: the commit is visible to every rank once their
        // ticket resolves, so a rank may immediately load what it saved.
        comm.barrier()?;
        Ok(stats)
    };
    // Failure propagation (mirror of the load side): a rank whose finalize
    // tail aborts will never reach the barriers or post its replication
    // messages, so declare it dead rather than leave peers waiting.
    let finalize = move || -> Result<SaveStats> {
        let result = finalize_inner();
        if result.is_err() {
            comm_abort.mark_self_failed();
        }
        result
    };

    if options.save.async_upload {
        let join = std::thread::Builder::new()
            .name(format!("bcp-finalize-{rank}"))
            .spawn(finalize)
            .map_err(|e| BcpError::Corrupt(format!("spawn failed: {e}")))?;
        Ok(SaveTicket { blocking, finalize: Some(join), sync_stats: None })
    } else {
        let stats = finalize()?;
        Ok(SaveTicket {
            blocking: blocking_start.elapsed(),
            finalize: None,
            sync_stats: Some(stats),
        })
    }
}

fn loader_file_entries(
    loader: Option<(&LoaderReplicatedState, &LoaderShardState)>,
) -> Vec<LoaderShardFileEntry> {
    let Some((_, shard)) = loader else { return Vec::new() };
    shard
        .readers
        .iter()
        .enumerate()
        .map(|(w, _)| LoaderShardFileEntry {
            dp_rank: shard.dp_rank,
            worker: w,
            file: format!("loader/dp{}_w{}.json", shard.dp_rank, w),
        })
        .collect()
}

fn build_loader_payloads(
    ctx: &JobContext,
    loader: Option<(&LoaderReplicatedState, &LoaderShardState)>,
) -> Vec<(String, Bytes)> {
    let Some((replicated, shard)) = loader else { return Vec::new() };
    let mut out = Vec::new();
    // Sharded states: one file per read worker (the 6-parts-per-loader
    // layout of §6.4), each independently loadable during resharding.
    for (w, reader) in shard.readers.iter().enumerate() {
        let single = LoaderShardState {
            dp_rank: shard.dp_rank,
            readers: vec![reader.clone()],
            next_worker: shard.next_worker,
        };
        out.push((format!("loader/dp{}_w{w}.json", shard.dp_rank), Bytes::from(single.pack())));
    }
    // Replicated states: saved only by the coordinator's worker.
    if ctx.rank() == ctx.coordinator() {
        out.push(("loader/replicated.json".to_string(), Bytes::from(replicated.pack())));
    }
    out
}

/// Result of one checkpoint load on this rank.
pub struct LoadReport {
    /// Engine statistics.
    pub stats: LoadStats,
    /// The checkpoint's global metadata.
    pub metadata: GlobalMetadata,
    /// Extra state recovered for this rank (rank 0's when the world grew).
    pub extra: Option<ExtraState>,
    /// Which tier served each shard, when this was a tiered (hot-overlay)
    /// load. `None` for plain cold loads.
    pub tier: Option<TierBreakdown>,
}

/// The assembled hot overlay handed to a tiered load: verified full-path
/// file bytes plus the human-readable reasons anything will read cold.
pub type TierOverlay = (HashMap<String, Bytes>, Vec<String>);

/// Execute the full load (resharding) workflow on this rank. The state dict
/// passed in defines the *target* sharding; its tensor values are replaced.
#[allow(clippy::too_many_arguments)]
pub fn load_checkpoint(
    ctx: &JobContext,
    backend: DynBackend,
    prefix: &str,
    state: &mut TrainState,
    options: &WorkflowOptions,
    io: &Arc<IoPool>,
    sink: &MetricsSink,
    log: Arc<FailureLog>,
    step_hint: u64,
    telemetry: Option<Arc<MetricsHub>>,
) -> Result<LoadReport> {
    load_checkpoint_tiered(
        ctx, backend, prefix, state, options, io, sink, log, step_hint, telemetry, None,
    )
}

/// [`load_checkpoint`] through an optional hot-tier overlay: reads are
/// served from the verified hot copies first and fall through to the
/// persistent backend, with the per-shard tier recorded in
/// [`LoadReport::tier`] and in the `load/tier` telemetry span.
#[allow(clippy::too_many_arguments)]
pub fn load_checkpoint_tiered(
    ctx: &JobContext,
    backend: DynBackend,
    prefix: &str,
    state: &mut TrainState,
    options: &WorkflowOptions,
    io: &Arc<IoPool>,
    sink: &MetricsSink,
    log: Arc<FailureLog>,
    step_hint: u64,
    telemetry: Option<Arc<MetricsHub>>,
    tier: Option<TierOverlay>,
) -> Result<LoadReport> {
    let result = load_tiered_inner(
        ctx, backend, prefix, state, options, io, sink, log, step_hint, telemetry, tier,
    );
    if result.is_err() {
        // Failure propagation: a rank aborting a collective load leaves
        // peers blocked on exchanges and forwards it will never complete.
        // Declare this rank dead so their collectives abort with
        // `PeerFailed` instead of riding out the timeout.
        ctx.comm.mark_self_failed();
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn load_tiered_inner(
    ctx: &JobContext,
    backend: DynBackend,
    prefix: &str,
    state: &mut TrainState,
    options: &WorkflowOptions,
    io: &Arc<IoPool>,
    sink: &MetricsSink,
    log: Arc<FailureLog>,
    step_hint: u64,
    telemetry: Option<Arc<MetricsHub>>,
    tier: Option<TierOverlay>,
) -> Result<LoadReport> {
    let (tiered, fallbacks) = match tier {
        Some((map, fb)) => (Some(Arc::new(TieredReadBackend::new(map, backend.clone()))), fb),
        None => (None, Vec::new()),
    };
    let backend: DynBackend = match &tiered {
        Some(t) => t.clone(),
        None => backend,
    };
    let rank = ctx.rank();
    let faults = {
        let comm = ctx.comm.clone();
        FaultHook::new(options.faults.clone(), rank).with_on_kill(move || comm.mark_self_failed())
    };
    // Root span for the whole load. The true step is only known once the
    // metadata is parsed, so the root starts on the caller's hint and is
    // restamped below.
    let mut root = sink
        .span("load", rank, step_hint)
        .uncounted()
        .attr("prefix", prefix)
        .attr("parallelism", ctx.parallelism.describe())
        .attr("backend", backend.name());
    // Step 1: all ranks load the global metadata (committed checkpoints only).
    faults.check("load/metadata")?;
    if !is_committed(&backend, prefix)? {
        return Err(BcpError::Corrupt(format!(
            "checkpoint {prefix} has no {COMPLETE_MARKER} marker (torn or in-progress save)"
        )));
    }
    let meta_path = format!("{prefix}/{METADATA_FILE}");
    let metadata = {
        let mut t = root.child("load/metadata").path(meta_path.clone());
        let _in_meta = t.enter();
        let meta_bytes = with_retries(
            options.load.retries,
            &log,
            rank,
            "load/metadata",
            Some(&meta_path),
            || backend.read(&meta_path),
        )?;
        t.add_bytes(meta_bytes.len() as u64);
        let metadata = GlobalMetadata::from_bytes(&meta_bytes).map_err(BcpError::Corrupt)?;
        metadata.validate().map_err(BcpError::Corrupt)?;
        t.set_step(metadata.step);
        metadata
    };
    let step = metadata.step;
    root.set_step(step);

    // Step 2: local load plan (box matching).
    let local: LoadPlan = {
        let _t = root.child("load/plan");
        local_load_plan(rank, state, &metadata)?
    };

    // Steps 3-4: coordinator optimizes (redundant-read elimination) and
    // scatters the final per-rank assignments.
    let assigned: AssignedLoadPlan = if options.dedup_reads {
        let gathered = ctx.comm.gather(ctx.coordinator(), local)?;
        if let Some(plans) = gathered {
            let assigned = eliminate_redundant_reads(&plans);
            ctx.comm.scatter(ctx.coordinator(), Some(assigned))?
        } else {
            ctx.comm.scatter(ctx.coordinator(), None)?
        }
    } else {
        AssignedLoadPlan {
            rank,
            send_to: vec![Vec::new(); local.items.len()],
            reads: local.items,
            recvs: Vec::new(),
        }
    };

    // Step 5: engine pipeline.
    let comm_opt = if options.dedup_reads { Some(&ctx.comm) } else { None };
    let stats = execute_load(
        &assigned,
        state,
        backend.clone(),
        prefix,
        comm_opt,
        io,
        sink,
        log.clone(),
        &options.load,
        step,
        &faults,
        root.context(),
    )?;

    // Extra state: this rank's file, else the coordinator's (world grew).
    let extra = {
        let file = metadata
            .extra_files
            .get(&rank)
            .or_else(|| metadata.extra_files.get(&ctx.coordinator()))
            .or_else(|| metadata.extra_files.values().next());
        match file {
            Some(f) => {
                let path = format!("{prefix}/{f}");
                let mut t = root.child("load/extra").path(path.clone());
                let _in_extra = t.enter();
                let data = with_retries(
                    options.load.retries,
                    &log,
                    rank,
                    "load/extra",
                    Some(&path),
                    || backend.read(&path),
                )?;
                t.add_bytes(data.len() as u64);
                Some(ExtraState::unpack(&data).ok_or_else(|| {
                    BcpError::Corrupt(format!("extra state file {f} is unreadable"))
                })?)
            }
            None => None,
        }
    };

    // Step 6: the optimized collective barrier guarantees atomicity.
    faults.check("load/barrier")?;
    {
        let _t = root.child("sync/load_barrier").attr("collective", ctx.comm.backend_info());
        ctx.comm.barrier()?;
    }
    // Recovery-tier breakdown: which tier served each shard, recorded both
    // in the report and as a telemetry span so the persisted artifact (and
    // `bcpctl report --load`) can show it.
    let tier = tiered.as_ref().map(|t| {
        let b = TierBreakdown::from_backend(t, fallbacks);
        let mut span = root.child("load/tier").uncounted();
        span.set_attr("hot_files", b.hot_files.to_string());
        span.set_attr("cold_files", b.cold_files.to_string());
        span.set_attr("hot_bytes", b.hot_bytes.to_string());
        span.set_attr("cold_bytes", b.cold_bytes.to_string());
        span.set_attr("fallbacks", b.fallbacks.len().to_string());
        if !b.fallbacks.is_empty() {
            span.set_attr("fallback_reasons", b.fallbacks.join("; "));
        }
        b
    });
    // Close the root span, then persist this load's telemetry next to the
    // checkpoint (best-effort, separate artifact from the save's).
    drop(root);
    if let Some(hub) = &telemetry {
        let mine = collect_rank_telemetry(hub, &log, rank, step, "load");
        if let Err(e) =
            persist_step_telemetry(&ctx.comm, &backend, prefix, mine, TELEMETRY_LOAD_FILE)
        {
            log.log(FailureRecord {
                rank,
                stage: "load/telemetry".into(),
                path: Some(format!("{prefix}/{TELEMETRY_LOAD_FILE}")),
                attempt: 1,
                error: e.to_string(),
                retried: false,
            });
        }
    }
    Ok(LoadReport { stats, metadata, extra, tier })
}
