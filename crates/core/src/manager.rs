//! Checkpoint lifecycle management: step discovery, retention, and garbage
//! collection.
//!
//! "Given that various hardware failures and software bugs are inevitable
//! during training, storing checkpoints at different global training steps
//! is necessary to safeguard training" (§2.1) — and §5.1's cool-down story
//! implies managed retention. This module provides the job-level view over a
//! checkpoint root: `<root>/step_<N>/...`, one committed checkpoint per
//! step, newest steps kept, stale ones garbage-collected.

use crate::integrity::is_committed;
use crate::metadata::{GlobalMetadata, COMPLETE_MARKER, METADATA_FILE};
use crate::{BcpError, Result};
use bcp_storage::{DynBackend, StorageError};

/// A discovered checkpoint under a root prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointRef {
    /// Global training step.
    pub step: u64,
    /// Full prefix (`<root>/step_<N>`).
    pub prefix: String,
    /// Whether the `COMPLETE` marker is present.
    pub committed: bool,
}

/// A step set aside by verified-fallback loading because it failed
/// verification — surfaced through `LoadOutcome` so the trainer knows why
/// it resumed from an older step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedStep {
    /// The step that failed verification.
    pub step: u64,
    /// Human-readable reason (first scrub issue, typically).
    pub reason: String,
}

/// Manages the checkpoints of one job under a root prefix.
pub struct CheckpointManager {
    backend: DynBackend,
    root: String,
}

impl CheckpointManager {
    /// Manage checkpoints under `root` (no trailing slash).
    pub fn new(backend: DynBackend, root: impl Into<String>) -> CheckpointManager {
        CheckpointManager { backend, root: root.into() }
    }

    /// The canonical prefix for a step.
    pub fn prefix_for(&self, step: u64) -> String {
        format!("{}/step_{step}", self.root)
    }

    /// Discover all checkpoints under the root, ascending by step.
    /// Uncommitted (torn / in-progress) checkpoints are included with
    /// `committed = false` so callers can garbage-collect them.
    pub fn list(&self) -> Result<Vec<CheckpointRef>> {
        let keys = self.backend.list(&format!("{}/step_", self.root))?;
        let mut steps: Vec<u64> = keys
            .iter()
            .filter_map(|k| {
                let rest = k.strip_prefix(&format!("{}/step_", self.root))?;
                let (step_str, _) = rest.split_once('/')?;
                step_str.parse::<u64>().ok()
            })
            .collect();
        steps.sort_unstable();
        steps.dedup();
        steps
            .into_iter()
            .map(|step| {
                let prefix = self.prefix_for(step);
                Ok(CheckpointRef { step, committed: is_committed(&self.backend, &prefix)?, prefix })
            })
            .collect()
    }

    /// The newest *committed* checkpoint, if any — what training resumption
    /// loads after a failure.
    pub fn latest(&self) -> Result<Option<CheckpointRef>> {
        Ok(self.list()?.into_iter().rev().find(|c| c.committed))
    }

    /// Read a checkpoint's global metadata.
    pub fn metadata(&self, step: u64) -> Result<GlobalMetadata> {
        let bytes = self.backend.read(&format!("{}/{METADATA_FILE}", self.prefix_for(step)))?;
        GlobalMetadata::from_bytes(&bytes).map_err(BcpError::Corrupt)
    }

    /// Delete a checkpoint entirely (all files under its prefix). The
    /// `COMPLETE` marker is removed *first*, so a reader racing with the
    /// deletion sees an uncommitted checkpoint, never a torn "committed"
    /// one. Already-missing files are treated as deleted — a GC pass that
    /// crashed mid-deletion must be re-runnable, not error on the files the
    /// first pass already reclaimed.
    pub fn delete(&self, step: u64) -> Result<()> {
        let prefix = self.prefix_for(step);
        let marker = format!("{prefix}/{COMPLETE_MARKER}");
        if self.backend.exists(&marker)? {
            ignore_not_found(self.backend.delete(&marker))?;
        }
        for key in self.backend.list(&format!("{prefix}/"))? {
            ignore_not_found(self.backend.delete(&key))?;
        }
        Ok(())
    }

    /// Move every file of a step aside to `<root>/quarantine/step_<N>/`
    /// instead of deleting it, for post-mortem analysis of a checkpoint
    /// that failed verification. The marker is deleted first (same
    /// reader-race argument as [`CheckpointManager::delete`]), so the step
    /// is never half-visible as committed; the quarantine prefix does not
    /// match `step_<N>` discovery, so quarantined data is invisible to
    /// [`CheckpointManager::list`]. Returns the quarantine prefix.
    pub fn quarantine(&self, step: u64) -> Result<String> {
        let prefix = self.prefix_for(step);
        let dest_prefix = format!("{}/quarantine/step_{step}", self.root);
        let marker = format!("{prefix}/{COMPLETE_MARKER}");
        if self.backend.exists(&marker)? {
            ignore_not_found(self.backend.delete(&marker))?;
        }
        for key in self.backend.list(&format!("{prefix}/"))? {
            let rel = key.strip_prefix(&format!("{prefix}/")).unwrap_or(&key);
            ignore_not_found(self.backend.rename(&key, &format!("{dest_prefix}/{rel}")))?;
        }
        Ok(dest_prefix)
    }

    /// Retention pass: keep the newest `keep_last` committed checkpoints,
    /// delete older committed ones and every uncommitted leftover. Returns
    /// the steps deleted. `keep_last` must be ≥ 1 — a job must always keep a
    /// recovery point.
    pub fn retain_last(&self, keep_last: usize) -> Result<Vec<u64>> {
        if keep_last == 0 {
            return Err(BcpError::Plan("retain_last(0) would delete every recovery point".into()));
        }
        let all = self.list()?;
        let committed: Vec<&CheckpointRef> = all.iter().filter(|c| c.committed).collect();
        let cutoff = committed.len().saturating_sub(keep_last);
        let mut deleted = Vec::new();
        for c in &committed[..cutoff] {
            self.delete(c.step)?;
            deleted.push(c.step);
        }
        // Torn checkpoints are never useful; collect them too — except the
        // newest step overall, which may be a save still in flight.
        let newest = all.last().map(|c| c.step);
        for c in all.iter().filter(|c| !c.committed) {
            if Some(c.step) != newest {
                self.delete(c.step)?;
                deleted.push(c.step);
            }
        }
        deleted.sort_unstable();
        Ok(deleted)
    }

    /// Crash-recovery GC: delete *every* uncommitted step prefix, including
    /// the newest. Unlike [`CheckpointManager::retain_last`] — which spares
    /// the newest uncommitted step because a save may still be in flight —
    /// this runs on restart, when the crash guarantees no save is in flight
    /// and any torn prefix is garbage. Returns the steps deleted, ascending.
    pub fn gc_torn(&self) -> Result<Vec<u64>> {
        let mut deleted = Vec::new();
        for c in self.list()?.iter().filter(|c| !c.committed) {
            self.delete(c.step)?;
            deleted.push(c.step);
        }
        Ok(deleted)
    }

    /// The job root this manager operates on.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// Total stored bytes per checkpoint (capacity accounting; the paper's
    /// storage-side monitoring watches exactly this).
    pub fn stored_bytes(&self, step: u64) -> Result<u64> {
        let mut total = 0;
        for key in self.backend.list(&format!("{}/", self.prefix_for(step)))? {
            total += self.backend.size(&key)?;
        }
        Ok(total)
    }
}

/// Map `NotFound` to success: deletion/rename of an already-reclaimed file
/// is the outcome the caller wanted.
fn ignore_not_found(r: bcp_storage::Result<()>) -> Result<()> {
    match r {
        Err(StorageError::NotFound(_)) => Ok(()),
        other => Ok(other?),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_storage::MemoryBackend;
    use bytes::Bytes;
    use std::sync::Arc;

    fn fake_checkpoint(backend: &DynBackend, root: &str, step: u64, committed: bool) {
        let prefix = format!("{root}/step_{step}");
        backend.write(&format!("{prefix}/model_0.bin"), Bytes::from(vec![0u8; 64])).unwrap();
        let meta = GlobalMetadata::new("ddp", step, "TP=1,DP=1,PP=1", 1);
        backend.write(&format!("{prefix}/{METADATA_FILE}"), Bytes::from(meta.to_bytes())).unwrap();
        if committed {
            backend
                .write(&format!("{prefix}/{COMPLETE_MARKER}"), Bytes::from_static(b"ok"))
                .unwrap();
        }
    }

    fn manager_with(steps: &[(u64, bool)]) -> (CheckpointManager, DynBackend) {
        let backend: DynBackend = Arc::new(MemoryBackend::new());
        for &(step, committed) in steps {
            fake_checkpoint(&backend, "job", step, committed);
        }
        (CheckpointManager::new(backend.clone(), "job"), backend)
    }

    #[test]
    fn list_orders_and_flags_commit_state() {
        let (m, _) = manager_with(&[(300, true), (100, true), (200, false)]);
        let list = m.list().unwrap();
        assert_eq!(
            list.iter().map(|c| (c.step, c.committed)).collect::<Vec<_>>(),
            vec![(100, true), (200, false), (300, true)]
        );
    }

    #[test]
    fn latest_skips_uncommitted() {
        let (m, _) = manager_with(&[(100, true), (200, true), (300, false)]);
        assert_eq!(m.latest().unwrap().unwrap().step, 200);
        let (m, _) = manager_with(&[(100, false)]);
        assert!(m.latest().unwrap().is_none());
    }

    #[test]
    fn retain_last_deletes_old_and_torn() {
        let (m, backend) =
            manager_with(&[(100, true), (150, false), (200, true), (300, true), (400, false)]);
        let deleted = m.retain_last(2).unwrap();
        // 100 is old-committed; 150 is torn; 400 is the newest step (an
        // in-flight save) and survives.
        assert_eq!(deleted, vec![100, 150]);
        let remaining: Vec<u64> = m.list().unwrap().iter().map(|c| c.step).collect();
        assert_eq!(remaining, vec![200, 300, 400]);
        assert!(!backend.exists("job/step_100/model_0.bin").unwrap());
        assert!(backend.exists("job/step_200/COMPLETE").unwrap());
    }

    #[test]
    fn gc_torn_deletes_every_uncommitted_step() {
        let (m, backend) = manager_with(&[(100, true), (150, false), (200, true), (400, false)]);
        let deleted = m.gc_torn().unwrap();
        // Restart semantics: even the newest uncommitted step goes — the
        // crash means nothing is in flight.
        assert_eq!(deleted, vec![150, 400]);
        let remaining: Vec<u64> = m.list().unwrap().iter().map(|c| c.step).collect();
        assert_eq!(remaining, vec![100, 200]);
        assert!(backend.list("job/step_150/").unwrap().is_empty());
        assert!(backend.list("job/step_400/").unwrap().is_empty());
        // Idempotent on a clean root.
        assert!(m.gc_torn().unwrap().is_empty());
    }

    #[test]
    fn gc_torn_is_idempotent_under_partial_deletion() {
        // Model a GC that crashed mid-deletion: the marker and some files
        // of a torn step are already gone. A second pass must reclaim the
        // rest and succeed, not error on the missing files.
        let (m, backend) = manager_with(&[(100, true), (200, false)]);
        backend.delete("job/step_200/model_0.bin").unwrap();
        let deleted = m.gc_torn().unwrap();
        assert_eq!(deleted, vec![200]);
        assert!(backend.list("job/step_200/").unwrap().is_empty());
        // And again on the now-clean root.
        assert!(m.gc_torn().unwrap().is_empty());
    }

    #[test]
    fn delete_tolerates_concurrently_missing_files() {
        let (m, backend) = manager_with(&[(100, true)]);
        backend.delete("job/step_100/COMPLETE").unwrap();
        backend.delete("job/step_100/model_0.bin").unwrap();
        m.delete(100).unwrap();
        assert!(backend.list("job/step_100/").unwrap().is_empty());
    }

    #[test]
    fn quarantine_moves_step_aside_and_hides_it() {
        let (m, backend) = manager_with(&[(100, true), (200, true)]);
        let dest = m.quarantine(200).unwrap();
        assert_eq!(dest, "job/quarantine/step_200");
        // Original prefix is empty; quarantine holds the files (minus the
        // marker, which is deleted so the data can never read as committed).
        assert!(backend.list("job/step_200/").unwrap().is_empty());
        let moved = backend.list("job/quarantine/step_200/").unwrap();
        assert!(moved.contains(&"job/quarantine/step_200/model_0.bin".to_string()));
        assert!(!moved.contains(&"job/quarantine/step_200/COMPLETE".to_string()));
        // Discovery no longer sees the step; latest falls back.
        assert_eq!(m.latest().unwrap().unwrap().step, 100);
    }

    #[test]
    fn retain_zero_is_refused() {
        let (m, _) = manager_with(&[(1, true)]);
        assert!(m.retain_last(0).is_err());
    }

    #[test]
    fn delete_removes_marker_first_then_files() {
        let (m, backend) = manager_with(&[(100, true)]);
        m.delete(100).unwrap();
        assert!(m.list().unwrap().is_empty());
        assert!(backend.list("job/step_100/").unwrap().is_empty());
    }

    #[test]
    fn metadata_and_size_accounting() {
        let (m, _) = manager_with(&[(100, true)]);
        assert_eq!(m.metadata(100).unwrap().step, 100);
        assert!(m.stored_bytes(100).unwrap() > 64);
        assert!(m.metadata(999).is_err());
    }
}
