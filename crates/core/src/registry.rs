//! Backend registry: checkpoint URI → storage backend resolution.
//!
//! "The Engine analyzes the given checkpoint path to determine the
//! appropriate storage backend, then interacts with the Storage I/O layer"
//! (§3.1).

use crate::{BcpError, Result};
use bcp_storage::uri::Scheme;
use bcp_storage::{DynBackend, StorageUri};
use std::collections::HashMap;

/// Maps URI schemes (and optionally authorities) to backend instances.
#[derive(Default)]
pub struct BackendRegistry {
    by_scheme: HashMap<Scheme, DynBackend>,
    by_authority: HashMap<(Scheme, String), DynBackend>,
}

impl BackendRegistry {
    /// Empty registry.
    pub fn new() -> BackendRegistry {
        BackendRegistry::default()
    }

    /// Register the default backend for a scheme.
    pub fn register(&mut self, scheme: Scheme, backend: DynBackend) -> &mut Self {
        self.by_scheme.insert(scheme, backend);
        self
    }

    /// Register a backend for a specific authority (e.g. one HDFS cluster).
    pub fn register_authority(
        &mut self,
        scheme: Scheme,
        authority: impl Into<String>,
        backend: DynBackend,
    ) -> &mut Self {
        self.by_authority.insert((scheme, authority.into()), backend);
        self
    }

    /// Resolve a parsed URI to its backend.
    pub fn resolve(&self, uri: &StorageUri) -> Result<DynBackend> {
        if let Some(b) = self.by_authority.get(&(uri.scheme, uri.authority.clone())) {
            return Ok(b.clone());
        }
        self.by_scheme.get(&uri.scheme).cloned().ok_or_else(|| {
            BcpError::Plan(format!("no backend registered for scheme {:?}", uri.scheme))
        })
    }

    /// Convenience: a registry with in-memory backends for every scheme
    /// (tests and examples that don't care about persistence).
    pub fn all_memory() -> BackendRegistry {
        let mut r = BackendRegistry::new();
        let mem: DynBackend = std::sync::Arc::new(bcp_storage::MemoryBackend::new());
        for scheme in [Scheme::Memory, Scheme::File, Scheme::Hdfs, Scheme::Nas] {
            r.register(scheme, mem.clone());
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_storage::MemoryBackend;
    use std::sync::Arc;

    #[test]
    fn resolves_scheme_and_authority() {
        let mut reg = BackendRegistry::new();
        let default_hdfs: DynBackend = Arc::new(MemoryBackend::new());
        let cluster_b: DynBackend = Arc::new(MemoryBackend::new());
        reg.register(Scheme::Hdfs, default_hdfs.clone());
        reg.register_authority(Scheme::Hdfs, "cluster-b", cluster_b.clone());

        let u1 = StorageUri::parse("hdfs://cluster-a/x").unwrap();
        let u2 = StorageUri::parse("hdfs://cluster-b/x").unwrap();
        assert!(Arc::ptr_eq(&reg.resolve(&u1).unwrap(), &default_hdfs));
        assert!(Arc::ptr_eq(&reg.resolve(&u2).unwrap(), &cluster_b));

        let u3 = StorageUri::parse("mem://m/x").unwrap();
        assert!(matches!(reg.resolve(&u3), Err(BcpError::Plan(_))));
    }
}
