//! The user-facing API (§3.1, Fig. 5): `bytecheckpoint.save` /
//! `bytecheckpoint.load` as a [`Checkpointer`] each training worker holds.
//!
//! ```text
//! # the paper's Python                      # this crate
//! bytecheckpoint.save(path, state, ...)  →  ckpt.save(&SaveRequest { .. })
//! bytecheckpoint.load(path, state, ...)  →  ckpt.load(&mut LoadRequest { .. })
//! ```
//!
//! "This high-level entrypoint abstracts underlying system complexities,
//! such as sharding specification, save/reshard plan generation, and I/O
//! operations."
//!
//! Construction goes through [`Checkpointer::builder`]; checkpoint
//! addresses are typed [`CheckpointLocation`]s (built from `&str`, `String`
//! or `StorageUri` via `Into`), so a malformed URI fails at request
//! construction rather than mid-save. After a crash,
//! [`Checkpointer::load_latest`] garbage-collects torn steps under a root
//! and resumes from the newest committed one.

use crate::engine::iopool::IoPool;
use crate::engine::pool::PinnedPool;
use crate::fault::{FaultHook, FaultPlan};
use crate::hottier::{assemble_hot_step, HotTierConfig, TierBreakdown};
use crate::integrity::{FailureLog, FailureRecord, RetryPolicy};
use crate::loader_reshard::load_loader_states;
use crate::manager::{CheckpointManager, QuarantinedStep};
use crate::planner::cache::PlanCache;
use crate::registry::BackendRegistry;
use crate::scrub::scrub_step;
use crate::workflow::{
    load_checkpoint_tiered, save_checkpoint_hot, JobContext, LoadReport, SaveArgs, SaveTicket,
    TierOverlay, WorkflowOptions,
};
use crate::{BcpError, Result};
use bcp_collectives::Communicator;
use bcp_dataloader::{LoaderReplicatedState, LoaderShardState};
use bcp_model::{ExtraState, Framework, TrainState};
use bcp_monitor::{MetricsHub, MetricsSink};
use bcp_storage::{CheckpointLocation, DynBackend, HotTier, InstrumentedBackend};
use bcp_topology::Parallelism;
use std::sync::Arc;

/// A save request: what to checkpoint and where.
pub struct SaveRequest<'a> {
    /// Checkpoint location, e.g. `"hdfs://cluster/ckpts/job1/step_500".into()`.
    pub location: CheckpointLocation,
    /// GPU states (model + optimizer dicts).
    pub state: &'a TrainState,
    /// Dataloader states (only ranks holding dataloader state pass these).
    pub loader: Option<(&'a LoaderReplicatedState, &'a LoaderShardState)>,
    /// Extra CPU state.
    pub extra: Option<&'a ExtraState>,
    /// Global step.
    pub step: u64,
}

impl<'a> SaveRequest<'a> {
    /// A request with no dataloader or extra state.
    pub fn new(
        location: impl Into<CheckpointLocation>,
        state: &'a TrainState,
        step: u64,
    ) -> SaveRequest<'a> {
        SaveRequest { location: location.into(), state, loader: None, extra: None, step }
    }

    /// Attach dataloader states (ranks that hold a dataloader shard).
    pub fn with_loader(
        mut self,
        replicated: &'a LoaderReplicatedState,
        shard: &'a LoaderShardState,
    ) -> SaveRequest<'a> {
        self.loader = Some((replicated, shard));
        self
    }

    /// Attach extra CPU state.
    pub fn with_extra(mut self, extra: &'a ExtraState) -> SaveRequest<'a> {
        self.extra = Some(extra);
        self
    }
}

/// The dataloader resharding target of a load: which data-parallel layout
/// the restored dataloader states should be cut to.
///
/// Replaces the old positional `(dp_size, workers_per_rank, my_dp_rank)`
/// tuple — the three fields are all `usize`, so the tuple invited silent
/// transpositions. Serializable so a [`crate::spec::JobSpec`] can carry it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct LoaderTarget {
    /// Data-parallel world size of the *resuming* job.
    pub dp_size: usize,
    /// Dataloader workers per rank in the resuming job.
    pub workers_per_rank: usize,
    /// This rank's data-parallel index.
    pub my_dp_rank: usize,
}

impl LoaderTarget {
    /// Build a target from the three degrees.
    pub fn new(dp_size: usize, workers_per_rank: usize, my_dp_rank: usize) -> LoaderTarget {
        LoaderTarget { dp_size, workers_per_rank, my_dp_rank }
    }
}

/// A load request: the target states to fill. The state dict's sharding
/// specs define the *target* parallelism; resharding happens automatically
/// when it differs from the source.
pub struct LoadRequest<'a> {
    /// Checkpoint location to load.
    pub location: CheckpointLocation,
    /// Target state; tensor values are replaced in place.
    pub state: &'a mut TrainState,
    /// Request dataloader states resharded to this target, when the caller
    /// drives a dataloader.
    pub loader_target: Option<LoaderTarget>,
}

impl<'a> LoadRequest<'a> {
    /// A request with no dataloader target.
    pub fn new(
        location: impl Into<CheckpointLocation>,
        state: &'a mut TrainState,
    ) -> LoadRequest<'a> {
        LoadRequest { location: location.into(), state, loader_target: None }
    }

    /// Request dataloader states resharded to `target`.
    pub fn with_loader_target(mut self, target: LoaderTarget) -> LoadRequest<'a> {
        self.loader_target = Some(target);
        self
    }
}

/// What a load returns.
pub struct LoadOutcome {
    /// Workflow-level report (engine stats, metadata, extra state).
    pub report: LoadReport,
    /// Resharded dataloader states, when requested and present.
    pub loader: Option<(LoaderReplicatedState, LoaderShardState)>,
    /// Steps verified-fallback loading set aside because they failed
    /// verification (newest first). Empty for direct loads and for clean
    /// `load_latest` resumes.
    pub quarantined: Vec<QuarantinedStep>,
}

impl LoadOutcome {
    /// Recovery-tier breakdown of this load, when it ran through the hot
    /// tier (`None` for plain cold loads).
    pub fn tier(&self) -> Option<&TierBreakdown> {
        self.report.tier.as_ref()
    }

    /// Fraction of shard files served from the hot tier (0 for cold loads).
    pub fn hot_fraction(&self) -> f64 {
        self.report.tier.as_ref().map(TierBreakdown::hot_fraction).unwrap_or(0.0)
    }
}

impl LoadOutcome {
    /// The global step the loaded checkpoint was saved at — where training
    /// resumes from.
    pub fn resumed_step(&self) -> u64 {
        self.report.metadata.step
    }

    /// Whether the load fell back past at least one quarantined step — the
    /// trainer resumed from an *older* checkpoint than the newest on disk.
    pub fn fell_back(&self) -> bool {
        !self.quarantined.is_empty()
    }
}

/// Builder for [`Checkpointer`] — the supported construction path.
///
/// ```no_run
/// # use bcp_core::{Checkpointer, BackendRegistry};
/// # use bcp_core::integrity::RetryPolicy;
/// # use bcp_model::Framework;
/// # use bcp_topology::Parallelism;
/// # use std::sync::Arc;
/// # use std::time::Duration;
/// # fn demo(comm: bcp_collectives::Communicator) -> bcp_core::Result<()> {
/// let ckpt = Checkpointer::builder(comm)
///     .framework(Framework::Ddp)
///     .parallelism(Parallelism::data_parallel(4).unwrap())
///     .registry(Arc::new(BackendRegistry::all_memory()))
///     .retry_policy(RetryPolicy::exponential(5, Duration::from_millis(20)))
///     .build()?;
/// # Ok(()) }
/// ```
pub struct CheckpointerBuilder {
    comm: Communicator,
    framework: Option<Framework>,
    parallelism: Option<Parallelism>,
    registry: Option<Arc<BackendRegistry>>,
    workflow: WorkflowOptions,
    sink: MetricsSink,
    telemetry: bool,
    hot_handle: Option<Arc<HotTier>>,
}

impl CheckpointerBuilder {
    fn new(comm: Communicator) -> CheckpointerBuilder {
        CheckpointerBuilder {
            comm,
            framework: None,
            parallelism: None,
            registry: None,
            workflow: WorkflowOptions::default(),
            sink: MetricsSink::disabled(),
            telemetry: true,
            hot_handle: None,
        }
    }

    /// Training framework whose planner interprets the state dicts
    /// (required).
    pub fn framework(mut self, framework: Framework) -> CheckpointerBuilder {
        self.framework = Some(framework);
        self
    }

    /// Current parallelism configuration (required).
    pub fn parallelism(mut self, parallelism: Parallelism) -> CheckpointerBuilder {
        self.parallelism = Some(parallelism);
        self
    }

    /// URI-scheme → backend registry (required).
    pub fn registry(mut self, registry: Arc<BackendRegistry>) -> CheckpointerBuilder {
        self.registry = Some(registry);
        self
    }

    /// Replace the whole workflow/engine option block (defaults = all
    /// optimizations on).
    pub fn workflow(mut self, workflow: WorkflowOptions) -> CheckpointerBuilder {
        self.workflow = workflow;
        self
    }

    /// Retry policy for every storage operation of both pipelines.
    pub fn retry_policy(mut self, retries: RetryPolicy) -> CheckpointerBuilder {
        self.workflow.save.retries = retries;
        self.workflow.load.retries = retries;
        self
    }

    /// Injected crash schedule (recovery tests only).
    pub fn fault_plan(mut self, faults: FaultPlan) -> CheckpointerBuilder {
        self.workflow.faults = faults;
        self
    }

    /// Verified-fallback loading for [`Checkpointer::load_latest`]: scrub
    /// the newest committed step before loading it, and when it fails CRC
    /// or metadata cross-checks, quarantine it and fall back to the
    /// previous committed step instead of erroring. Defaults to **on**.
    pub fn verified_fallback(mut self, enabled: bool) -> CheckpointerBuilder {
        self.workflow.verified_fallback = enabled;
        self
    }

    /// Tiered recovery (hot tier): replicate every committed step's shard
    /// files into an in-process bounded ring on this rank and on `R` peer
    /// ranks placed on other hosts, and let [`Checkpointer::load_latest`]
    /// recover through those copies before the persistent tree. Defaults to
    /// **off**; must agree across ranks (the replication exchange and the
    /// recovery assembly are symmetric collectives).
    ///
    /// Takes the whole [`HotTierConfig`] block; a bare `bool` still works
    /// (`true` = enabled with the default shape):
    ///
    /// ```ignore
    /// builder.hot_tier(HotTierConfig::enabled().replicas(2).gpus_per_host(8))
    /// ```
    pub fn hot_tier(mut self, config: impl Into<HotTierConfig>) -> CheckpointerBuilder {
        self.workflow.hot = config.into();
        self
    }

    /// Peer replicas per shard (R) for the hot tier.
    #[deprecated(since = "0.3.0", note = "use hot_tier(HotTierConfig::enabled().replicas(..))")]
    pub fn hot_tier_replicas(mut self, replicas: usize) -> CheckpointerBuilder {
        self.workflow.hot.replicas = replicas;
        self
    }

    /// Hot-ring capacity in steps (K).
    #[deprecated(
        since = "0.3.0",
        note = "use hot_tier(HotTierConfig::enabled().capacity_steps(..))"
    )]
    pub fn hot_tier_capacity(mut self, steps: usize) -> CheckpointerBuilder {
        self.workflow.hot.capacity_steps = steps.max(1);
        self
    }

    /// Ranks per failure domain (host) for replica placement.
    #[deprecated(
        since = "0.3.0",
        note = "use hot_tier(HotTierConfig::enabled().gpus_per_host(..))"
    )]
    pub fn hot_tier_layout(mut self, gpus_per_host: usize) -> CheckpointerBuilder {
        self.workflow.hot.gpus_per_host = gpus_per_host.max(1);
        self
    }

    /// Use an externally-owned [`HotTier`] instead of a private one —
    /// modeling host memory that outlives a worker process (the chaos
    /// harness restarts `Checkpointer`s against the same tiers). Implies
    /// [`CheckpointerBuilder::hot_tier`]`(true)`.
    pub fn hot_tier_handle(mut self, tier: Arc<HotTier>) -> CheckpointerBuilder {
        self.workflow.hot.enabled = true;
        self.hot_handle = Some(tier);
        self
    }

    /// Metrics destination (defaults to disabled).
    pub fn sink(mut self, sink: MetricsSink) -> CheckpointerBuilder {
        self.sink = sink;
        self
    }

    /// Per-step telemetry artifacts (§5.3): trace every save/load into a
    /// private hub, wrap storage backends for per-operation spans, and
    /// persist a `_telemetry.jsonl` next to each committed checkpoint for
    /// offline analysis with `bcpctl report`. Defaults to **on**.
    ///
    /// Persistence gathers all ranks' telemetry at the coordinator, so the
    /// setting must be identical on every rank of the job.
    pub fn telemetry(mut self, enabled: bool) -> CheckpointerBuilder {
        self.telemetry = enabled;
        self
    }

    /// Build, failing with [`BcpError::Plan`] if a required field is unset.
    pub fn build(self) -> Result<Checkpointer> {
        let framework = self
            .framework
            .ok_or_else(|| BcpError::Plan("Checkpointer::builder: framework is required".into()))?;
        let parallelism = self.parallelism.ok_or_else(|| {
            BcpError::Plan("Checkpointer::builder: parallelism is required".into())
        })?;
        let registry = self
            .registry
            .ok_or_else(|| BcpError::Plan("Checkpointer::builder: registry is required".into()))?;
        // The effective sink fans every event out to the caller's sink AND a
        // private bounded hub the telemetry artifacts are cut from. Bounded:
        // a stalled consumer costs events (counted in `dropped_records`),
        // never memory or training time.
        let (telemetry, sink) = if self.telemetry {
            let hub = Arc::new(MetricsHub::bounded(1 << 16));
            let sink = MetricsSink::fanout(vec![self.sink.clone(), hub.sink()]);
            (Some(hub), sink)
        } else {
            (None, self.sink)
        };
        let io_threads = self.workflow.save.io_threads.max(self.workflow.load.io_threads);
        let hot = self.workflow.hot.enabled.then(|| {
            self.hot_handle
                .unwrap_or_else(|| Arc::new(HotTier::new(self.workflow.hot.capacity_steps)))
        });
        Ok(Checkpointer {
            ctx: JobContext { comm: self.comm, framework, parallelism },
            registry,
            options: self.workflow,
            sink,
            cache: Arc::new(PlanCache::new()),
            pool: PinnedPool::new(2),
            io: IoPool::new(io_threads),
            failures: Arc::new(FailureLog::new()),
            telemetry,
            hot,
        })
    }
}

/// Per-worker checkpointing handle: the Rust shape of the paper's
/// `bytecheckpoint` module entry points.
pub struct Checkpointer {
    ctx: JobContext,
    registry: Arc<BackendRegistry>,
    options: WorkflowOptions,
    sink: MetricsSink,
    cache: Arc<PlanCache>,
    pool: Arc<PinnedPool>,
    /// Persistent I/O worker pool shared by every save and load this
    /// checkpointer runs (replaces per-call thread spawns).
    io: Arc<IoPool>,
    failures: Arc<FailureLog>,
    telemetry: Option<Arc<MetricsHub>>,
    /// The in-process hot tier, when tiered recovery is enabled.
    hot: Option<Arc<HotTier>>,
}

impl Checkpointer {
    /// Start building a checkpointer for this worker.
    pub fn builder(comm: Communicator) -> CheckpointerBuilder {
        CheckpointerBuilder::new(comm)
    }

    /// This worker's rank.
    pub fn rank(&self) -> usize {
        self.ctx.rank()
    }

    /// The failure log (Appendix B): inspect after saves/loads.
    pub fn failures(&self) -> &FailureLog {
        &self.failures
    }

    /// Plan-cache statistics `(hits, misses)`.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// The private telemetry hub (when telemetry is enabled): the live span
    /// trees and records the per-step artifacts are cut from.
    pub fn telemetry_hub(&self) -> Option<&Arc<MetricsHub>> {
        self.telemetry.as_ref()
    }

    /// Wrap a resolved backend so every storage operation emits a
    /// `storage/<backend>/<op>` span, parented under whichever workflow
    /// phase issued it.
    fn instrumented(&self, backend: DynBackend) -> DynBackend {
        match &self.telemetry {
            Some(_) => Arc::new(InstrumentedBackend::new(backend, self.sink.clone(), self.rank())),
            None => backend,
        }
    }

    /// `bytecheckpoint.save`: checkpoint the given states under the
    /// request's location. Returns a ticket whose `blocking` is the
    /// checkpoint stall; `wait()` joins the asynchronous tail (upload,
    /// barrier, commit).
    pub fn save(&self, req: &SaveRequest<'_>) -> Result<SaveTicket> {
        let uri = req.location.uri();
        let backend = self.instrumented(self.registry.resolve(uri)?);
        save_checkpoint_hot(
            &self.ctx,
            backend,
            &uri.key,
            SaveArgs { state: req.state, loader: req.loader, extra: req.extra, step: req.step },
            &self.options,
            &self.cache,
            &self.pool,
            &self.io,
            &self.sink,
            self.failures.clone(),
            self.telemetry.clone(),
            self.hot.clone(),
        )
    }

    /// The in-process hot tier, when tiered recovery is enabled.
    pub fn hot_tier(&self) -> Option<&Arc<HotTier>> {
        self.hot.as_ref()
    }

    /// `bytecheckpoint.load`: fill the request's target states from the
    /// request's location, resharding automatically when the parallelism
    /// changed.
    pub fn load(&self, req: &mut LoadRequest<'_>) -> Result<LoadOutcome> {
        self.load_with_overlay(req, None)
    }

    fn load_with_overlay(
        &self,
        req: &mut LoadRequest<'_>,
        overlay: Option<TierOverlay>,
    ) -> Result<LoadOutcome> {
        let uri = req.location.uri().clone();
        let backend = self.instrumented(self.registry.resolve(&uri)?);
        let report = load_checkpoint_tiered(
            &self.ctx,
            backend.clone(),
            &uri.key,
            req.state,
            &self.options,
            &self.io,
            &self.sink,
            self.failures.clone(),
            0,
            self.telemetry.clone(),
            overlay,
        )?;
        let loader = match req.loader_target {
            Some(t) => load_loader_states(
                &backend,
                &uri.key,
                &report.metadata,
                t.dp_size,
                t.workers_per_rank,
                t.my_dp_rank,
            )?,
            None => None,
        };
        Ok(LoadOutcome { report, loader, quarantined: Vec::new() })
    }

    /// One-call crash recovery: under `root` (a job's checkpoint root
    /// holding `step_<N>` prefixes), garbage-collect torn steps, discover
    /// the newest committed one, and load it into `state`. Returns
    /// `Ok(None)` when no committed checkpoint exists (fresh start).
    ///
    /// The coordinator alone GCs and picks the step (so the decision is
    /// consistent even while torn prefixes are mid-deletion) and broadcasts
    /// it; every rank then runs the normal load workflow. The resumed step
    /// is available as [`LoadOutcome::resumed_step`].
    ///
    /// With verified fallback on (the default), the coordinator scrubs the
    /// candidate step *before* broadcasting it: a step whose CRCs or
    /// metadata cross-checks fail is logged to the [`FailureLog`],
    /// quarantined under `<root>/quarantine/`, and the previous committed
    /// step is tried instead — so one silently corrupted checkpoint costs
    /// one step of progress, never the job. The skipped steps are surfaced
    /// in [`LoadOutcome::quarantined`]. Verification happens coordinator-
    /// side precisely so the fallback never needs to abort a collective
    /// load mid-flight.
    pub fn load_latest(
        &self,
        root: impl Into<CheckpointLocation>,
        state: &mut TrainState,
        loader_target: Option<LoaderTarget>,
    ) -> Result<Option<LoadOutcome>> {
        let root: CheckpointLocation = root.into();
        let backend = self.registry.resolve(root.uri())?;
        let coordinator = self.ctx.coordinator();
        let decision: (Option<u64>, Vec<QuarantinedStep>) = if self.ctx.rank() == coordinator {
            let mgr = CheckpointManager::new(backend.clone(), root.uri().key.clone());
            mgr.gc_torn()?;
            let mut quarantined = Vec::new();
            let chosen = loop {
                let Some(candidate) = mgr.latest()? else { break None };
                if !self.options.verified_fallback {
                    break Some(candidate.step);
                }
                let report = scrub_step(&backend, &candidate.prefix, candidate.step)?;
                if report.is_clean() {
                    break Some(candidate.step);
                }
                let reason = report
                    .defects()
                    .first()
                    .map(|i| format!("{}: {}", i.path, i.detail))
                    .unwrap_or_else(|| "failed verification".into());
                self.failures.log(FailureRecord {
                    rank: self.ctx.rank(),
                    stage: "load/verify".into(),
                    path: Some(candidate.prefix.clone()),
                    attempt: 1,
                    error: reason.clone(),
                    retried: true,
                });
                mgr.quarantine(candidate.step)?;
                quarantined.push(QuarantinedStep { step: candidate.step, reason });
            };
            self.ctx.comm.broadcast(coordinator, Some((chosen, quarantined)))?
        } else {
            self.ctx.comm.broadcast(coordinator, None)?
        };
        let (chosen, quarantined) = decision;
        let Some(step) = chosen else { return Ok(None) };
        let location = root.join(&format!("step_{step}"));
        // Rung 1 of the recovery ladder: assemble the chosen step from the
        // peer-replicated hot tier (CRC-verified per file; any miss or
        // defect is recorded and simply reads cold). A collective — every
        // rank participates whenever the hot tier is enabled, even with an
        // empty ring.
        let overlay: Option<TierOverlay> = match (&self.hot, self.options.hot.enabled) {
            (Some(hot), true) => {
                let faults = {
                    let comm = self.ctx.comm.clone();
                    FaultHook::new(self.options.faults.clone(), self.ctx.rank())
                        .with_on_kill(move || comm.mark_self_failed())
                };
                let assembly =
                    assemble_hot_step(&self.ctx.comm, hot, &faults, step, &location.uri().key)?;
                Some((assembly.files, assembly.fallbacks))
            }
            _ => None,
        };
        let mut req = LoadRequest { location, state, loader_target };
        let mut outcome = self.load_with_overlay(&mut req, overlay)?;
        outcome.quarantined = quarantined;
        Ok(Some(outcome))
    }
}
