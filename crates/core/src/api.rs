//! The user-facing API (§3.1, Fig. 5): `bytecheckpoint.save` /
//! `bytecheckpoint.load` as a [`Checkpointer`] each training worker holds.
//!
//! ```text
//! # the paper's Python                      # this crate
//! bytecheckpoint.save(path, state, ...)  →  ckpt.save(&SaveRequest { .. })
//! bytecheckpoint.load(path, state, ...)  →  ckpt.load(&mut LoadRequest { .. })
//! ```
//!
//! "This high-level entrypoint abstracts underlying system complexities,
//! such as sharding specification, save/reshard plan generation, and I/O
//! operations."

use crate::engine::pool::PinnedPool;
use crate::integrity::FailureLog;
use crate::loader_reshard::load_loader_states;
use crate::planner::cache::PlanCache;
use crate::registry::BackendRegistry;
use crate::workflow::{
    load_checkpoint, save_checkpoint, JobContext, LoadReport, SaveArgs, SaveTicket,
    WorkflowOptions,
};
use crate::Result;
use bcp_collectives::Communicator;
use bcp_dataloader::{LoaderReplicatedState, LoaderShardState};
use bcp_model::{ExtraState, Framework, TrainState};
use bcp_monitor::MetricsSink;
use bcp_storage::StorageUri;
use bcp_topology::Parallelism;
use std::sync::Arc;

/// Construction-time options for a [`Checkpointer`].
pub struct CheckpointerOptions {
    /// Workflow and engine tuning (defaults = all optimizations on).
    pub workflow: WorkflowOptions,
    /// Metrics destination (defaults to disabled).
    pub sink: MetricsSink,
}

impl Default for CheckpointerOptions {
    fn default() -> CheckpointerOptions {
        CheckpointerOptions { workflow: WorkflowOptions::default(), sink: MetricsSink::disabled() }
    }
}

/// A save request: what to checkpoint and where.
pub struct SaveRequest<'a> {
    /// Checkpoint URI, e.g. `hdfs://cluster/ckpts/job1/step_500`.
    pub path: &'a str,
    /// GPU states (model + optimizer dicts).
    pub state: &'a TrainState,
    /// Dataloader states (only ranks holding dataloader state pass these).
    pub loader: Option<(&'a LoaderReplicatedState, &'a LoaderShardState)>,
    /// Extra CPU state.
    pub extra: Option<&'a ExtraState>,
    /// Global step.
    pub step: u64,
}

/// A load request: the target states to fill. The state dict's sharding
/// specs define the *target* parallelism; resharding happens automatically
/// when it differs from the source.
pub struct LoadRequest<'a> {
    /// Checkpoint URI to load.
    pub path: &'a str,
    /// Target state; tensor values are replaced in place.
    pub state: &'a mut TrainState,
    /// Request dataloader states resharded to this (dp_size,
    /// workers_per_rank, my_dp_rank), when the caller drives a dataloader.
    pub loader_target: Option<(usize, usize, usize)>,
}

/// What a load returns.
pub struct LoadOutcome {
    /// Workflow-level report (engine stats, metadata, extra state).
    pub report: LoadReport,
    /// Resharded dataloader states, when requested and present.
    pub loader: Option<(LoaderReplicatedState, LoaderShardState)>,
}

/// Per-worker checkpointing handle: the Rust shape of the paper's
/// `bytecheckpoint` module entry points.
pub struct Checkpointer {
    ctx: JobContext,
    registry: Arc<BackendRegistry>,
    options: WorkflowOptions,
    sink: MetricsSink,
    cache: Arc<PlanCache>,
    pool: Arc<PinnedPool>,
    failures: Arc<FailureLog>,
}

impl Checkpointer {
    /// Build a checkpointer for this worker.
    pub fn new(
        comm: Communicator,
        framework: Framework,
        parallelism: Parallelism,
        registry: Arc<BackendRegistry>,
        options: CheckpointerOptions,
    ) -> Checkpointer {
        Checkpointer {
            ctx: JobContext { comm, framework, parallelism },
            registry,
            options: options.workflow,
            sink: options.sink,
            cache: Arc::new(PlanCache::new()),
            pool: PinnedPool::new(2),
            failures: Arc::new(FailureLog::new()),
        }
    }

    /// This worker's rank.
    pub fn rank(&self) -> usize {
        self.ctx.rank()
    }

    /// The failure log (Appendix B): inspect after saves/loads.
    pub fn failures(&self) -> &FailureLog {
        &self.failures
    }

    /// Plan-cache statistics `(hits, misses)`.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// `bytecheckpoint.save`: checkpoint the given states under `path`.
    /// Returns a ticket whose `blocking` is the checkpoint stall; `wait()`
    /// joins the asynchronous tail (upload, barrier, commit).
    pub fn save(&self, req: &SaveRequest<'_>) -> Result<SaveTicket> {
        let uri = StorageUri::parse(req.path)?;
        let backend = self.registry.resolve(&uri)?;
        save_checkpoint(
            &self.ctx,
            backend,
            &uri.key,
            SaveArgs { state: req.state, loader: req.loader, extra: req.extra, step: req.step },
            &self.options,
            &self.cache,
            &self.pool,
            &self.sink,
            self.failures.clone(),
        )
    }

    /// `bytecheckpoint.load`: fill the request's target states from `path`,
    /// resharding automatically when the parallelism changed.
    pub fn load(&self, req: &mut LoadRequest<'_>) -> Result<LoadOutcome> {
        let uri = StorageUri::parse(req.path)?;
        let backend = self.registry.resolve(&uri)?;
        let report = load_checkpoint(
            &self.ctx,
            backend.clone(),
            &uri.key,
            req.state,
            &self.options,
            &self.sink,
            self.failures.clone(),
            0,
        )?;
        let loader = match req.loader_target {
            Some((dp, workers, my_dp)) => {
                load_loader_states(&backend, &uri.key, &report.metadata, dp, workers, my_dp)?
            }
            None => None,
        };
        Ok(LoadOutcome { report, loader })
    }
}
