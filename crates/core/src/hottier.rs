//! Tiered recovery: peer-replicated hot-tier checkpoints (TierCheck /
//! DataStates-LLM style, mapped onto this repo's machinery).
//!
//! Save side: after the coordinator commits a step, every rank inserts its
//! own serialized shard files into its in-process [`HotTier`] and ships a
//! copy to `R` peers over [`Communicator::send_async`] — placement decided
//! by the failure-domain-aware [`ReplicaPlacement`] (never on the source
//! host), entirely inside the save's asynchronous finalize tail so the
//! committed-save latency is unchanged.
//!
//! Load side: `load_latest` grows a recovery ladder. Survivors verify the
//! hot copies they hold for the chosen step frame-by-frame (the PR 4 CRC
//! machinery), re-fetch their own shards from whichever peer still holds a
//! clean replica, and serve the load through a
//! [`bcp_storage::TieredReadBackend`] overlay — any miss or verification
//! defect falls through to the persistent tree, and a corrupt persistent
//! step still falls back to quarantine as before. [`TierBreakdown`] records
//! which tier served each shard.

use crate::fault::FaultHook;
use crate::format::decode_frames;
use crate::{BcpError, Result};
use bcp_collectives::Communicator;
use bcp_storage::hot::{HotFiles, HotTier, TieredReadBackend};
use bcp_topology::ReplicaPlacement;
use bytes::Bytes;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Hot-tier configuration (must be identical on every rank of a job: the
/// replication exchange is a symmetric collective protocol).
///
/// Serializable so a [`crate::spec::JobSpec`] can carry it over the
/// control-plane wire. Build one with the chainable constructors:
///
/// ```
/// # use bcp_core::HotTierConfig;
/// let cfg = HotTierConfig::enabled().replicas(2).capacity_steps(3).gpus_per_host(8);
/// assert!(cfg.enabled);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HotTierConfig {
    /// Replicate committed shard frames into the in-process hot tier and
    /// recover through it. Defaults to **off** (opt-in).
    pub enabled: bool,
    /// Peer replicas per shard (R). Capped at `num_hosts - 1` by placement.
    pub replicas: usize,
    /// Hot-ring capacity in steps (K).
    pub capacity_steps: usize,
    /// Ranks per failure domain (host). 1 treats every rank as its own
    /// host — the right default for thread-per-rank jobs and single-GPU
    /// processes; real jobs pass their actual GPUs-per-host.
    pub gpus_per_host: usize,
}

impl Default for HotTierConfig {
    fn default() -> HotTierConfig {
        HotTierConfig { enabled: false, replicas: 1, capacity_steps: 2, gpus_per_host: 1 }
    }
}

impl HotTierConfig {
    /// An enabled tier with the default shape (R = 1, K = 2, one rank per
    /// host).
    pub fn enabled() -> HotTierConfig {
        HotTierConfig { enabled: true, ..HotTierConfig::default() }
    }

    /// Set the peer replica count (R).
    pub fn replicas(mut self, replicas: usize) -> HotTierConfig {
        self.replicas = replicas;
        self
    }

    /// Set the hot-ring capacity in steps (K); clamped to ≥ 1.
    pub fn capacity_steps(mut self, steps: usize) -> HotTierConfig {
        self.capacity_steps = steps.max(1);
        self
    }

    /// Set the failure-domain width; clamped to ≥ 1.
    pub fn gpus_per_host(mut self, gpus: usize) -> HotTierConfig {
        self.gpus_per_host = gpus.max(1);
        self
    }
}

/// `true` is an enabled tier with default shape; `false` disables it.
impl From<bool> for HotTierConfig {
    fn from(enabled: bool) -> HotTierConfig {
        HotTierConfig { enabled, ..HotTierConfig::default() }
    }
}

/// Pre-redesign name of [`HotTierConfig`].
#[deprecated(since = "0.3.0", note = "renamed to HotTierConfig")]
pub type HotTierOptions = HotTierConfig;

fn placement(comm: &Communicator, opts: &HotTierConfig) -> Result<ReplicaPlacement> {
    ReplicaPlacement::new(comm.size(), opts.gpus_per_host.max(1), opts.replicas)
        .map_err(|e| BcpError::Plan(format!("hot-tier placement: {e}")))
}

/// One peer-to-peer replication message: `(step, source rank, files)`.
type ReplicaMsg = (u64, usize, HotFiles);

/// Post-commit replication exchange (save finalize tail). Every rank
/// inserts its own files, ships them to its placement targets and stores
/// the replicas its peers ship to it. Symmetric: all ranks compute the same
/// placement, so the positional p2p matching lines up without negotiation.
///
/// Errors (a peer died mid-exchange) are returned for best-effort logging;
/// the rank's *own* insert has already happened by then, and a partially
/// replicated step merely lowers the hot hit rate — never correctness.
pub fn replicate_after_commit(
    comm: &Communicator,
    hot: &Arc<HotTier>,
    opts: &HotTierConfig,
    step: u64,
    files: HotFiles,
) -> Result<()> {
    let members = comm.members().to_vec();
    let rank = comm.rank();
    let me = comm.index();
    hot.insert(step, rank, files.clone());
    let placement = placement(comm, opts)?;
    for &t in &placement.targets(me) {
        comm.send_async::<ReplicaMsg>(members[t], (step, rank, files.clone()))?;
    }
    for &s in &placement.sources_for(me) {
        let (rstep, rsrc, rfiles): ReplicaMsg = comm.recv(members[s])?;
        hot.insert(rstep, rsrc, rfiles);
    }
    Ok(())
}

/// Frame-verify a held file set, dropping (and recording) defective files.
fn verify_files(files: HotFiles, source: usize, fallbacks: &mut Vec<String>) -> HotFiles {
    files
        .into_iter()
        .filter(|(name, bytes)| match decode_frames(bytes) {
            Ok(frames) if !frames.is_empty() => true,
            Ok(_) => {
                fallbacks.push(format!("hot copy {name} (rank {source}) holds no frames"));
                false
            }
            Err(e) => {
                fallbacks.push(format!("hot copy {name} (rank {source}) failed verification: {e}"));
                false
            }
        })
        .collect()
}

/// The assembled hot view of one step on this rank.
pub struct HotAssembly {
    /// Full object path (`<prefix>/<file>`) → verified bytes.
    pub files: HashMap<String, Bytes>,
    /// Why shards will fall through to the persistent tree (verification
    /// defects, missing replicas, dead peers).
    pub fallbacks: Vec<String>,
}

/// Rung 1 of the recovery ladder: assemble the chosen committed step from
/// hot copies. A collective — every rank must call it at the same point.
///
/// 1. Each rank CRC-verifies every file set it holds for `step` (its own
///    and peer replicas), dropping defects.
/// 2. Ranks `all_gather` who holds what; for every surviving source set,
///    the lowest-indexed clean holder ships it to every member lacking it
///    (full-union assembly: dedup'd read plans make a rank read files that
///    *other* ranks saved, so every rank needs every set). Shipped sets are
///    re-verified on receipt.
/// 3. The union of surviving sets becomes the read overlay; anything absent
///    is served by the cold backend underneath.
pub fn assemble_hot_step(
    comm: &Communicator,
    hot: &Arc<HotTier>,
    faults: &FaultHook,
    step: u64,
    prefix: &str,
) -> Result<HotAssembly> {
    faults.check("load/hot")?;
    let members = comm.members().to_vec();
    let me = comm.index();
    let mut fallbacks = Vec::new();

    // 1. Verify local holdings.
    let mut verified: HashMap<usize, HotFiles> = HashMap::new();
    for source in hot.sources(step) {
        let clean = verify_files(hot.get(step, source).unwrap_or_default(), source, &mut fallbacks);
        if !clean.is_empty() {
            verified.insert(source, clean);
        }
    }

    // 2. Who holds what (global source ranks, sorted for determinism).
    let mut held: Vec<usize> = verified.keys().copied().collect();
    held.sort_unstable();
    let summaries: Vec<Vec<usize>> = comm.all_gather(held)?;
    let all_sources: BTreeSet<usize> = summaries.iter().flatten().copied().collect();
    for &m in &members {
        if !all_sources.contains(&m) {
            fallbacks.push(format!(
                "no surviving hot copy of rank {m}'s shard files for step {step}: cold read"
            ));
        }
    }

    // 3. Full-union shipping: the lowest-indexed holder of each surviving
    //    source set ships it to every member lacking it. Both sides walk
    //    (source asc, needer asc), and `send_async` is eager, so the
    //    blocking recvs on each rank line up with the holders' send order.
    for &src in &all_sources {
        let holder_idx = summaries
            .iter()
            .enumerate()
            .filter(|(_, h)| h.contains(&src))
            .map(|(j, _)| j)
            .min()
            .expect("src came from summaries");
        for (needer_idx, held) in summaries.iter().enumerate() {
            if held.contains(&src) {
                continue;
            }
            if me == holder_idx {
                let payload = verified.get(&src).cloned().unwrap_or_default();
                if let Err(e) = comm.send_async::<HotFiles>(members[needer_idx], payload) {
                    fallbacks.push(format!(
                        "hot replica ship of rank {src}'s files to rank {} failed: {e}",
                        members[needer_idx]
                    ));
                }
            } else if me == needer_idx {
                match comm.recv::<HotFiles>(members[holder_idx]) {
                    Ok(files) => {
                        let clean = verify_files(files, src, &mut fallbacks);
                        if !clean.is_empty() {
                            verified.insert(src, clean);
                        }
                    }
                    Err(e) => fallbacks.push(format!(
                        "hot replica fetch of rank {src}'s files from rank {} failed: {e}",
                        members[holder_idx]
                    )),
                }
            }
        }
    }

    // 4. Overlay map over full object paths.
    let mut files = HashMap::new();
    for set in verified.values() {
        for (name, bytes) in set {
            files.insert(format!("{prefix}/{name}"), bytes.clone());
        }
    }
    Ok(HotAssembly { files, fallbacks })
}

/// Which tier served each shard of one load, cut from the
/// [`TieredReadBackend`]'s read log (shard files only: frame files named
/// `model_*` / `optim_*`; metadata, loader and extra state always read
/// cold and are not shards).
#[derive(Debug, Clone, Default)]
pub struct TierBreakdown {
    /// Distinct shard files served from the hot tier.
    pub hot_files: usize,
    /// Distinct shard files served from the persistent tree.
    pub cold_files: usize,
    /// Shard bytes served hot.
    pub hot_bytes: u64,
    /// Shard bytes served cold.
    pub cold_bytes: u64,
    /// Why shards fell through (empty when everything was served hot).
    pub fallbacks: Vec<String>,
}

fn is_shard_file(path: &str) -> bool {
    let name = path.rsplit('/').next().unwrap_or(path);
    name.ends_with(".bin") && (name.starts_with("model_") || name.starts_with("optim_"))
}

impl TierBreakdown {
    /// Summarize a finished tiered load.
    pub fn from_backend(tiered: &TieredReadBackend, fallbacks: Vec<String>) -> TierBreakdown {
        let mut hot_paths = BTreeSet::new();
        let mut cold_paths = BTreeSet::new();
        let mut hot_bytes = 0u64;
        let mut cold_bytes = 0u64;
        for hit in tiered.tier_log() {
            if !is_shard_file(&hit.path) {
                continue;
            }
            if hit.hot {
                hot_bytes += hit.bytes;
                hot_paths.insert(hit.path);
            } else {
                cold_bytes += hit.bytes;
                cold_paths.insert(hit.path);
            }
        }
        TierBreakdown {
            hot_files: hot_paths.len(),
            cold_files: cold_paths.len(),
            hot_bytes,
            cold_bytes,
            fallbacks,
        }
    }

    /// Fraction of shard files served from the hot tier (0 when no shard
    /// reads happened).
    pub fn hot_fraction(&self) -> f64 {
        let total = self.hot_files + self.cold_files;
        if total == 0 {
            0.0
        } else {
            self.hot_files as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::encode_frame;
    use crate::metadata::ShardMeta;
    use bcp_storage::{DynBackend, MemoryBackend, StorageBackend};
    use bcp_tensor::DType;

    fn frame_file() -> Bytes {
        let shard = ShardMeta { fqn: "w".into(), offsets: vec![0], lengths: vec![4] };
        let payload = [1u8; 16];
        let (buf, _) = encode_frame(&shard, DType::F32, &payload);
        buf.freeze()
    }

    #[test]
    fn verify_drops_corrupt_files_and_records_reasons() {
        let good = frame_file();
        let mut bad = good.to_vec();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF; // break the CRC trailer
        let mut fallbacks = Vec::new();
        let clean = verify_files(
            vec![("model_0.bin".into(), good), ("optim_0.bin".into(), Bytes::from(bad))],
            0,
            &mut fallbacks,
        );
        assert_eq!(clean.len(), 1);
        assert_eq!(clean[0].0, "model_0.bin");
        assert_eq!(fallbacks.len(), 1);
        assert!(fallbacks[0].contains("optim_0.bin"), "{fallbacks:?}");
    }

    #[test]
    fn breakdown_counts_shard_files_only() {
        let cold: DynBackend = std::sync::Arc::new(MemoryBackend::new());
        cold.write("s/metadata.json", Bytes::from_static(b"{}")).unwrap();
        cold.write("s/extra_0.bin", Bytes::from_static(b"xx")).unwrap();
        cold.write("s/optim_0.bin", Bytes::from_static(b"cccc")).unwrap();
        let mut hot = HashMap::new();
        hot.insert("s/model_0.bin".to_string(), Bytes::from_static(b"hhhhhhhh"));
        let t = TieredReadBackend::new(hot, cold);
        t.read("s/metadata.json").unwrap();
        t.read("s/extra_0.bin").unwrap();
        t.read_range("s/model_0.bin", 0, 8).unwrap();
        t.read_range("s/optim_0.bin", 0, 4).unwrap();
        let b = TierBreakdown::from_backend(&t, vec!["reason".into()]);
        assert_eq!((b.hot_files, b.cold_files), (1, 1));
        assert_eq!((b.hot_bytes, b.cold_bytes), (8, 4));
        assert!((b.hot_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(b.fallbacks, vec!["reason".to_string()]);
    }

    #[test]
    fn empty_breakdown_reports_zero_fraction() {
        assert_eq!(TierBreakdown::default().hot_fraction(), 0.0);
    }
}
