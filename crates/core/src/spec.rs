//! The service-consumable job surface: a serializable [`JobSpec`] naming
//! everything a control plane must know to admit and schedule a training
//! job's checkpoint traffic, and the per-rank [`Session`] that turns an
//! admitted spec into a live [`Checkpointer`].
//!
//! Library callers keep using [`Checkpointer::builder`] directly; the
//! `bcp-coordinator` daemon, `bench_coordinator`, and the wire protocol all
//! speak `JobSpec` — the spec *is* the redesigned construction path, not a
//! parallel one: [`Session::open`] routes through the same builder.

use crate::api::{Checkpointer, LoadOutcome, LoadRequest, LoaderTarget, SaveRequest};
use crate::hottier::HotTierConfig;
use crate::registry::BackendRegistry;
use crate::workflow::SaveTicket;
use crate::{BcpError, Result};
use bcp_collectives::Communicator;
use bcp_model::{Framework, TrainState};
use bcp_monitor::MetricsSink;
use bcp_storage::CheckpointLocation;
use bcp_topology::Parallelism;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Checkpoint-traffic quotas a control plane enforces per job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobQuota {
    /// Fair-share weight for storage bandwidth scheduling (≥ 1). A job
    /// with weight 2 is entitled to twice the bandwidth of a job with
    /// weight 1 under contention.
    pub weight: u32,
    /// Committed steps the job may keep on storage (retention).
    pub max_retained_steps: usize,
    /// Upper bound on one step's checkpoint size in bytes; `0` = unlimited.
    /// Admission rejects specs that declare more than this.
    pub max_step_bytes: u64,
}

impl Default for JobQuota {
    fn default() -> JobQuota {
        JobQuota { weight: 1, max_retained_steps: 4, max_step_bytes: 0 }
    }
}

/// Everything the control plane needs to know about one training job's
/// checkpointing: identity, shape, storage root, tiering, and quotas.
///
/// Serializable — this is the unit that crosses the coordinator wire and
/// the argument [`Session::open`] consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique job identifier (registry key; reused on re-registration
    /// after a crash).
    pub job_id: String,
    /// Training framework whose planner interprets the state dicts.
    pub framework: Framework,
    /// Parallelism configuration of the job.
    pub parallelism: Parallelism,
    /// Checkpoint root URI (steps live under `<root>/step_<N>`).
    pub root: String,
    /// Declared per-step checkpoint footprint in bytes (what admission
    /// checks against [`JobQuota::max_step_bytes`] and capacity planning).
    pub step_bytes: u64,
    /// Hot-tier (peer-replicated recovery) configuration.
    pub hot_tier: HotTierConfig,
    /// Dataloader resharding target for resumes, when the job drives one.
    pub loader_target: Option<LoaderTarget>,
    /// Bandwidth/retention quotas.
    pub quota: JobQuota,
    /// Persist per-step telemetry artifacts next to each checkpoint.
    pub telemetry: bool,
}

impl JobSpec {
    /// A minimal spec: DDP, everything else default.
    pub fn new(job_id: impl Into<String>, root: impl Into<String>) -> JobSpec {
        JobSpec {
            job_id: job_id.into(),
            framework: Framework::Ddp,
            parallelism: Parallelism { tp: 1, dp: 1, pp: 1 },
            root: root.into(),
            step_bytes: 0,
            hot_tier: HotTierConfig::default(),
            loader_target: None,
            quota: JobQuota::default(),
            telemetry: false,
        }
    }

    /// Set the framework.
    pub fn framework(mut self, framework: Framework) -> JobSpec {
        self.framework = framework;
        self
    }

    /// Set the parallelism.
    pub fn parallelism(mut self, parallelism: Parallelism) -> JobSpec {
        self.parallelism = parallelism;
        self
    }

    /// Declare the per-step checkpoint footprint.
    pub fn step_bytes(mut self, bytes: u64) -> JobSpec {
        self.step_bytes = bytes;
        self
    }

    /// Set the hot-tier configuration.
    pub fn hot_tier(mut self, config: impl Into<HotTierConfig>) -> JobSpec {
        self.hot_tier = config.into();
        self
    }

    /// Set the quotas.
    pub fn quota(mut self, quota: JobQuota) -> JobSpec {
        self.quota = quota;
        self
    }

    /// Static validation a control plane runs before admitting the spec.
    pub fn validate(&self) -> Result<()> {
        if self.job_id.is_empty() {
            return Err(BcpError::Plan("JobSpec: job_id must be non-empty".into()));
        }
        if self.job_id.contains(|c: char| c.is_whitespace() || c == '/') {
            return Err(BcpError::Plan(format!(
                "JobSpec: job_id {:?} may not contain whitespace or '/'",
                self.job_id
            )));
        }
        if self.quota.weight == 0 {
            return Err(BcpError::Plan("JobSpec: quota.weight must be ≥ 1".into()));
        }
        if self.quota.max_retained_steps == 0 {
            return Err(BcpError::Plan("JobSpec: quota.max_retained_steps must be ≥ 1".into()));
        }
        // A malformed root should fail registration, not the first save.
        let location: CheckpointLocation = self.root.clone().into();
        if location.uri().key.is_empty() && self.root.is_empty() {
            return Err(BcpError::Plan("JobSpec: root must be non-empty".into()));
        }
        Ok(())
    }

    /// The world size this spec's parallelism implies.
    pub fn world_size(&self) -> usize {
        self.parallelism.world_size()
    }

    /// The checkpoint location of `step` under this spec's root.
    pub fn step_location(&self, step: u64) -> CheckpointLocation {
        let root: CheckpointLocation = self.root.clone().into();
        root.join(&format!("step_{step}"))
    }
}

/// One rank's live checkpointing session for an admitted [`JobSpec`]:
/// a [`Checkpointer`] built from the spec plus the step-naming convention,
/// so service-driven jobs save/resume without hand-assembling locations.
pub struct Session {
    spec: JobSpec,
    ckpt: Checkpointer,
}

impl Session {
    /// Open a session: validate the spec and build this rank's
    /// [`Checkpointer`] from it (same construction path as
    /// [`Checkpointer::builder`]).
    pub fn open(
        spec: JobSpec,
        comm: Communicator,
        registry: Arc<BackendRegistry>,
    ) -> Result<Session> {
        Session::open_with_sink(spec, comm, registry, MetricsSink::disabled())
    }

    /// [`Session::open`] with a caller-provided metrics sink.
    pub fn open_with_sink(
        spec: JobSpec,
        comm: Communicator,
        registry: Arc<BackendRegistry>,
        sink: MetricsSink,
    ) -> Result<Session> {
        spec.validate()?;
        if comm.size() != spec.world_size() {
            return Err(BcpError::Plan(format!(
                "Session::open: spec world size {} != communicator size {}",
                spec.world_size(),
                comm.size()
            )));
        }
        let ckpt = Checkpointer::builder(comm)
            .framework(spec.framework)
            .parallelism(spec.parallelism)
            .registry(registry)
            .hot_tier(spec.hot_tier)
            .telemetry(spec.telemetry)
            .sink(sink)
            .build()?;
        Ok(Session { spec, ckpt })
    }

    /// The spec this session was opened with.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// The underlying checkpointer, for operations the session does not
    /// wrap.
    pub fn checkpointer(&self) -> &Checkpointer {
        &self.ckpt
    }

    /// Save `state` as `step` under the spec's root
    /// (`<root>/step_<step>`).
    pub fn save_step(&self, state: &TrainState, step: u64) -> Result<SaveTicket> {
        self.ckpt.save(&SaveRequest::new(self.spec.step_location(step), state, step))
    }

    /// Load a specific committed step into `state`.
    pub fn load_step(&self, state: &mut TrainState, step: u64) -> Result<LoadOutcome> {
        let mut req = LoadRequest::new(self.spec.step_location(step), state);
        if let Some(t) = self.spec.loader_target {
            req = req.with_loader_target(t);
        }
        self.ckpt.load(&mut req)
    }

    /// Resume: GC torn steps under the spec's root and load the newest
    /// committed one (verified fallback applies). `Ok(None)` = fresh start.
    pub fn load_latest(&self, state: &mut TrainState) -> Result<Option<LoadOutcome>> {
        self.ckpt.load_latest(self.spec.root.clone(), state, self.spec.loader_target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec::new("llm-7b", "mem://jobs/llm-7b")
            .framework(Framework::Fsdp { zero3: true })
            .parallelism(Parallelism { tp: 2, dp: 2, pp: 1 })
            .step_bytes(1 << 20)
            .hot_tier(HotTierConfig::enabled().replicas(2).gpus_per_host(4))
            .quota(JobQuota { weight: 3, max_retained_steps: 2, max_step_bytes: 1 << 30 })
    }

    #[test]
    fn job_spec_serde_round_trip() {
        let s = spec();
        let json = serde_json::to_string(&s).unwrap();
        let back: JobSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn hot_tier_config_serde_round_trip() {
        let cfg = HotTierConfig::enabled().replicas(2).capacity_steps(5).gpus_per_host(8);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: HotTierConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn loader_target_serde_round_trip() {
        let t = LoaderTarget::new(6, 2, 3);
        let json = serde_json::to_string(&t).unwrap();
        let back: LoaderTarget = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn validation_rejects_malformed_specs() {
        assert!(spec().validate().is_ok());
        let mut s = spec();
        s.job_id = String::new();
        assert!(s.validate().is_err());
        let mut s = spec();
        s.job_id = "has space".into();
        assert!(s.validate().is_err());
        let mut s = spec();
        s.quota.weight = 0;
        assert!(s.validate().is_err());
        let mut s = spec();
        s.quota.max_retained_steps = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn step_location_names_steps_under_the_root() {
        let s = spec();
        assert_eq!(s.step_location(12).uri().to_string(), "mem://jobs/llm-7b/step_12");
    }
}
