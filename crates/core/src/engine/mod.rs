//! The Execution Engine (§3.1, §4.2): executes save/load plans against a
//! storage backend with multi-threaded, pipelined I/O.
//!
//! * [`pool`] — the pinned host-memory pool with ping-pong reuse that makes
//!   D2H capture cheap and non-blocking ("a pinned CPU memory pool combined
//!   with a Ping-Pong buffering mechanism").
//! * [`iopool`] — the persistent per-`Checkpointer` I/O worker pool all
//!   upload and fetch leaf jobs run on.
//! * [`save`] — D2H capture → serialize → dump to staging → (split-file)
//!   upload, with the capture being the only training-blocking part in
//!   async mode; payloads travel as `Bytes` views of pooled capture buffers
//!   so each tensor byte is copied exactly once.
//! * [`load`] — ranged multi-threaded reads → intersection extraction →
//!   local assembly ("H2D") → forwarding of deduplicated reads, with reads,
//!   extraction and communication overlapped item-by-item.
//!
//! The helpers here ([`extract_isect`], [`Assembler`]) implement the byte
//! geometry shared by both pipelines.

pub mod iopool;
pub mod load;
pub mod pool;
pub mod save;

use crate::plan::{Category, ReadItem};
use crate::{BcpError, Result};
use bcp_model::TrainState;
use bcp_tensor::Tensor;
use bytes::{Bytes, BytesMut};
use std::collections::HashMap;

/// Carve the intersection box out of a fetched byte range.
///
/// `fetched` covers the stored shard's flat element range starting at the
/// intersection's first element (as computed by [`ReadItem::fetch_range`]).
/// The result is the intersection's elements, contiguous row-major.
pub fn extract_isect(item: &ReadItem, fetched: &Bytes) -> Result<Bytes> {
    let es = item.dtype.size();
    let stored_strides = bcp_tensor::layout::contiguous_strides(&item.stored_lengths);
    // Intersection coordinates relative to the stored box.
    let rel_off: Vec<usize> =
        item.isect_offsets.iter().zip(&item.stored_offsets).map(|(i, s)| i - s).collect();
    let first_elem = bcp_tensor::layout::ravel_index(&rel_off, &item.stored_lengths);
    let rank = item.isect_lengths.len();
    let n = item.isect_numel();
    let mut out = BytesMut::with_capacity(n * es);
    if rank == 0 {
        out.extend_from_slice(&fetched[..es]);
        return Ok(out.freeze());
    }
    let run = item.isect_lengths[rank - 1];
    let outer: usize = item.isect_lengths[..rank - 1].iter().product();
    let mut coord = vec![0usize; rank.saturating_sub(1)];
    for _ in 0..outer.max(1) {
        // Flat position of this row's first element within the stored box.
        let mut flat = rel_off[rank - 1] * stored_strides[rank - 1];
        for (d, &c) in coord.iter().enumerate() {
            flat += (rel_off[d] + c) * stored_strides[d];
        }
        let start = (flat - first_elem) * es;
        let end = start + run * es;
        if end > fetched.len() {
            return Err(BcpError::Corrupt(format!(
                "{}: fetched range too short ({} < {end})",
                item.fqn,
                fetched.len()
            )));
        }
        out.extend_from_slice(&fetched[start..end]);
        for d in (0..rank - 1).rev() {
            coord[d] += 1;
            if coord[d] < item.isect_lengths[d] {
                break;
            }
            coord[d] = 0;
        }
    }
    Ok(out.freeze())
}

/// Assembles loaded intersection payloads into the rank's local tensors.
///
/// Buffers each touched tensor's local storage once, applies any number of
/// pieces, then writes the finished tensors back into the state dicts (the
/// real system's H2D copies).
pub struct Assembler {
    buffers: HashMap<(Category, String), BytesMut>,
}

impl Default for Assembler {
    fn default() -> Self {
        Self::new()
    }
}

impl Assembler {
    /// Empty assembler.
    pub fn new() -> Assembler {
        Assembler { buffers: HashMap::new() }
    }

    /// Apply one intersection payload to the local tensor it belongs to.
    pub fn apply(&mut self, state: &TrainState, item: &ReadItem, payload: &Bytes) -> Result<()> {
        let dict = match item.category {
            Category::Model => &state.model,
            Category::Optimizer => &state.optimizer,
        };
        let entry = dict
            .get(&item.fqn)
            .ok_or_else(|| BcpError::Missing(format!("no local entry for {}", item.fqn)))?;
        let es = item.dtype.size();
        let key = (item.category, item.fqn.clone());
        let buf =
            self.buffers.entry(key).or_insert_with(|| BytesMut::zeroed(entry.tensor.nbytes()));
        // Geometry: the dest piece (shape dest_lengths) lives at local
        // element offset dest_local_elem_start; the intersection sits at
        // rel = isect_offsets - dest_offsets inside it.
        let rel: Vec<usize> =
            item.isect_offsets.iter().zip(&item.dest_offsets).map(|(i, d)| i - d).collect();
        let piece_strides = bcp_tensor::layout::contiguous_strides(&item.dest_lengths);
        let rank = item.isect_lengths.len();
        if rank == 0 {
            let at = item.dest_local_elem_start * es;
            buf[at..at + es].copy_from_slice(&payload[..es]);
            return Ok(());
        }
        let run = item.isect_lengths[rank - 1] * es;
        let outer: usize = item.isect_lengths[..rank - 1].iter().product();
        let mut coord = vec![0usize; rank - 1];
        let mut src = 0usize;
        for _ in 0..outer.max(1) {
            let mut flat = rel[rank - 1] * piece_strides[rank - 1];
            for (d, &c) in coord.iter().enumerate() {
                flat += (rel[d] + c) * piece_strides[d];
            }
            let at = (item.dest_local_elem_start + flat) * es;
            if at + run > buf.len() || src + run > payload.len() {
                return Err(BcpError::Corrupt(format!(
                    "{}: assembly overrun (buf {} at {at}, payload {} at {src})",
                    item.fqn,
                    buf.len(),
                    payload.len()
                )));
            }
            buf[at..at + run].copy_from_slice(&payload[src..src + run]);
            src += run;
            for d in (0..rank - 1).rev() {
                coord[d] += 1;
                if coord[d] < item.isect_lengths[d] {
                    break;
                }
                coord[d] = 0;
            }
        }
        Ok(())
    }

    /// Write all assembled buffers back into the state dicts, replacing the
    /// local tensors. Consumes the assembler.
    pub fn finish(self, state: &mut TrainState) -> Result<()> {
        for ((category, fqn), buf) in self.buffers {
            let dict = match category {
                Category::Model => &mut state.model,
                Category::Optimizer => &mut state.optimizer,
            };
            let entry = dict
                .entries
                .get_mut(&fqn)
                .ok_or_else(|| BcpError::Missing(format!("no local entry for {fqn}")))?;
            entry.tensor =
                Tensor::from_bytes(entry.dtype, entry.tensor.shape().to_vec(), buf.freeze())?;
        }
        Ok(())
    }

    /// Number of elements (bytes / dtype size) assembled so far per tensor
    /// — used by coverage checks in tests.
    pub fn touched_tensors(&self) -> usize {
        self.buffers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_tensor::DType;

    fn item_2d() -> ReadItem {
        // Stored box: rows 0..4 x cols 0..6 of a (8,6) tensor, payload at 0.
        // Intersection: rows 1..3, cols 2..5. Dest piece: rows 0..4, cols
        // 0..6 at local offset 0 (same as stored for simplicity).
        ReadItem {
            category: Category::Model,
            fqn: "t".into(),
            dtype: DType::F32,
            file: "f".into(),
            payload_offset: 0,
            stored_offsets: vec![0, 0],
            stored_lengths: vec![4, 6],
            isect_offsets: vec![1, 2],
            isect_lengths: vec![2, 3],
            dest_offsets: vec![0, 0],
            dest_lengths: vec![4, 6],
            dest_local_elem_start: 0,
        }
    }

    #[test]
    fn extract_isect_from_bounded_fetch() {
        let item = item_2d();
        // Stored tensor = iota(24). Fetch range: first elem (1,2) -> flat 8;
        // last (2,4) -> flat 16; 9 elements.
        let stored: Vec<f32> = (0..24).map(|i| i as f32).collect();
        let (fo, fl) = item.fetch_range();
        assert_eq!((fo, fl), (8 * 4, 9 * 4));
        let fetched = Bytes::copy_from_slice(
            &stored.iter().flat_map(|v| v.to_le_bytes()).collect::<Vec<u8>>()
                [fo as usize..(fo + fl) as usize],
        );
        let isect = extract_isect(&item, &fetched).unwrap();
        let vals: Vec<f32> =
            isect.chunks(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
        // Rows 1..3, cols 2..5 of the (4,6) iota: 8,9,10 / 14,15,16.
        assert_eq!(vals, vec![8.0, 9.0, 10.0, 14.0, 15.0, 16.0]);
    }

    #[test]
    fn extract_detects_short_fetch() {
        let item = item_2d();
        let short = Bytes::from(vec![0u8; 8]);
        assert!(matches!(extract_isect(&item, &short), Err(BcpError::Corrupt(_))));
    }
}
