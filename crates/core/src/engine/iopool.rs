//! Persistent I/O worker pool shared across engine operations.
//!
//! The paper's engine keeps "a fixed thread pool for I/O" rather than
//! spawning threads per checkpoint: upload of staged files, split-part
//! uploads and chunked ranged reads are all *leaf jobs* submitted to one
//! per-`Checkpointer` pool sized by `io_threads`. Submitting from multiple
//! phases concurrently is what buys the overlap — a save's uploads and a
//! load's fetches interleave on the same workers without per-call
//! thread-spawn latency.
//!
//! Discipline: only leaf I/O closures run on the pool. Orchestration
//! (async-save tails, finalize, the load-path communication receiver) stays
//! on dedicated threads, and a job must never submit further jobs and wait
//! for them — with `io_threads = 1` that would deadlock. Span parenting
//! across workers uses the usual `enter_context` pattern *inside* the job
//! closure (each job captures the `SpanContext` of the phase that enqueued
//! it).

use crate::{BcpError, Result};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of named I/O worker threads fed by a channel. Workers
/// exit when the pool (and thus the channel's send side) drops.
pub struct IoPool {
    tx: Sender<Job>,
    threads: usize,
}

impl IoPool {
    /// Spawn `threads` workers (at least one), named `bcp-io-{i}`.
    pub fn new(threads: usize) -> Arc<IoPool> {
        let threads = threads.max(1);
        let (tx, rx) = unbounded::<Job>();
        for i in 0..threads {
            let rx: Receiver<Job> = rx.clone();
            std::thread::Builder::new()
                .name(format!("bcp-io-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn I/O pool worker");
        }
        Arc::new(IoPool { tx, threads })
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submit one job; its result is delivered as `(index, result)` on
    /// `done`. A panicking job is converted into an `Err` so waiters never
    /// hang on a lost completion.
    pub fn submit<T, F>(&self, done: Sender<(usize, Result<T>)>, index: usize, job: F)
    where
        T: Send + 'static,
        F: FnOnce() -> Result<T> + Send + 'static,
    {
        self.tx
            .send(Box::new(move || {
                let out = catch_unwind(AssertUnwindSafe(job)).unwrap_or_else(|_| {
                    Err(BcpError::Corrupt("I/O pool job panicked".to_string()))
                });
                // Receiver may have given up (error path); dropping the
                // result is fine then.
                let _ = done.send((index, out));
            }))
            .expect("I/O pool workers alive while pool handle exists");
    }

    /// Run `jobs` concurrently on the pool and return their results in
    /// submission order. Blocks the calling thread (never call from inside
    /// a pool job).
    pub fn run_batch<T>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> Result<T> + Send + 'static>>,
    ) -> Vec<Result<T>>
    where
        T: Send + 'static,
    {
        let n = jobs.len();
        let (done_tx, done_rx) = unbounded();
        for (i, job) in jobs.into_iter().enumerate() {
            self.submit(done_tx.clone(), i, job);
        }
        drop(done_tx);
        let mut out: Vec<Option<Result<T>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            match done_rx.recv() {
                Ok((i, r)) => out[i] = Some(r),
                Err(_) => break,
            }
        }
        out.into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    Err(BcpError::Corrupt("I/O pool dropped a job result".to_string()))
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_batch_preserves_submission_order() {
        let pool = IoPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> Result<usize> + Send>> = (0..32usize)
            .map(|i| {
                Box::new(move || {
                    if i % 3 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    Ok(i * 10)
                }) as Box<dyn FnOnce() -> Result<usize> + Send>
            })
            .collect();
        let results = pool.run_batch(jobs);
        for (i, r) in results.into_iter().enumerate() {
            assert_eq!(r.unwrap(), i * 10);
        }
    }

    #[test]
    fn jobs_actually_run_concurrently() {
        let pool = IoPool::new(4);
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Box<dyn FnOnce() -> Result<()> + Send>> = (0..8)
            .map(|_| {
                let running = running.clone();
                let peak = peak.clone();
                Box::new(move || {
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    running.fetch_sub(1, Ordering::SeqCst);
                    Ok(())
                }) as Box<dyn FnOnce() -> Result<()> + Send>
            })
            .collect();
        for r in pool.run_batch(jobs) {
            r.unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) > 1, "expected overlap across workers");
    }

    #[test]
    fn panicking_job_yields_error_not_hang() {
        let pool = IoPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> Result<u32> + Send>> =
            vec![Box::new(|| Ok(1)), Box::new(|| panic!("boom")), Box::new(|| Ok(3))];
        let results = pool.run_batch(jobs);
        assert_eq!(results[0].as_ref().unwrap(), &1);
        assert!(results[1].is_err());
        assert_eq!(results[2].as_ref().unwrap(), &3);
    }

    #[test]
    fn single_threaded_pool_still_completes() {
        let pool = IoPool::new(0); // clamped to 1
        assert_eq!(pool.threads(), 1);
        let jobs: Vec<Box<dyn FnOnce() -> Result<u8> + Send>> =
            vec![Box::new(|| Ok(7)), Box::new(|| Ok(8))];
        let results = pool.run_batch(jobs);
        assert_eq!(results.into_iter().map(|r| r.unwrap()).collect::<Vec<_>>(), vec![7, 8]);
    }
}
