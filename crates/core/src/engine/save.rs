//! The saving pipeline (§4.2): D2H capture → serialize → dump to shared
//! memory → (split-file) upload.
//!
//! In async mode only the capture blocks the caller ("checkpoint stall");
//! serialization and upload run on a background thread, exactly like the
//! paper's "symmetrical, fully asynchronous pipeline comprising D2H copy,
//! serialization, and file uploading operations".
//!
//! Single-copy data path: capture copies each tensor slice once into a
//! pooled (pinned) buffer and freezes it into sharable `Bytes`.
//! Serialization produces frame *headers* only; headers, payload views and
//! CRC trailers travel to the backend as gather segments via
//! [`bcp_storage::StorageBackend::write_segments`], so a tensor's bytes are
//! touched exactly once between the state dict and the backend. All uploads
//! (whole files and split parts) run concurrently as leaf jobs on the
//! persistent [`IoPool`].

use crate::engine::iopool::IoPool;
use crate::engine::pool::{PinnedPool, PooledBytes};
use crate::fault::FaultHook;
use crate::format::encode_frame_header;
use crate::integrity::{with_retries, FailureLog, RetryPolicy};
use crate::plan::SavePlan;
use crate::{BcpError, Result};
use bcp_model::TrainState;
use bcp_monitor::{enter_context, MetricsSink, SpanContext};
use bcp_storage::DynBackend;
use bcp_tensor::checksum::crc32;
use bytes::Bytes;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine tuning knobs for saving.
#[derive(Debug, Clone)]
pub struct SaveConfig {
    /// Upload threads per rank.
    pub io_threads: usize,
    /// Split files larger than this into sub-files uploaded concurrently
    /// and merged by metadata concat (§4.3 HDFS write path).
    pub split_threshold: u64,
    /// Number of sub-files when splitting.
    pub split_parts: usize,
    /// Async (pipeline off the critical path) vs fully synchronous saving.
    pub async_upload: bool,
    /// Retry policy for uploads.
    pub retries: RetryPolicy,
}

impl Default for SaveConfig {
    fn default() -> SaveConfig {
        SaveConfig {
            io_threads: 4,
            split_threshold: 8 * 1024 * 1024,
            split_parts: 4,
            async_upload: true,
            retries: RetryPolicy::default(),
        }
    }
}

/// Timing and volume results of one rank's save.
#[derive(Debug, Clone)]
pub struct SaveStats {
    /// Training-blocking time (capture; everything in sync mode).
    pub blocking: Duration,
    /// End-to-end time including the async tail.
    pub end_to_end: Duration,
    /// Bytes uploaded.
    pub bytes: u64,
    /// Files written (after concat).
    pub files: usize,
}

/// Handle to a possibly-still-running asynchronous save.
pub struct SaveHandle {
    blocking: Duration,
    join: Option<std::thread::JoinHandle<Result<(u64, usize)>>>,
    sync_result: Option<(u64, usize)>,
    started: Instant,
}

impl SaveHandle {
    /// The training-blocking duration (available immediately).
    pub fn blocking(&self) -> Duration {
        self.blocking
    }

    /// Wait for the pipeline to finish and collect stats.
    pub fn wait(self) -> Result<SaveStats> {
        let (bytes, files) = match self.join {
            Some(h) => h.join().map_err(|_| BcpError::Corrupt("save thread panicked".into()))??,
            None => self.sync_result.expect("sync result present when no thread"),
        };
        Ok(SaveStats { blocking: self.blocking, end_to_end: self.started.elapsed(), bytes, files })
    }
}

/// Per-save collection point for the hot tier: the async pipeline deposits
/// each fully-uploaded file's assembled bytes here, so the workflow's
/// finalize tail can replicate them to peers without re-reading storage.
pub type HotStaging = Arc<parking_lot::Mutex<Vec<(String, Bytes)>>>;

/// Execute a rank's save plan against `backend` under `prefix`.
///
/// Returns once the blocking part is done; the returned handle resolves
/// when uploads complete. The serialized files are bit-deterministic: frame
/// order follows the plan (serialization is sequential; only uploads fan
/// out, and each file/part is one atomic gather-write), so payload offsets
/// match [`SavePlan::byte_metas`] (asserted) for any `io_threads`.
#[allow(clippy::too_many_arguments)] // the full engine context, passed once per save
pub fn execute_save(
    plan: &SavePlan,
    state: &TrainState,
    backend: DynBackend,
    prefix: &str,
    pool: &Arc<PinnedPool>,
    io: &Arc<IoPool>,
    sink: &MetricsSink,
    log: Arc<FailureLog>,
    cfg: &SaveConfig,
    step: u64,
    faults: &FaultHook,
    parent: SpanContext,
) -> Result<SaveHandle> {
    execute_save_staged(
        plan, state, backend, prefix, pool, io, sink, log, cfg, step, faults, parent, None,
    )
}

/// [`execute_save`] with an optional hot-tier staging sink: when `Some`,
/// every uploaded file's assembled bytes (segments stitched once, off the
/// training-blocking path) are deposited into it after the uploads succeed.
#[allow(clippy::too_many_arguments)] // the full engine context, passed once per save
pub fn execute_save_staged(
    plan: &SavePlan,
    state: &TrainState,
    backend: DynBackend,
    prefix: &str,
    pool: &Arc<PinnedPool>,
    io: &Arc<IoPool>,
    sink: &MetricsSink,
    log: Arc<FailureLog>,
    cfg: &SaveConfig,
    step: u64,
    faults: &FaultHook,
    parent: SpanContext,
    hot_staging: Option<HotStaging>,
) -> Result<SaveHandle> {
    let rank = plan.rank;
    let started = Instant::now();

    // ---- Phase 1 (blocking): D2H capture into the pinned pool. ----
    faults.check("save/capture")?;
    let capture_timer = Instant::now();
    let mut captured: Vec<PooledBytes> = Vec::with_capacity(plan.items.len());
    {
        let _t = sink.span_under("save/d2h", rank, step, parent).bytes(plan.total_bytes());
        for item in &plan.items {
            let dict = match item.category {
                crate::plan::Category::Model => &state.model,
                crate::plan::Category::Optimizer => &state.optimizer,
            };
            let entry = dict
                .get(&item.shard.fqn)
                .ok_or_else(|| BcpError::Missing(format!("{} not in state", item.shard.fqn)))?;
            let es = entry.dtype.size();
            let data = entry.tensor.bytes()?;
            let start = item.local_elem_start * es;
            let end = start + item.nbytes as usize;
            if end > data.len() {
                return Err(BcpError::Plan(format!(
                    "{}: plan slice [{start}, {end}) exceeds local tensor ({} bytes)",
                    item.shard.fqn,
                    data.len()
                )));
            }
            // Copy through a pooled (pinned) buffer — the D2H analogue, and
            // the *only* copy of the payload on the whole save path.
            let mut host = pool.acquire(end - start);
            host.extend_from_slice(&data[start..end]);
            captured.push(host.freeze());
        }
    }
    let blocking = capture_timer.elapsed();

    // ---- Phases 2–4 (async-able): serialize, dump, upload. ----
    let plan = plan.clone();
    let prefix = prefix.to_string();
    let sink = sink.clone();
    let cfg2 = cfg.clone();
    let faults = faults.clone();
    let io = io.clone();
    let pipeline = move || -> Result<(u64, usize)> {
        // `captured` outlives every staged segment view, so the pooled
        // allocations are reclaimed (not leaked to the allocator) when the
        // uploads finish and `captured` drops last.
        let captured = captured;
        // Serialize frame *headers* per file, in plan order; payloads stay
        // as views over the capture buffers.
        faults.check("save/serialize")?;
        let expected = plan.byte_metas();
        let mut files: BTreeMap<String, Vec<Bytes>> = BTreeMap::new();
        let mut cursors: BTreeMap<String, u64> = BTreeMap::new();
        {
            let _t =
                sink.span_under("save/serialize", rank, step, parent).bytes(plan.total_bytes());
            for ((item, payload), bm) in plan.items.iter().zip(&captured).zip(&expected) {
                let payload = payload.share();
                let header = encode_frame_header(&item.shard, item.basic.dtype, payload.len());
                let cursor = cursors.entry(bm.file.clone()).or_default();
                debug_assert_eq!(
                    *cursor + header.len() as u64,
                    bm.offset,
                    "planned offset must match serialization"
                );
                *cursor += crate::format::frame_len(&item.shard, payload.len()) as u64;
                let crc = Bytes::copy_from_slice(&crc32(&payload).to_le_bytes());
                let segs = files.entry(bm.file.clone()).or_default();
                segs.push(header.freeze());
                segs.push(payload);
                segs.push(crc);
            }
        }
        // Dump: hand the per-file segment lists over to upload (the
        // shared-memory staging step — no bytes move here).
        let staged: Vec<(String, Vec<Bytes>)> = {
            let mut t = sink.span_under("save/dump", rank, step, parent);
            let staged: Vec<(String, Vec<Bytes>)> = files.into_iter().collect();
            t.add_bytes(
                staged.iter().flat_map(|(_, segs)| segs.iter().map(|s| s.len() as u64)).sum(),
            );
            staged
        };
        // Keep cheap segment views (refcounted `Bytes` clones) so the hot
        // tier can assemble whole-file copies after the uploads succeed.
        let hot_views: Option<Vec<(String, Vec<Bytes>)>> =
            hot_staging.as_ref().map(|_| staged.clone());
        // Upload: every whole file and every split part is one leaf job on
        // the shared I/O pool, so files upload concurrently.
        faults.check("save/upload")?;
        let mut total = 0u64;
        let nfiles = staged.len();
        {
            let mut t = sink.span_under("save/upload", rank, step, parent);
            let _in_upload = t.enter();
            // Per-file detail spans (uncounted: the phase span above already
            // carries the time) stay alive until their jobs complete so pool
            // workers' storage spans nest under them.
            let mut file_spans = Vec::with_capacity(nfiles);
            let mut jobs: Vec<Box<dyn FnOnce() -> Result<()> + Send + 'static>> = Vec::new();
            let mut concats: Vec<(String, Vec<String>, SpanContext)> = Vec::new();
            for (file, segments) in staged {
                let bytes: u64 = segments.iter().map(|s| s.len() as u64).sum();
                total += bytes;
                t.add_bytes(bytes);
                let path = format!("{prefix}/{file}");
                let mut f = sink
                    .span_under("save/upload-file", rank, step, t.context())
                    .uncounted()
                    .path(path.clone())
                    .bytes(bytes);
                let fctx = f.context();
                if bytes > cfg2.split_threshold && cfg2.split_parts > 1 {
                    f.set_attr("split_parts", cfg2.split_parts.to_string());
                    let parts = split_segments(&segments, bytes as usize, cfg2.split_parts, &path);
                    concats.push((path, parts.iter().map(|(n, _)| n.clone()).collect(), fctx));
                    for (name, part_segs) in parts {
                        let backend = backend.clone();
                        let log = log.clone();
                        let retries = cfg2.retries;
                        jobs.push(Box::new(move || {
                            let _e = enter_context(fctx);
                            with_retries(
                                retries,
                                &log,
                                rank,
                                "save/upload-part",
                                Some(&name),
                                || backend.write_segments(&name, &part_segs),
                            )
                        }));
                    }
                } else {
                    let backend = backend.clone();
                    let log = log.clone();
                    let retries = cfg2.retries;
                    jobs.push(Box::new(move || {
                        let _e = enter_context(fctx);
                        with_retries(retries, &log, rank, "save/upload", Some(&path), || {
                            backend.write_segments(&path, &segments)
                        })
                    }));
                }
                file_spans.push(f);
            }
            for result in io.run_batch(jobs) {
                result?;
            }
            // Metadata-concat the split files once all their parts landed.
            let concat_jobs: Vec<Box<dyn FnOnce() -> Result<()> + Send + 'static>> = concats
                .into_iter()
                .map(|(path, part_names, fctx)| {
                    let backend = backend.clone();
                    let log = log.clone();
                    let retries = cfg2.retries;
                    Box::new(move || {
                        let _e = enter_context(fctx);
                        with_retries(retries, &log, rank, "save/concat", Some(&path), || {
                            backend.concat(&path, &part_names)
                        })
                    }) as Box<dyn FnOnce() -> Result<()> + Send + 'static>
                })
                .collect();
            for result in io.run_batch(concat_jobs) {
                result?;
            }
        }
        // Stage hot-tier copies only for files that actually landed: stitch
        // each file's segments once (off the training-blocking path).
        if let (Some(staging), Some(views)) = (&hot_staging, hot_views) {
            let mut out = staging.lock();
            for (file, segs) in views {
                let len: usize = segs.iter().map(Bytes::len).sum();
                let mut buf = bytes::BytesMut::with_capacity(len);
                for s in &segs {
                    buf.extend_from_slice(s);
                }
                out.push((file, buf.freeze()));
            }
        }
        Ok((total, nfiles))
    };

    if cfg.async_upload {
        let join = std::thread::Builder::new()
            .name(format!("bcp-save-{rank}"))
            .spawn(pipeline)
            .map_err(|e| BcpError::Corrupt(format!("spawn failed: {e}")))?;
        Ok(SaveHandle { blocking, join: Some(join), sync_result: None, started })
    } else {
        let result = pipeline()?;
        Ok(SaveHandle {
            blocking: started.elapsed(),
            join: None,
            sync_result: Some(result),
            started,
        })
    }
}

/// §4.3 split upload: carve the file's segment list into `parts` byte
/// windows at [`bcp_tensor::layout::even_split`] boundaries. Slicing `Bytes`
/// shares the parent allocations — no payload bytes are copied.
fn split_segments(
    segments: &[Bytes],
    total: usize,
    parts: usize,
    path: &str,
) -> Vec<(String, Vec<Bytes>)> {
    (0..parts)
        .map(|i| {
            let (off, len) = bcp_tensor::layout::even_split(total, parts, i);
            (format!("{path}.part{i}"), slice_window(segments, off, len))
        })
        .collect()
}

/// The sub-list of segment views covering bytes `[off, off + len)` of the
/// concatenated segment stream.
fn slice_window(segments: &[Bytes], mut off: usize, mut len: usize) -> Vec<Bytes> {
    let mut out = Vec::new();
    for seg in segments {
        if len == 0 {
            break;
        }
        if off >= seg.len() {
            off -= seg.len();
            continue;
        }
        let take = (seg.len() - off).min(len);
        out.push(seg.slice(off..off + take));
        off = 0;
        len -= take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::local_save_plan;
    use bcp_model::states::{build_train_state, Framework};
    use bcp_model::zoo;
    use bcp_storage::MemoryBackend;
    use bcp_topology::Parallelism;

    fn setup() -> (SavePlan, TrainState, DynBackend) {
        let arch = zoo::tiny_gpt();
        let par = Parallelism::data_parallel(1).unwrap();
        let state = build_train_state(&arch, Framework::Ddp, par, 0, true);
        let plan = local_save_plan(0, &state, "cpu");
        (plan, state, Arc::new(MemoryBackend::new()))
    }

    #[test]
    fn saved_files_match_planned_byte_metas() {
        let (plan, state, backend) = setup();
        let pool = PinnedPool::new(2);
        let io = IoPool::new(2);
        let sink = MetricsSink::disabled();
        let log = Arc::new(FailureLog::new());
        let handle = execute_save(
            &plan,
            &state,
            backend.clone(),
            "ckpt",
            &pool,
            &io,
            &sink,
            log,
            &SaveConfig { async_upload: false, ..Default::default() },
            0,
            &FaultHook::inert(0),
            SpanContext::none(),
        )
        .unwrap();
        let stats = handle.wait().unwrap();
        assert_eq!(stats.bytes, {
            let mut per_file: BTreeMap<String, u64> = BTreeMap::new();
            for (item, bm) in plan.items.iter().zip(plan.byte_metas()) {
                *per_file.entry(bm.file).or_default() +=
                    crate::format::frame_len(&item.shard, item.nbytes as usize) as u64;
            }
            per_file.values().sum::<u64>()
        });
        // Single-copy: capture copied exactly the plan's payload bytes.
        assert_eq!(pool.copied_bytes(), plan.total_bytes());
        // Every planned ByteMeta points at the right payload.
        for (item, bm) in plan.items.iter().zip(plan.byte_metas()) {
            let got =
                backend.read_range(&format!("ckpt/{}", bm.file), bm.offset, bm.length).unwrap();
            let dict = match item.category {
                crate::plan::Category::Model => &state.model,
                crate::plan::Category::Optimizer => &state.optimizer,
            };
            let entry = dict.get(&item.shard.fqn).unwrap();
            let es = entry.dtype.size();
            let want = &entry.tensor.bytes().unwrap()
                [item.local_elem_start * es..item.local_elem_start * es + item.nbytes as usize];
            assert_eq!(&got[..], want, "{}", item.shard.fqn);
        }
        // Files decode as valid frames end-to-end.
        let file = backend.read("ckpt/model_0.bin").unwrap();
        let frames = crate::format::decode_frames(&file).unwrap();
        assert!(!frames.is_empty());
    }

    #[test]
    fn async_save_returns_before_upload_finishes() {
        let (plan, state, _) = setup();
        // Slow backend: writes sleep.
        let slow: DynBackend = Arc::new(bcp_storage::Throttled::new(
            Arc::new(MemoryBackend::new()),
            bcp_storage::ThrottleProfile {
                read_bps: f64::INFINITY,
                write_bps: 4.0 * 1024.0 * 1024.0,
                op_latency: Duration::from_millis(5),
            },
            "slow",
        ));
        let pool = PinnedPool::new(2);
        let io = IoPool::new(1);
        let sink = MetricsSink::disabled();
        let log = Arc::new(FailureLog::new());
        let handle = execute_save(
            &plan,
            &state,
            slow,
            "ckpt",
            &pool,
            &io,
            &sink,
            log,
            &SaveConfig { async_upload: true, ..Default::default() },
            0,
            &FaultHook::inert(0),
            SpanContext::none(),
        )
        .unwrap();
        let blocking = handle.blocking();
        let stats = handle.wait().unwrap();
        assert!(
            stats.end_to_end > blocking * 2,
            "async tail should dominate: blocking {blocking:?} vs e2e {:?}",
            stats.end_to_end
        );
    }

    #[test]
    fn split_upload_round_trips_through_concat() {
        let (plan, state, backend) = setup();
        let pool = PinnedPool::new(2);
        let io = IoPool::new(4);
        let sink = MetricsSink::disabled();
        let log = Arc::new(FailureLog::new());
        let cfg = SaveConfig {
            async_upload: false,
            split_threshold: 1024, // force splitting
            split_parts: 4,
            ..Default::default()
        };
        execute_save(
            &plan,
            &state,
            backend.clone(),
            "ckpt",
            &pool,
            &io,
            &sink,
            log,
            &cfg,
            0,
            &FaultHook::inert(0),
            SpanContext::none(),
        )
        .unwrap()
        .wait()
        .unwrap();
        // No stray part files; whole file decodes.
        let listing = backend.list("ckpt/").unwrap();
        assert!(listing.iter().all(|f| !f.contains(".part")), "{listing:?}");
        let file = backend.read("ckpt/optim_0.bin").unwrap();
        assert!(!crate::format::decode_frames(&file).unwrap().is_empty());
    }

    #[test]
    fn transient_upload_failures_are_retried() {
        let (plan, state, _) = setup();
        let flaky: DynBackend = Arc::new(bcp_storage::FlakyBackend::new(
            Arc::new(MemoryBackend::new()),
            bcp_storage::flaky::FailureMode::Writes,
            2,
        ));
        let pool = PinnedPool::new(2);
        let io = IoPool::new(2);
        let sink = MetricsSink::disabled();
        let log = Arc::new(FailureLog::new());
        let handle = execute_save(
            &plan,
            &state,
            flaky,
            "ckpt",
            &pool,
            &io,
            &sink,
            log.clone(),
            &SaveConfig { async_upload: false, ..Default::default() },
            0,
            &FaultHook::inert(0),
            SpanContext::none(),
        )
        .unwrap();
        assert!(handle.wait().is_ok());
        assert!(!log.is_empty(), "failures must be logged");
        assert!(log.records().iter().all(|r| r.stage.starts_with("save/")));
    }

    #[test]
    fn slice_window_covers_segment_boundaries() {
        let segs = vec![
            Bytes::from_static(b"0123"),
            Bytes::from_static(b"45"),
            Bytes::from_static(b"6789"),
        ];
        let flat = |w: Vec<Bytes>| w.iter().flat_map(|b| b.iter().copied()).collect::<Vec<u8>>();
        assert_eq!(flat(slice_window(&segs, 0, 10)), b"0123456789");
        assert_eq!(flat(slice_window(&segs, 3, 4)), b"3456");
        assert_eq!(flat(slice_window(&segs, 4, 2)), b"45");
        assert_eq!(flat(slice_window(&segs, 9, 1)), b"9");
        assert!(slice_window(&segs, 10, 0).is_empty());
    }
}
