//! Pinned host-memory pool with ping-pong reuse (§4.2).
//!
//! "To mitigate the performance impact of D2H copy on training, we employ a
//! pinned CPU memory pool combined with a Ping-Pong buffering mechanism."
//! In CUDA terms the pool amortizes `cudaHostAlloc`; here it amortizes
//! allocator traffic, and — more importantly — its accounting lets tests and
//! the simulator distinguish pooled (fast, reused) captures from cold
//! allocations.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A reusable buffer pool. Buffers are size-classed by rounding up to the
/// next power of two; `ping_pong` pairs per class are retained.
pub struct PinnedPool {
    classes: Mutex<std::collections::BTreeMap<u32, Vec<Vec<u8>>>>,
    retain_per_class: usize,
    allocs: AtomicU64,
    reuses: AtomicU64,
}

impl PinnedPool {
    /// A pool retaining `retain_per_class` buffers per size class
    /// (2 = classic ping-pong).
    pub fn new(retain_per_class: usize) -> Arc<PinnedPool> {
        Arc::new(PinnedPool {
            classes: Mutex::new(Default::default()),
            retain_per_class,
            allocs: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
        })
    }

    fn class_of(size: usize) -> u32 {
        usize::BITS - size.next_power_of_two().leading_zeros()
    }

    /// Acquire a zero-length buffer with capacity ≥ `size`. The buffer
    /// returns to the pool when the guard drops.
    pub fn acquire(self: &Arc<Self>, size: usize) -> PooledBuf {
        let class = Self::class_of(size.max(1));
        let reused = self.classes.lock().get_mut(&class).and_then(Vec::pop);
        let buf = match reused {
            Some(mut b) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                b.clear();
                b
            }
            None => {
                self.allocs.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(1usize << class)
            }
        };
        PooledBuf { buf, pool: self.clone(), class }
    }

    /// (fresh allocations, reuses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.allocs.load(Ordering::Relaxed), self.reuses.load(Ordering::Relaxed))
    }

    fn give_back(&self, class: u32, buf: Vec<u8>) {
        let mut classes = self.classes.lock();
        let slot = classes.entry(class).or_default();
        if slot.len() < self.retain_per_class {
            slot.push(buf);
        }
    }
}

/// RAII guard over a pooled buffer.
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: Arc<PinnedPool>,
    class: u32,
}

impl PooledBuf {
    /// Mutable access for filling.
    pub fn as_mut_vec(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }

    /// Read access.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        self.pool.give_back(self.class, buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_reuse() {
        let pool = PinnedPool::new(2);
        {
            let mut a = pool.acquire(1000);
            a.as_mut_vec().extend_from_slice(&[1, 2, 3]);
            let _b = pool.acquire(1000);
        } // both return
        {
            let _c = pool.acquire(900); // same class (1024): reused
            let _d = pool.acquire(1024); // reused
            let _e = pool.acquire(1000); // pool empty: fresh
        }
        let (allocs, reuses) = pool.stats();
        assert_eq!(allocs, 3);
        assert_eq!(reuses, 2);
    }

    #[test]
    fn retention_is_bounded() {
        let pool = PinnedPool::new(1);
        {
            let _a = pool.acquire(64);
            let _b = pool.acquire(64);
            let _c = pool.acquire(64);
        }
        // Only one retained; two next acquisitions -> 1 reuse + 1 alloc.
        {
            let _x = pool.acquire(64);
            let _y = pool.acquire(64);
        }
        let (allocs, reuses) = pool.stats();
        assert_eq!((allocs, reuses), (4, 1));
    }

    #[test]
    fn acquired_buffers_start_empty_with_capacity() {
        let pool = PinnedPool::new(2);
        {
            let mut a = pool.acquire(100);
            a.as_mut_vec().extend_from_slice(&[9; 50]);
        }
        let b = pool.acquire(100);
        assert!(b.as_slice().is_empty());
    }
}
