//! Pinned host-memory pool with ping-pong reuse (§4.2).
//!
//! "To mitigate the performance impact of D2H copy on training, we employ a
//! pinned CPU memory pool combined with a Ping-Pong buffering mechanism."
//! In CUDA terms the pool amortizes `cudaHostAlloc`; here it amortizes
//! allocator traffic, and — more importantly — its accounting lets tests and
//! the simulator distinguish pooled (fast, reused) captures from cold
//! allocations.
//!
//! Buffers are `BytesMut`-backed so a filled capture can be *frozen* into a
//! [`PooledBytes`]: cheaply sharable `Bytes` views that flow through
//! serialization and upload without further copies, and that hand the
//! allocation back to the pool once the last view drops (single-copy save
//! path). The pool also counts every byte copied *into* its buffers
//! ([`PinnedPool::copied_bytes`]), which the engine benchmarks use to prove
//! each tensor byte is touched exactly once between state dict and backend.

use bytes::BytesMut;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A reusable buffer pool. Buffers are size-classed by rounding up to the
/// next power of two; `ping_pong` pairs per class are retained.
pub struct PinnedPool {
    classes: Mutex<std::collections::BTreeMap<u32, Vec<BytesMut>>>,
    retain_per_class: usize,
    allocs: AtomicU64,
    reuses: AtomicU64,
    copied: AtomicU64,
}

impl PinnedPool {
    /// A pool retaining `retain_per_class` buffers per size class
    /// (2 = classic ping-pong).
    pub fn new(retain_per_class: usize) -> Arc<PinnedPool> {
        Arc::new(PinnedPool {
            classes: Mutex::new(Default::default()),
            retain_per_class,
            allocs: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            copied: AtomicU64::new(0),
        })
    }

    /// Smallest class whose capacity (`1 << class`) holds `size` bytes.
    /// Exact powers of two map to their own class: `class_of(1024) == 10`.
    fn class_of(size: usize) -> u32 {
        if size <= 1 {
            0
        } else {
            usize::BITS - (size - 1).leading_zeros()
        }
    }

    /// Acquire a zero-length buffer with capacity ≥ `size`. The buffer
    /// returns to the pool when the guard drops (or, after
    /// [`PooledBuf::freeze`], when the last `Bytes` view drops).
    pub fn acquire(self: &Arc<Self>, size: usize) -> PooledBuf {
        let class = Self::class_of(size.max(1));
        let reused = self.classes.lock().get_mut(&class).and_then(Vec::pop);
        let buf = match reused {
            Some(mut b) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                b.clear();
                b
            }
            None => {
                self.allocs.fetch_add(1, Ordering::Relaxed);
                BytesMut::with_capacity(1usize << class)
            }
        };
        PooledBuf { buf, pool: self.clone(), class }
    }

    /// (fresh allocations, reuses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.allocs.load(Ordering::Relaxed), self.reuses.load(Ordering::Relaxed))
    }

    /// Total bytes copied into pooled buffers so far. On the single-copy
    /// save path this equals the plan's total payload bytes — the one
    /// capture copy — with no further per-byte copies downstream.
    pub fn copied_bytes(&self) -> u64 {
        self.copied.load(Ordering::Relaxed)
    }

    fn give_back(&self, class: u32, buf: BytesMut) {
        // Reject husks (e.g. a frozen buffer whose allocation could not be
        // reclaimed) so pooled buffers always have their class's capacity.
        if buf.capacity() < (1usize << class) {
            return;
        }
        let mut classes = self.classes.lock();
        let slot = classes.entry(class).or_default();
        if slot.len() < self.retain_per_class {
            slot.push(buf);
        }
    }
}

/// RAII guard over a pooled buffer.
pub struct PooledBuf {
    buf: BytesMut,
    pool: Arc<PinnedPool>,
    class: u32,
}

impl PooledBuf {
    /// Copy `src` into the buffer, counting the bytes in the pool's
    /// copy accounting.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
        self.pool.copied.fetch_add(src.len() as u64, Ordering::Relaxed);
    }

    /// Read access.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Bytes filled so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been filled yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Freeze the filled buffer into sharable, immutable [`PooledBytes`].
    /// The allocation returns to the pool when the last view drops.
    pub fn freeze(mut self) -> PooledBytes {
        let buf = std::mem::take(&mut self.buf);
        let pool = self.pool.clone();
        let class = self.class;
        // `self` now holds an empty husk; its Drop hands back a
        // zero-capacity BytesMut that `give_back` rejects.
        PooledBytes { bytes: buf.freeze(), pool, class }
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        self.pool.give_back(self.class, buf);
    }
}

/// An immutable, sharable view over a frozen pooled buffer. Cloned views
/// ([`PooledBytes::share`]) reference the same allocation; when the last
/// reference drops the allocation is reclaimed into the pool.
pub struct PooledBytes {
    bytes: bytes::Bytes,
    pool: Arc<PinnedPool>,
    class: u32,
}

impl PooledBytes {
    /// A zero-copy `Bytes` view of the payload.
    pub fn share(&self) -> bytes::Bytes {
        self.bytes.clone()
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

impl AsRef<[u8]> for PooledBytes {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

impl Drop for PooledBytes {
    fn drop(&mut self) {
        let bytes = std::mem::take(&mut self.bytes);
        // Reclaim only if no outstanding shared views reference the
        // allocation; otherwise the allocation frees normally when the last
        // `Bytes` clone drops.
        if let Ok(buf) = bytes.try_into_mut() {
            self.pool.give_back(self.class, buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_reuse() {
        let pool = PinnedPool::new(2);
        {
            let mut a = pool.acquire(1000);
            a.extend_from_slice(&[1, 2, 3]);
            let _b = pool.acquire(1000);
        } // both return
        {
            let _c = pool.acquire(900); // same class (1024): reused
            let _d = pool.acquire(1024); // reused
            let _e = pool.acquire(1000); // pool empty: fresh
        }
        let (allocs, reuses) = pool.stats();
        assert_eq!(allocs, 3);
        assert_eq!(reuses, 2);
        assert_eq!(pool.copied_bytes(), 3);
    }

    #[test]
    fn retention_is_bounded() {
        let pool = PinnedPool::new(1);
        {
            let _a = pool.acquire(64);
            let _b = pool.acquire(64);
            let _c = pool.acquire(64);
        }
        // Only one retained; two next acquisitions -> 1 reuse + 1 alloc.
        {
            let _x = pool.acquire(64);
            let _y = pool.acquire(64);
        }
        let (allocs, reuses) = pool.stats();
        assert_eq!((allocs, reuses), (4, 1));
    }

    #[test]
    fn acquired_buffers_start_empty_with_capacity() {
        let pool = PinnedPool::new(2);
        {
            let mut a = pool.acquire(100);
            a.extend_from_slice(&[9; 50]);
        }
        let b = pool.acquire(100);
        assert!(b.as_slice().is_empty());
    }

    #[test]
    fn exact_powers_of_two_do_not_round_up() {
        // Regression: class_of used to round 1024 up to the 2048 class,
        // doubling capture memory for exactly-sized tensors.
        let pool = PinnedPool::new(2);
        assert_eq!(pool.acquire(1024).capacity(), 1024);
        assert_eq!(pool.acquire(1025).capacity(), 2048);
        assert_eq!(pool.acquire(1).capacity(), 1);
        assert_eq!(pool.acquire(0).capacity(), 1);
        assert_eq!(pool.acquire(3).capacity(), 4);
    }

    #[test]
    fn frozen_buffers_return_to_the_pool_after_last_view_drops() {
        let pool = PinnedPool::new(2);
        {
            let mut a = pool.acquire(512);
            a.extend_from_slice(&[7; 512]);
            let frozen = a.freeze();
            {
                let view = frozen.share();
                assert_eq!(&view[..4], &[7; 4]);
            } // shared view drops first...
        } // ...then the guard: unique again -> allocation reclaimed
        let _again = pool.acquire(512);
        let (allocs, reuses) = pool.stats();
        assert_eq!((allocs, reuses), (1, 1));
    }
}
