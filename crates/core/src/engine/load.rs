//! The loading pipeline (§4.2, Fig. 10): ranged multi-threaded reads →
//! deserialize/extract → local assembly ("H2D") → all-to-all forwarding of
//! redundancy-eliminated reads.

use crate::engine::{extract_isect, Assembler};
use crate::fault::FaultHook;
use crate::integrity::{with_retries, FailureLog, RetryPolicy};
use crate::plan::ReadItem;
use crate::planner::balance::AssignedLoadPlan;
use crate::{BcpError, Result};
use bcp_collectives::Communicator;
use bcp_model::TrainState;
use bcp_monitor::{enter_context, MetricsSink, SpanContext};
use bcp_storage::DynBackend;
use bytes::{Bytes, BytesMut};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine tuning knobs for loading.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Reader threads per rank.
    pub io_threads: usize,
    /// Fetches larger than this are split into ranged chunk reads spread
    /// over the reader threads (§4.3 multi-threaded single-file download).
    pub chunk_bytes: u64,
    /// Retry policy for downloads.
    pub retries: RetryPolicy,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            io_threads: 4,
            chunk_bytes: 4 * 1024 * 1024,
            retries: RetryPolicy::default(),
        }
    }
}

/// Timing and volume results of one rank's load.
#[derive(Debug, Clone)]
pub struct LoadStats {
    /// End-to-end load time on this rank.
    pub end_to_end: Duration,
    /// Bytes fetched from storage by this rank.
    pub fetched_bytes: u64,
    /// Bytes received from peers instead of storage.
    pub forwarded_bytes: u64,
    /// Number of read items executed locally.
    pub local_reads: usize,
}

/// Wire format of one forwarded intersection payload.
type TransferMsg = Vec<(ReadKey, Bytes)>;

/// Key a receiver uses to match a forwarded payload to its own item.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
struct ReadKey {
    category: crate::plan::Category,
    fqn: String,
    isect_offsets: Vec<usize>,
    isect_lengths: Vec<usize>,
    file: String,
}

impl ReadKey {
    fn of(item: &ReadItem) -> ReadKey {
        ReadKey {
            category: item.category,
            fqn: item.fqn.clone(),
            isect_offsets: item.isect_offsets.clone(),
            isect_lengths: item.isect_lengths.clone(),
            file: item.file.clone(),
        }
    }
}

/// Fetch one item's byte range, chunked across reader threads when large.
#[allow(clippy::too_many_arguments)]
fn fetch_item(
    backend: &DynBackend,
    prefix: &str,
    item: &ReadItem,
    cfg: &LoadConfig,
    log: &Arc<FailureLog>,
    rank: usize,
    sink: &MetricsSink,
    parent: SpanContext,
    step: u64,
) -> Result<Bytes> {
    let (offset, len) = item.fetch_range();
    let path = format!("{prefix}/{}", item.file);
    // Per-item detail span (uncounted: the load/read phase span carries the
    // time) giving the path and byte count each fetch moved, so slow-I/O
    // alerting and traces work on the load path too.
    let mut span = sink
        .span_under("load/fetch", rank, step, parent)
        .uncounted()
        .path(path.clone())
        .bytes(len);
    let _in_fetch = span.enter();
    if len <= cfg.chunk_bytes || cfg.io_threads <= 1 {
        return with_retries(cfg.retries, log, rank, "load/read", Some(&path), || {
            backend.read_range(&path, offset, len)
        });
    }
    span.set_attr("chunks", len.div_ceil(cfg.chunk_bytes).to_string());
    // Multi-threaded ranged read of a single file (§4.3): the optimization
    // that took production HDFS downloads from 400 MB/s to 2-3 GB/s.
    let chunks = len.div_ceil(cfg.chunk_bytes) as usize;
    let per_thread = chunks.div_ceil(cfg.io_threads);
    let mut pieces: Vec<Option<Bytes>> = vec![None; chunks];
    let fetch_ctx = span.context();
    std::thread::scope(|s| -> Result<()> {
        let mut handles = Vec::new();
        for (t, piece_slot) in pieces.chunks_mut(per_thread).enumerate() {
            let backend = backend.clone();
            let path = path.clone();
            let log = log.clone();
            let retries = cfg.retries;
            let base_chunk = t * per_thread;
            let chunk_bytes = cfg.chunk_bytes;
            handles.push(s.spawn(move || -> Result<()> {
                // Parent the reader thread's storage spans under the fetch.
                let _e = enter_context(fetch_ctx);
                for (i, slot) in piece_slot.iter_mut().enumerate() {
                    let c = base_chunk + i;
                    let co = offset + c as u64 * chunk_bytes;
                    let cl = chunk_bytes.min(offset + len - co);
                    let data =
                        with_retries(retries, &log, rank, "load/read-chunk", Some(&path), || {
                            backend.read_range(&path, co, cl)
                        })?;
                    *slot = Some(data);
                }
                Ok(())
            }));
        }
        for h in handles {
            h.join().map_err(|_| BcpError::Corrupt("read thread panicked".into()))??;
        }
        Ok(())
    })?;
    let mut out = BytesMut::with_capacity(len as usize);
    for p in pieces {
        out.extend_from_slice(&p.expect("all chunks fetched"));
    }
    Ok(out.freeze())
}

/// Execute a rank's assigned load plan: read local items, forward
/// deduplicated payloads over `comm` (all-to-all), apply everything to the
/// local state dicts.
#[allow(clippy::too_many_arguments)] // the full engine context, passed once per load
pub fn execute_load(
    assigned: &AssignedLoadPlan,
    state: &mut TrainState,
    backend: DynBackend,
    prefix: &str,
    comm: Option<&Communicator>,
    sink: &MetricsSink,
    log: Arc<FailureLog>,
    cfg: &LoadConfig,
    step: u64,
    faults: &FaultHook,
    parent: SpanContext,
) -> Result<LoadStats> {
    let rank = assigned.rank;
    let started = Instant::now();
    let mut fetched_bytes = 0u64;

    // ---- Read phase (+ extraction, pipelined per item). ----
    faults.check("load/read")?;
    let mut local_payloads: Vec<(usize, Bytes)> = Vec::with_capacity(assigned.reads.len());
    {
        let mut t = sink.span_under("load/read", rank, step, parent);
        let read_ctx = t.context();
        for (idx, item) in assigned.reads.iter().enumerate() {
            let raw = fetch_item(&backend, prefix, item, cfg, &log, rank, sink, read_ctx, step)?;
            fetched_bytes += raw.len() as u64;
            t.add_bytes(raw.len() as u64);
            let isect = extract_isect(item, &raw)?;
            local_payloads.push((idx, isect));
        }
    }

    // ---- Assembly of locally-read items (the "H2D copy"). ----
    let mut assembler = Assembler::new();
    {
        let _t = sink.span_under("load/h2d", rank, step, parent);
        for (idx, payload) in &local_payloads {
            assembler.apply(state, &assigned.reads[*idx], payload)?;
        }
        // Duplicate destinations on this same rank (reader re-applies).
        for (from, item) in &assigned.recvs {
            if *from == rank {
                if let Some((_, payload)) = local_payloads
                    .iter()
                    .find(|(idx, _)| ReadKey::of(&assigned.reads[*idx]) == ReadKey::of(item))
                {
                    assembler.apply(state, item, payload)?;
                }
            }
        }
    }

    // ---- All-to-all forwarding of deduplicated reads (§4.1). ----
    let mut forwarded_bytes = 0u64;
    if let Some(comm) = comm {
        let mut t = sink
            .span_under("load/all2all", rank, step, parent)
            .attr("collective", comm.backend_info());
        // Build per-peer outboxes.
        let mut outbox: Vec<TransferMsg> = vec![Vec::new(); comm.size()];
        for ((idx, payload), recipients) in
            local_payloads.iter().zip(assigned.send_to.iter())
        {
            let key = ReadKey::of(&assigned.reads[*idx]);
            for &peer in recipients {
                let peer_idx = comm
                    .members()
                    .iter()
                    .position(|&m| m == peer)
                    .ok_or_else(|| BcpError::Plan(format!("recipient {peer} not in group")))?;
                outbox[peer_idx].push((key.clone(), payload.clone()));
            }
        }
        let inbox = comm.all_to_all(outbox)?;
        let mut received: std::collections::HashMap<ReadKey, Bytes> = Default::default();
        for msgs in inbox {
            for (key, payload) in msgs {
                forwarded_bytes += payload.len() as u64;
                received.insert(key, payload);
            }
        }
        t.add_bytes(forwarded_bytes);
        for (from, item) in &assigned.recvs {
            if *from == rank {
                continue; // handled above
            }
            let key = ReadKey::of(item);
            let payload = received.get(&key).ok_or_else(|| {
                BcpError::Missing(format!("{}: expected forwarded payload from {from}", item.fqn))
            })?;
            assembler.apply(state, item, payload)?;
        }
    } else if !assigned.recvs.iter().all(|(from, _)| *from == rank) {
        return Err(BcpError::Plan(
            "plan expects peer forwarding but no communicator was given".into(),
        ));
    }

    let local_reads = assigned.reads.len();
    {
        let _t = sink.span_under("load/finish", rank, step, parent);
        assembler.finish(state)?;
    }
    Ok(LoadStats { end_to_end: started.elapsed(), fetched_bytes, forwarded_bytes, local_reads })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Category;
    use bcp_storage::flaky::FailureMode;
    use bcp_storage::{FlakyBackend, MemoryBackend, StorageBackend};
    use bytes::BytesMut;

    fn whole_file_item(len_elems: usize) -> ReadItem {
        ReadItem {
            category: Category::Model,
            fqn: "big".into(),
            dtype: bcp_tensor::DType::F32,
            file: "model_0.bin".into(),
            payload_offset: 0,
            stored_offsets: vec![0],
            stored_lengths: vec![len_elems],
            isect_offsets: vec![0],
            isect_lengths: vec![len_elems],
            dest_offsets: vec![0],
            dest_lengths: vec![len_elems],
            dest_local_elem_start: 0,
        }
    }

    #[test]
    fn chunked_multithreaded_fetch_reassembles_exactly() {
        // A payload large enough to split into many chunks across threads
        // (§4.3's multi-threaded ranged download).
        let n = 100_000usize;
        let mut payload = BytesMut::with_capacity(n * 4);
        for i in 0..n {
            payload.extend_from_slice(&(i as f32).to_le_bytes());
        }
        let payload = payload.freeze();
        let backend: DynBackend = Arc::new(MemoryBackend::new());
        backend.write("ckpt/model_0.bin", payload.clone()).unwrap();
        let cfg = LoadConfig { io_threads: 4, chunk_bytes: 16 * 1024, ..Default::default() };
        let log = Arc::new(FailureLog::new());
        let got =
            fetch_item(&backend, "ckpt", &whole_file_item(n), &cfg, &log, 0, &MetricsSink::disabled(), SpanContext::none(), 0).unwrap();
        assert_eq!(&got[..], &payload[..], "chunked reassembly must be byte-exact");
    }

    #[test]
    fn chunked_fetch_retries_transient_failures() {
        let n = 50_000usize;
        let payload = Bytes::from(vec![0xCDu8; n * 4]);
        let inner = Arc::new(MemoryBackend::new());
        inner.write("ckpt/model_0.bin", payload.clone()).unwrap();
        let flaky: DynBackend = Arc::new(FlakyBackend::new(inner, FailureMode::Reads, 2));
        let cfg = LoadConfig { io_threads: 2, chunk_bytes: 32 * 1024, ..Default::default() };
        let log = Arc::new(FailureLog::new());
        let got = fetch_item(&flaky, "ckpt", &whole_file_item(n), &cfg, &log, 3, &MetricsSink::disabled(), SpanContext::none(), 0).unwrap();
        assert_eq!(got.len(), payload.len());
        assert!(!log.is_empty(), "the injected read failures must be logged");
        assert!(log.records().iter().all(|r| r.stage.starts_with("load/")));
    }

    #[test]
    fn small_fetch_stays_single_threaded() {
        let backend: DynBackend = Arc::new(MemoryBackend::new());
        backend.write("ckpt/model_0.bin", Bytes::from(vec![1u8; 64])).unwrap();
        let cfg = LoadConfig { io_threads: 4, chunk_bytes: 1 << 20, ..Default::default() };
        let log = Arc::new(FailureLog::new());
        let got = fetch_item(&backend, "ckpt", &whole_file_item(16), &cfg, &log, 0, &MetricsSink::disabled(), SpanContext::none(), 0).unwrap();
        assert_eq!(got.len(), 64);
    }
}
