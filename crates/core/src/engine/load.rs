//! The loading pipeline (§4.2, Fig. 10): ranged multi-threaded reads →
//! deserialize/extract → local assembly ("H2D") → forwarding of
//! redundancy-eliminated reads.
//!
//! Two execution modes, selected by [`LoadConfig::overlap`]:
//!
//! * **Overlapped** (default, the paper's Fig. 10 pipeline): every chunk of
//!   every assigned read item is submitted to the shared [`IoPool`] up
//!   front; as each item's last chunk lands it is extracted, applied
//!   locally and eagerly forwarded to the peers that deduplicated their
//!   reads onto this rank — while the remaining fetches are still in
//!   flight. A receiver thread drains inbound forwards concurrently, so
//!   read I/O and communication overlap instead of serializing.
//! * **Sequential** (the pre-overlap baseline, kept for comparison and as
//!   the conservative path): fetch all items, assemble, then one blocking
//!   all-to-all.

use crate::engine::iopool::IoPool;
use crate::engine::{extract_isect, Assembler};
use crate::fault::FaultHook;
use crate::integrity::{with_retries, FailureLog, RetryPolicy};
use crate::plan::ReadItem;
use crate::planner::balance::AssignedLoadPlan;
use crate::{BcpError, Result};
use bcp_collectives::Communicator;
use bcp_model::TrainState;
use bcp_monitor::{enter_context, MetricsSink, SpanContext, SpanGuard};
use bcp_storage::DynBackend;
use bytes::{Bytes, BytesMut};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine tuning knobs for loading.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Reader threads per rank.
    pub io_threads: usize,
    /// Fetches larger than this are split into ranged chunk reads spread
    /// over the reader threads (§4.3 multi-threaded single-file download).
    pub chunk_bytes: u64,
    /// Overlap reads, extraction and peer forwarding item-by-item (Fig. 10)
    /// instead of running read → assemble → all-to-all as serial phases.
    pub overlap: bool,
    /// Retry policy for downloads.
    pub retries: RetryPolicy,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            io_threads: 4,
            chunk_bytes: 4 * 1024 * 1024,
            overlap: true,
            retries: RetryPolicy::default(),
        }
    }
}

/// Timing and volume results of one rank's load.
#[derive(Debug, Clone)]
pub struct LoadStats {
    /// End-to-end load time on this rank.
    pub end_to_end: Duration,
    /// Bytes fetched from storage by this rank.
    pub fetched_bytes: u64,
    /// Bytes received from peers instead of storage.
    pub forwarded_bytes: u64,
    /// Number of read items executed locally.
    pub local_reads: usize,
}

/// Wire format of one rank's sequential-mode all-to-all sends.
type TransferMsg = Vec<(ReadKey, Bytes)>;

/// Key a receiver uses to match a forwarded payload to its own item.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
struct ReadKey {
    category: crate::plan::Category,
    fqn: String,
    isect_offsets: Vec<usize>,
    isect_lengths: Vec<usize>,
    file: String,
}

impl ReadKey {
    fn of(item: &ReadItem) -> ReadKey {
        ReadKey {
            category: item.category,
            fqn: item.fqn.clone(),
            isect_offsets: item.isect_offsets.clone(),
            isect_lengths: item.isect_lengths.clone(),
            file: item.file.clone(),
        }
    }
}

/// The ranged chunks a fetch of `[offset, offset + len)` splits into.
fn chunk_ranges(offset: u64, len: u64, chunk_bytes: u64) -> Vec<(u64, u64)> {
    let chunks = len.div_ceil(chunk_bytes);
    (0..chunks)
        .map(|c| {
            let co = offset + c * chunk_bytes;
            let cl = chunk_bytes.min(offset + len - co);
            (co, cl)
        })
        .collect()
}

/// Reassemble fetched chunks into one contiguous `Bytes`.
///
/// Zero-copy when possible: a single chunk passes through untouched, and
/// when the backend guarantees ranged reads are views of one stable parent
/// allocation per object (`zero_copy_reads`) *and* the chunk views are
/// byte-adjacent, the chunks are stitched without copying. Otherwise one
/// copy into a fresh buffer.
fn coalesce_chunks(pieces: Vec<Bytes>, len: usize, allow_zero_copy: bool) -> Bytes {
    if pieces.is_empty() {
        return Bytes::new();
    }
    if pieces.len() == 1 {
        return pieces.into_iter().next().expect("one piece");
    }
    if allow_zero_copy {
        let adjacent = pieces
            .windows(2)
            .all(|w| w[0].as_ptr() as usize + w[0].len() == w[1].as_ptr() as usize);
        if adjacent {
            let total: usize = pieces.iter().map(Bytes::len).sum();
            debug_assert_eq!(total, len);
            return Bytes::from_owner(Stitched { pieces, total });
        }
    }
    let mut out = BytesMut::with_capacity(len);
    for p in pieces {
        out.extend_from_slice(&p);
    }
    out.freeze()
}

/// Byte-adjacent chunk views stitched into one logical slice. The `Bytes`
/// held in `pieces` keep the parent allocation alive.
struct Stitched {
    pieces: Vec<Bytes>,
    total: usize,
}

impl AsRef<[u8]> for Stitched {
    fn as_ref(&self) -> &[u8] {
        // SAFETY: constructed only when the backend's `zero_copy_reads`
        // contract holds (every piece is a view of the same stable parent
        // allocation) and the pieces were verified byte-adjacent, so
        // `pieces[0].as_ptr()..+total` is one contiguous live range of that
        // allocation, kept alive by the `Bytes` views we own.
        unsafe { std::slice::from_raw_parts(self.pieces[0].as_ptr(), self.total) }
    }
}

/// Fetch one item's byte range, chunked across the I/O pool when large.
#[allow(clippy::too_many_arguments)]
fn fetch_item(
    backend: &DynBackend,
    prefix: &str,
    item: &ReadItem,
    cfg: &LoadConfig,
    io: &Arc<IoPool>,
    log: &Arc<FailureLog>,
    rank: usize,
    sink: &MetricsSink,
    parent: SpanContext,
    step: u64,
) -> Result<Bytes> {
    let (offset, len) = item.fetch_range();
    let path = format!("{prefix}/{}", item.file);
    // Per-item detail span (uncounted: the load/read phase span carries the
    // time) giving the path and byte count each fetch moved, so slow-I/O
    // alerting and traces work on the load path too.
    let mut span =
        sink.span_under("load/fetch", rank, step, parent).uncounted().path(path.clone()).bytes(len);
    let _in_fetch = span.enter();
    if len <= cfg.chunk_bytes || cfg.io_threads <= 1 {
        return with_retries(cfg.retries, log, rank, "load/read", Some(&path), || {
            backend.read_range(&path, offset, len)
        });
    }
    // Multi-threaded ranged read of a single file (§4.3): the optimization
    // that took production HDFS downloads from 400 MB/s to 2-3 GB/s.
    let ranges = chunk_ranges(offset, len, cfg.chunk_bytes);
    span.set_attr("chunks", ranges.len().to_string());
    let fetch_ctx = span.context();
    let jobs: Vec<Box<dyn FnOnce() -> Result<Bytes> + Send + 'static>> = ranges
        .into_iter()
        .map(|(co, cl)| {
            let backend = backend.clone();
            let path = path.clone();
            let log = log.clone();
            let retries = cfg.retries;
            Box::new(move || {
                // Parent the pool worker's storage spans under the fetch.
                let _e = enter_context(fetch_ctx);
                with_retries(retries, &log, rank, "load/read-chunk", Some(&path), || {
                    backend.read_range(&path, co, cl)
                })
            }) as Box<dyn FnOnce() -> Result<Bytes> + Send + 'static>
        })
        .collect();
    let pieces: Vec<Bytes> = io.run_batch(jobs).into_iter().collect::<Result<_>>()?;
    Ok(coalesce_chunks(pieces, len as usize, backend.zero_copy_reads()))
}

/// Execute a rank's assigned load plan: read local items, forward
/// deduplicated payloads over `comm`, apply everything to the local state
/// dicts. Dispatches on [`LoadConfig::overlap`]; all ranks of a job must use
/// the same mode (the two modes use different communication patterns).
#[allow(clippy::too_many_arguments)] // the full engine context, passed once per load
pub fn execute_load(
    assigned: &AssignedLoadPlan,
    state: &mut TrainState,
    backend: DynBackend,
    prefix: &str,
    comm: Option<&Communicator>,
    io: &Arc<IoPool>,
    sink: &MetricsSink,
    log: Arc<FailureLog>,
    cfg: &LoadConfig,
    step: u64,
    faults: &FaultHook,
    parent: SpanContext,
) -> Result<LoadStats> {
    if cfg.overlap {
        execute_load_overlapped(
            assigned, state, backend, prefix, comm, io, sink, log, cfg, step, faults, parent,
        )
    } else {
        execute_load_sequential(
            assigned, state, backend, prefix, comm, io, sink, log, cfg, step, faults, parent,
        )
    }
}

/// Apply a forwarded payload to every waiting recv item with its key.
/// Unknown keys are ignored (the final leftover check reports anything that
/// never arrived).
fn apply_forwarded(
    assembler: &mut Assembler,
    state: &TrainState,
    waiting: &mut HashMap<ReadKey, Vec<(usize, &ReadItem)>>,
    key: &ReadKey,
    payload: &Bytes,
) -> Result<()> {
    if let Some(items) = waiting.remove(key) {
        for (_, item) in items {
            assembler.apply(state, item, payload)?;
        }
    }
    Ok(())
}

/// Fig. 10 pipeline: all chunk reads in flight on the I/O pool at once;
/// per-item extraction, local assembly and eager peer forwards as items
/// complete; inbound forwards drained concurrently by a receiver thread.
#[allow(clippy::too_many_arguments)]
fn execute_load_overlapped(
    assigned: &AssignedLoadPlan,
    state: &mut TrainState,
    backend: DynBackend,
    prefix: &str,
    comm: Option<&Communicator>,
    io: &Arc<IoPool>,
    sink: &MetricsSink,
    log: Arc<FailureLog>,
    cfg: &LoadConfig,
    step: u64,
    faults: &FaultHook,
    parent: SpanContext,
) -> Result<LoadStats> {
    let rank = assigned.rank;
    let started = Instant::now();
    faults.check("load/read")?;

    // Precompute read keys once (and an index for duplicate-destination
    // matching — previously an O(n²) rescan per recv).
    let keys: Vec<ReadKey> = assigned.reads.iter().map(ReadKey::of).collect();
    let mut key_to_idx: HashMap<ReadKey, usize> = HashMap::with_capacity(keys.len());
    for (idx, key) in keys.iter().enumerate() {
        key_to_idx.entry(key.clone()).or_insert(idx);
    }

    // Sort inbound expectations: same-rank duplicates apply straight from
    // the local read; remote ones wait on the receiver thread. The expected
    // message count per source is the number of *distinct* (source, key)
    // pairs — senders deduplicate recipients, so duplicate recv entries for
    // one key share a single message.
    let mut local_dups: Vec<Vec<&ReadItem>> = vec![Vec::new(); assigned.reads.len()];
    let mut remote_waiting: HashMap<ReadKey, Vec<(usize, &ReadItem)>> = HashMap::new();
    let mut expected_msgs: BTreeMap<usize, usize> = BTreeMap::new();
    let mut seen_pairs: HashSet<(usize, ReadKey)> = HashSet::new();
    for (from, item) in &assigned.recvs {
        let key = ReadKey::of(item);
        if *from == rank {
            if let Some(&idx) = key_to_idx.get(&key) {
                local_dups[idx].push(item);
            }
        } else {
            if seen_pairs.insert((*from, key.clone())) {
                *expected_msgs.entry(*from).or_default() += 1;
            }
            remote_waiting.entry(key).or_default().push((*from, item));
        }
    }
    let total_expected: usize = expected_msgs.values().sum();
    if total_expected > 0 && comm.is_none() {
        return Err(BcpError::Plan(
            "plan expects peer forwarding but no communicator was given".into(),
        ));
    }

    // Receiver thread: drains inbound forwards while we fetch. Messages are
    // matched by key content, so arrival order never matters.
    type FwdMsg = Result<(usize, ReadKey, Bytes)>;
    let (fwd_tx, fwd_rx) = crossbeam::channel::unbounded::<FwdMsg>();
    let mut recv_handle = None;
    if total_expected > 0 {
        let c = comm.expect("checked above").clone();
        let expected = expected_msgs.clone();
        let handle = std::thread::Builder::new()
            .name(format!("bcp-recv-{rank}"))
            .spawn(move || {
                'sources: for (&src, &count) in expected.iter() {
                    for _ in 0..count {
                        let msg = c.recv::<(ReadKey, Bytes)>(src);
                        let failed = msg.is_err();
                        let relay =
                            msg.map(|(key, payload)| (src, key, payload)).map_err(BcpError::from);
                        if fwd_tx.send(relay).is_err() || failed {
                            break 'sources;
                        }
                    }
                }
            })
            .map_err(|e| BcpError::Corrupt(format!("spawn failed: {e}")))?;
        recv_handle = Some(handle);
    } else {
        drop(fwd_tx);
    }

    let mut assembler = Assembler::new();
    let mut fetched_bytes = 0u64;
    let mut forwarded_bytes = 0u64;
    let mut applied_msgs = 0usize;
    // Dedupe eager sends by (peer, key) — the exact mirror of the
    // receiver's distinct-(source, key) expectation.
    let mut sent_pairs: HashSet<(usize, ReadKey)> = HashSet::new();

    struct PendingFetch {
        pieces: Vec<Option<Bytes>>,
        remaining: usize,
        span: Option<SpanGuard>,
        len: u64,
    }

    // ---- Read window: every chunk of every item in flight at once. ----
    {
        let mut t = sink.span_under("load/read", rank, step, parent);
        let read_ctx = t.context();
        let (chunk_tx, chunk_rx) = crossbeam::channel::unbounded::<(usize, Result<Bytes>)>();
        let mut flat: Vec<(usize, usize)> = Vec::new(); // job index -> (item, chunk)
        let mut pending: Vec<PendingFetch> = Vec::with_capacity(assigned.reads.len());
        for (idx, item) in assigned.reads.iter().enumerate() {
            let (offset, len) = item.fetch_range();
            let path = format!("{prefix}/{}", item.file);
            let single = len <= cfg.chunk_bytes || cfg.io_threads <= 1;
            let ranges = if single {
                vec![(offset, len)]
            } else {
                chunk_ranges(offset, len, cfg.chunk_bytes)
            };
            let mut span = sink
                .span_under("load/fetch", rank, step, read_ctx)
                .uncounted()
                .path(path.clone())
                .bytes(len);
            if !single {
                span.set_attr("chunks", ranges.len().to_string());
            }
            let fetch_ctx = span.context();
            let stage: &'static str = if single { "load/read" } else { "load/read-chunk" };
            for (ci, &(co, cl)) in ranges.iter().enumerate() {
                let flat_idx = flat.len();
                flat.push((idx, ci));
                let backend = backend.clone();
                let path = path.clone();
                let log = log.clone();
                let retries = cfg.retries;
                io.submit(chunk_tx.clone(), flat_idx, move || {
                    let _e = enter_context(fetch_ctx);
                    with_retries(retries, &log, rank, stage, Some(&path), || {
                        backend.read_range(&path, co, cl)
                    })
                });
            }
            pending.push(PendingFetch {
                pieces: vec![None; ranges.len()],
                remaining: ranges.len(),
                span: Some(span),
                len,
            });
        }
        drop(chunk_tx);

        let zero_copy = backend.zero_copy_reads();
        let mut completed = 0usize;
        while completed < pending.len() {
            let (flat_idx, res) = chunk_rx
                .recv()
                .map_err(|_| BcpError::Corrupt("I/O pool dropped a chunk read".into()))?;
            let (idx, ci) = flat[flat_idx];
            let data = res?;
            let p = &mut pending[idx];
            p.pieces[ci] = Some(data);
            p.remaining -= 1;
            if p.remaining == 0 {
                completed += 1;
                let span = p.span.take();
                let pieces: Vec<Bytes> =
                    p.pieces.iter_mut().map(|s| s.take().expect("all chunks fetched")).collect();
                let raw = coalesce_chunks(pieces, p.len as usize, zero_copy);
                fetched_bytes += raw.len() as u64;
                t.add_bytes(raw.len() as u64);
                let item = &assigned.reads[idx];
                let isect = extract_isect(item, &raw)?;
                // Local assembly, item-by-item (the fused "H2D").
                assembler.apply(state, item, &isect)?;
                for dup in &local_dups[idx] {
                    assembler.apply(state, dup, &isect)?;
                }
                // Eager forwards: post as soon as the intersection exists,
                // while other fetches are still in flight.
                if let Some(c) = comm {
                    for &peer in &assigned.send_to[idx] {
                        if sent_pairs.insert((peer, keys[idx].clone())) {
                            c.send_async(peer, (keys[idx].clone(), isect.clone()))?;
                        }
                    }
                }
                drop(span);
            }
            // Opportunistically drain forwards that already arrived.
            loop {
                match fwd_rx.try_recv() {
                    Ok(Ok((_from, key, payload))) => {
                        forwarded_bytes += payload.len() as u64;
                        apply_forwarded(
                            &mut assembler,
                            state,
                            &mut remote_waiting,
                            &key,
                            &payload,
                        )?;
                        applied_msgs += 1;
                    }
                    Ok(Err(e)) => return Err(e),
                    Err(_) => break,
                }
            }
        }
    }

    // ---- Communication tail: whatever forwards are still inbound. ----
    if let Some(c) = comm {
        let mut t = sink
            .span_under("load/all2all", rank, step, parent)
            .attr("collective", c.backend_info());
        while applied_msgs < total_expected {
            match fwd_rx.recv() {
                Ok(Ok((_from, key, payload))) => {
                    forwarded_bytes += payload.len() as u64;
                    apply_forwarded(&mut assembler, state, &mut remote_waiting, &key, &payload)?;
                    applied_msgs += 1;
                }
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err(BcpError::Corrupt("forward receiver thread died".into())),
            }
        }
        t.add_bytes(forwarded_bytes);
        if let Some(h) = recv_handle.take() {
            let _ = h.join();
        }
    }
    if let Some((_, entries)) = remote_waiting.iter().next() {
        let (from, item) = &entries[0];
        return Err(BcpError::Missing(format!(
            "{}: expected forwarded payload from {from}",
            item.fqn
        )));
    }

    let local_reads = assigned.reads.len();
    {
        let _t = sink.span_under("load/finish", rank, step, parent);
        assembler.finish(state)?;
    }
    Ok(LoadStats { end_to_end: started.elapsed(), fetched_bytes, forwarded_bytes, local_reads })
}

/// The pre-overlap baseline: read everything, assemble, then one blocking
/// all-to-all. Kept selectable so benchmarks can quantify the overlap win
/// on identical plans.
#[allow(clippy::too_many_arguments)]
fn execute_load_sequential(
    assigned: &AssignedLoadPlan,
    state: &mut TrainState,
    backend: DynBackend,
    prefix: &str,
    comm: Option<&Communicator>,
    io: &Arc<IoPool>,
    sink: &MetricsSink,
    log: Arc<FailureLog>,
    cfg: &LoadConfig,
    step: u64,
    faults: &FaultHook,
    parent: SpanContext,
) -> Result<LoadStats> {
    let rank = assigned.rank;
    let started = Instant::now();
    let mut fetched_bytes = 0u64;

    // ---- Read phase (+ extraction, pipelined per item). ----
    faults.check("load/read")?;
    let mut local_payloads: Vec<(usize, Bytes)> = Vec::with_capacity(assigned.reads.len());
    {
        let mut t = sink.span_under("load/read", rank, step, parent);
        let read_ctx = t.context();
        for (idx, item) in assigned.reads.iter().enumerate() {
            let raw =
                fetch_item(&backend, prefix, item, cfg, io, &log, rank, sink, read_ctx, step)?;
            fetched_bytes += raw.len() as u64;
            t.add_bytes(raw.len() as u64);
            let isect = extract_isect(item, &raw)?;
            local_payloads.push((idx, isect));
        }
    }

    // Keys of local reads, computed once (duplicate-destination matching
    // used to recompute ReadKey::of per comparison inside a find()).
    let mut key_to_idx: HashMap<ReadKey, usize> = HashMap::with_capacity(assigned.reads.len());
    for (idx, item) in assigned.reads.iter().enumerate() {
        key_to_idx.entry(ReadKey::of(item)).or_insert(idx);
    }

    // ---- Assembly of locally-read items (the "H2D copy"). ----
    let mut assembler = Assembler::new();
    {
        let _t = sink.span_under("load/h2d", rank, step, parent);
        for (idx, payload) in &local_payloads {
            assembler.apply(state, &assigned.reads[*idx], payload)?;
        }
        // Duplicate destinations on this same rank (reader re-applies).
        for (from, item) in &assigned.recvs {
            if *from == rank {
                if let Some(&idx) = key_to_idx.get(&ReadKey::of(item)) {
                    assembler.apply(state, item, &local_payloads[idx].1)?;
                }
            }
        }
    }

    // ---- All-to-all forwarding of deduplicated reads (§4.1). ----
    let mut forwarded_bytes = 0u64;
    if let Some(comm) = comm {
        let mut t = sink
            .span_under("load/all2all", rank, step, parent)
            .attr("collective", comm.backend_info());
        // Build per-peer outboxes.
        let mut outbox: Vec<TransferMsg> = vec![Vec::new(); comm.size()];
        for ((idx, payload), recipients) in local_payloads.iter().zip(assigned.send_to.iter()) {
            let key = ReadKey::of(&assigned.reads[*idx]);
            for &peer in recipients {
                let peer_idx = comm
                    .members()
                    .iter()
                    .position(|&m| m == peer)
                    .ok_or_else(|| BcpError::Plan(format!("recipient {peer} not in group")))?;
                outbox[peer_idx].push((key.clone(), payload.clone()));
            }
        }
        let inbox = comm.all_to_all(outbox)?;
        let mut received: HashMap<ReadKey, Bytes> = Default::default();
        for msgs in inbox {
            for (key, payload) in msgs {
                forwarded_bytes += payload.len() as u64;
                received.insert(key, payload);
            }
        }
        t.add_bytes(forwarded_bytes);
        for (from, item) in &assigned.recvs {
            if *from == rank {
                continue; // handled above
            }
            let key = ReadKey::of(item);
            let payload = received.get(&key).ok_or_else(|| {
                BcpError::Missing(format!("{}: expected forwarded payload from {from}", item.fqn))
            })?;
            assembler.apply(state, item, payload)?;
        }
    } else if !assigned.recvs.iter().all(|(from, _)| *from == rank) {
        return Err(BcpError::Plan(
            "plan expects peer forwarding but no communicator was given".into(),
        ));
    }

    let local_reads = assigned.reads.len();
    {
        let _t = sink.span_under("load/finish", rank, step, parent);
        assembler.finish(state)?;
    }
    Ok(LoadStats { end_to_end: started.elapsed(), fetched_bytes, forwarded_bytes, local_reads })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Category;
    use bcp_storage::flaky::FailureMode;
    use bcp_storage::{FlakyBackend, MemoryBackend, StorageBackend};
    use bytes::BytesMut;

    fn whole_file_item(len_elems: usize) -> ReadItem {
        ReadItem {
            category: Category::Model,
            fqn: "big".into(),
            dtype: bcp_tensor::DType::F32,
            file: "model_0.bin".into(),
            payload_offset: 0,
            stored_offsets: vec![0],
            stored_lengths: vec![len_elems],
            isect_offsets: vec![0],
            isect_lengths: vec![len_elems],
            dest_offsets: vec![0],
            dest_lengths: vec![len_elems],
            dest_local_elem_start: 0,
        }
    }

    #[test]
    fn chunked_multithreaded_fetch_reassembles_exactly() {
        // A payload large enough to split into many chunks across the pool
        // (§4.3's multi-threaded ranged download).
        let n = 100_000usize;
        let mut payload = BytesMut::with_capacity(n * 4);
        for i in 0..n {
            payload.extend_from_slice(&(i as f32).to_le_bytes());
        }
        let payload = payload.freeze();
        let backend: DynBackend = Arc::new(MemoryBackend::new());
        backend.write("ckpt/model_0.bin", payload.clone()).unwrap();
        let cfg = LoadConfig { io_threads: 4, chunk_bytes: 16 * 1024, ..Default::default() };
        let io = IoPool::new(4);
        let log = Arc::new(FailureLog::new());
        let got = fetch_item(
            &backend,
            "ckpt",
            &whole_file_item(n),
            &cfg,
            &io,
            &log,
            0,
            &MetricsSink::disabled(),
            SpanContext::none(),
            0,
        )
        .unwrap();
        assert_eq!(&got[..], &payload[..], "chunked reassembly must be byte-exact");
        // Memory-backed ranged reads are adjacent views of the stored
        // object, so the chunks stitch back zero-copy.
        assert_eq!(got.as_ptr(), payload.as_ptr(), "contiguous chunks must not be copied");
    }

    #[test]
    fn chunked_fetch_retries_transient_failures() {
        let n = 50_000usize;
        let payload = Bytes::from(vec![0xCDu8; n * 4]);
        let inner = Arc::new(MemoryBackend::new());
        inner.write("ckpt/model_0.bin", payload.clone()).unwrap();
        let flaky: DynBackend = Arc::new(FlakyBackend::new(inner, FailureMode::Reads, 2));
        let cfg = LoadConfig { io_threads: 2, chunk_bytes: 32 * 1024, ..Default::default() };
        let io = IoPool::new(2);
        let log = Arc::new(FailureLog::new());
        let got = fetch_item(
            &flaky,
            "ckpt",
            &whole_file_item(n),
            &cfg,
            &io,
            &log,
            3,
            &MetricsSink::disabled(),
            SpanContext::none(),
            0,
        )
        .unwrap();
        assert_eq!(got.len(), payload.len());
        assert!(!log.is_empty(), "the injected read failures must be logged");
        assert!(log.records().iter().all(|r| r.stage.starts_with("load/")));
    }

    #[test]
    fn small_fetch_stays_single_threaded_and_zero_copy() {
        let backend: DynBackend = Arc::new(MemoryBackend::new());
        let stored = Bytes::from(vec![1u8; 64]);
        backend.write("ckpt/model_0.bin", stored.clone()).unwrap();
        let cfg = LoadConfig { io_threads: 4, chunk_bytes: 1 << 20, ..Default::default() };
        let io = IoPool::new(4);
        let log = Arc::new(FailureLog::new());
        let got = fetch_item(
            &backend,
            "ckpt",
            &whole_file_item(16),
            &cfg,
            &io,
            &log,
            0,
            &MetricsSink::disabled(),
            SpanContext::none(),
            0,
        )
        .unwrap();
        assert_eq!(got.len(), 64);
        // A single-range memory fetch is a view of the stored allocation.
        assert_eq!(got.as_ptr(), stored.as_ptr());
    }

    #[test]
    fn coalesce_copies_only_when_it_must() {
        let data = Bytes::from((0u8..200).collect::<Vec<u8>>());
        let adjacent = vec![data.slice(0..80), data.slice(80..200)];
        // Zero-copy stitch when the backend contract allows it.
        let stitched = coalesce_chunks(adjacent.clone(), 200, true);
        assert_eq!(&stitched[..], &data[..]);
        assert_eq!(stitched.as_ptr(), data.as_ptr());
        // Copy when the contract does not hold.
        let copied = coalesce_chunks(adjacent, 200, false);
        assert_eq!(&copied[..], &data[..]);
        assert_ne!(copied.as_ptr(), data.as_ptr());
        // Non-adjacent views fall back to copying even when allowed.
        let gappy = vec![data.slice(0..80), data.slice(100..200)];
        let out = coalesce_chunks(gappy, 180, true);
        assert_eq!(out.len(), 180);
        assert_eq!(&out[..80], &data[..80]);
        assert_eq!(&out[80..], &data[100..200]);
    }
}
