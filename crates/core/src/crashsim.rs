//! Crash-consistency explorer: enumerate every storage state a crash could
//! leave behind and hand each to recovery for invariant checking.
//!
//! The commit protocol's claim (Appendix B) is that a torn save can never
//! load as valid: either the `COMPLETE` marker is absent (recovery GCs the
//! debris and resumes from the previous committed step) or the full step
//! is present and CRC-verified. The explorer makes that claim testable by
//! brute force: a save recorded through a
//! [`bcp_storage::journal::JournalBackend`] yields one crash state per
//! mutation-log prefix — a crash *between* durable ops — plus torn variants
//! of the next in-flight op — a crash *mid-write*, at interesting byte
//! cuts including mid-segment inside a `write_segments` gather-write.
//! `crates/core/tests/crash_consistency.rs` drives `gc_torn` +
//! `load_latest` over the full matrix and asserts that every state
//! recovers to a committed, scrub-clean step within bounded time.

use crate::Result;
use bcp_storage::journal::JournalBackend;
use bcp_storage::DynBackend;

/// One enumerated post-crash storage state.
pub struct CrashState {
    /// Human-readable description for failure messages,
    /// e.g. `prefix 7/23 (next: write_segments job/step_2/model_0.bin)` or
    /// `torn write job/step_2/COMPLETE @ 1`.
    pub label: String,
    /// How many journal ops are fully durable in this state.
    pub ops_applied: usize,
    /// For torn states: the byte cut applied to op `ops_applied`'s new
    /// content. `None` for clean prefix states.
    pub torn_cut: Option<u64>,
    /// The materialized storage state (an independent in-memory backend).
    pub backend: DynBackend,
}

/// Enumerate the full crash matrix of a recorded save: every mutation-log
/// prefix `0..=n` (the baseline, each intermediate state, and the fully
/// applied state), plus every torn variant of each op's in-flight write at
/// the cuts [`JournalBackend::torn_points`] proposes.
pub fn enumerate_crash_states(journal: &JournalBackend) -> Result<Vec<CrashState>> {
    let ops = journal.ops();
    let total = ops.len();
    let mut states = Vec::new();
    for n in 0..=total {
        let next = ops.get(n).map(|op| format!(" (next: {})", op.label())).unwrap_or_default();
        states.push(CrashState {
            label: format!("prefix {n}/{total}{next}"),
            ops_applied: n,
            torn_cut: None,
            backend: journal.materialize_prefix(n)?,
        });
        if n < total {
            for cut in journal.torn_points(n)? {
                states.push(CrashState {
                    label: format!("torn {} @ {cut}", ops[n].label()),
                    ops_applied: n,
                    torn_cut: Some(cut),
                    backend: journal.materialize_torn(n, cut)?,
                });
            }
        }
    }
    Ok(states)
}

/// Count of torn states per journaled op index, for matrix-coverage
/// assertions (the explorer must cover ≥ 3 cuts per multi-byte write).
pub fn torn_counts(states: &[CrashState]) -> Vec<(usize, usize)> {
    let mut counts: std::collections::BTreeMap<usize, usize> = Default::default();
    for s in states.iter().filter(|s| s.torn_cut.is_some()) {
        *counts.entry(s.ops_applied).or_default() += 1;
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_storage::{MemoryBackend, StorageBackend};
    use bytes::Bytes;
    use std::sync::Arc;

    #[test]
    fn matrix_covers_prefixes_and_torn_variants() {
        let journal = JournalBackend::new(Arc::new(MemoryBackend::new())).unwrap();
        journal.write("a/data", Bytes::from(vec![1u8; 64])).unwrap();
        journal
            .write_segments("a/gather", &[Bytes::from(vec![2u8; 32]), Bytes::from(vec![3u8; 32])])
            .unwrap();
        journal.rename("a/data", "a/renamed").unwrap();
        journal.delete("a/renamed").unwrap();

        let states = enumerate_crash_states(&journal).unwrap();
        let prefixes = states.iter().filter(|s| s.torn_cut.is_none()).count();
        assert_eq!(prefixes, 5, "every prefix 0..=4 enumerated");

        let torn = torn_counts(&states);
        // Ops 0 and 1 are multi-byte writes: ≥ 3 cuts each. Ops 2 and 3
        // (rename, delete) are atomic: no torn variants.
        assert!(torn.iter().any(|&(op, n)| op == 0 && n >= 3), "torn counts: {torn:?}");
        assert!(torn.iter().any(|&(op, n)| op == 1 && n >= 3), "torn counts: {torn:?}");
        assert!(!torn.iter().any(|&(op, _)| op >= 2));

        // A torn state really is torn: the mid-segment cut of op 1 holds a
        // short gather file while op 0's write is fully present.
        let mid = states
            .iter()
            .find(|s| s.ops_applied == 1 && s.torn_cut == Some(32))
            .expect("segment-boundary cut enumerated");
        assert_eq!(mid.backend.size("a/gather").unwrap(), 32);
        assert_eq!(mid.backend.size("a/data").unwrap(), 64);
    }

    #[test]
    fn states_are_independent_backends() {
        let journal = JournalBackend::new(Arc::new(MemoryBackend::new())).unwrap();
        journal.write("f", Bytes::from_static(b"payload")).unwrap();
        let states = enumerate_crash_states(&journal).unwrap();
        // Mutating one materialized state must not leak into another.
        states[0].backend.write("f", Bytes::from_static(b"scribble")).unwrap();
        let full = states.iter().find(|s| s.ops_applied == 1 && s.torn_cut.is_none()).unwrap();
        assert_eq!(&full.backend.read("f").unwrap()[..], b"payload");
    }
}
