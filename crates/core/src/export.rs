//! Safetensors export (Appendix F).
//!
//! "To improve compatibility with the Hugging Face open-source ecosystem,
//! ByteCheckpoint incorporates functionality to export checkpoints in the
//! Safetensors format." This module consolidates a distributed checkpoint —
//! any source parallelism — into full tensors and writes a real safetensors
//! file: `u64` little-endian header length, JSON header with
//! `{"name": {"dtype", "shape", "data_offsets"}}`, then the raw payloads.

use crate::metadata::{GlobalMetadata, METADATA_FILE};
use crate::{BcpError, Result};
use bcp_storage::DynBackend;
use bcp_tensor::{DType, Tensor};
use bytes::{BufMut, Bytes, BytesMut};
use std::collections::BTreeMap;

fn safetensors_dtype(dt: DType) -> &'static str {
    match dt {
        DType::F64 => "F64",
        DType::F32 => "F32",
        DType::F16 => "F16",
        DType::BF16 => "BF16",
        DType::I64 => "I64",
        DType::I32 => "I32",
        DType::I16 => "I16",
        DType::U8 => "U8",
        DType::Bool => "BOOL",
    }
}

/// Consolidate one logical tensor from a checkpoint into a full (unsharded)
/// tensor, reading every saved segment (load-time resharding to a single
/// replica).
pub fn consolidate_tensor(
    backend: &DynBackend,
    prefix: &str,
    meta: &GlobalMetadata,
    fqn: &str,
) -> Result<Tensor> {
    let entries = meta
        .tensor_map
        .get(fqn)
        .ok_or_else(|| BcpError::Missing(format!("{fqn} not in checkpoint")))?;
    let basic = &entries[0].basic;
    let mut full = Tensor::zeros(basic.dtype, basic.global_shape.clone());
    let mut covered = 0usize;
    for e in entries {
        let data = backend.read_range(
            &format!("{prefix}/{}", e.byte.file),
            e.byte.offset,
            e.byte.length,
        )?;
        let piece = Tensor::from_bytes(e.basic.dtype, e.shard.lengths.clone(), data)?;
        full = full.write_box(&e.shard.offsets, &piece)?;
        covered += e.shard.numel();
    }
    if covered < full.numel() {
        return Err(BcpError::Missing(format!(
            "{fqn}: checkpoint covers {covered}/{} elements",
            full.numel()
        )));
    }
    Ok(full)
}

/// Export a checkpoint's model tensors (optionally filtered) into one
/// safetensors blob, returned as bytes. FQNs prefixed `optim.` are excluded
/// unless `include_optimizer` is set.
pub fn export_safetensors(
    backend: &DynBackend,
    prefix: &str,
    include_optimizer: bool,
) -> Result<Bytes> {
    let meta_bytes = backend.read(&format!("{prefix}/{METADATA_FILE}"))?;
    let meta = GlobalMetadata::from_bytes(&meta_bytes).map_err(BcpError::Corrupt)?;
    let fqns: Vec<&String> =
        meta.tensor_map.keys().filter(|f| include_optimizer || !f.starts_with("optim.")).collect();

    // Header construction: offsets are relative to the data section.
    let mut header: BTreeMap<String, serde_json::Value> = BTreeMap::new();
    let mut payloads: Vec<Bytes> = Vec::with_capacity(fqns.len());
    let mut cursor = 0u64;
    for fqn in fqns {
        let t = consolidate_tensor(backend, prefix, &meta, fqn)?;
        let nbytes = t.nbytes() as u64;
        header.insert(
            fqn.clone(),
            serde_json::json!({
                "dtype": safetensors_dtype(t.dtype()),
                "shape": t.shape(),
                "data_offsets": [cursor, cursor + nbytes],
            }),
        );
        payloads.push(t.bytes()?.clone());
        cursor += nbytes;
    }
    header.insert(
        "__metadata__".to_string(),
        serde_json::json!({"format": "pt", "producer": "bytecheckpoint-rs", "step": meta.step.to_string()}),
    );
    let header_json = serde_json::to_vec(&header).expect("header serializes");
    let mut out = BytesMut::with_capacity(8 + header_json.len() + cursor as usize);
    out.put_u64_le(header_json.len() as u64);
    out.put_slice(&header_json);
    for p in payloads {
        out.put_slice(&p);
    }
    Ok(out.freeze())
}

/// Import a safetensors blob as a committed ByteCheckpoint checkpoint under
/// `prefix` — the reverse direction of [`export_safetensors`], used to seed
/// distributed training (any target parallelism) from Hugging Face weights.
///
/// Every tensor is stored as a single whole-tensor shard in `model_0.bin`;
/// load-time resharding then cuts it to whatever the target job needs.
pub fn import_safetensors(
    backend: &DynBackend,
    prefix: &str,
    blob: &Bytes,
    step: u64,
) -> Result<GlobalMetadata> {
    use crate::metadata::{BasicMeta, ByteMeta, ShardMeta, TensorShardEntry};
    let tensors = parse_safetensors(blob)?;
    let file = "model_0.bin".to_string();
    let mut meta = GlobalMetadata::new("import", step, "TP=1,DP=1,PP=1", 1);
    let mut buf = BytesMut::new();
    for (fqn, tensor) in &tensors {
        let shard = ShardMeta {
            fqn: fqn.clone(),
            offsets: vec![0; tensor.rank()],
            lengths: tensor.shape().to_vec(),
        };
        let payload = tensor.bytes()?;
        let (frame, payload_off) = {
            let base = buf.len() as u64;
            let (frame, off) = crate::format::encode_frame(&shard, tensor.dtype(), payload);
            (frame, base + off)
        };
        buf.extend_from_slice(&frame);
        meta.tensor_map.entry(fqn.clone()).or_default().push(TensorShardEntry {
            shard,
            basic: BasicMeta::contiguous(tensor.dtype(), tensor.shape().to_vec(), "import"),
            byte: ByteMeta {
                file: file.clone(),
                offset: payload_off,
                length: payload.len() as u64,
            },
        });
    }
    backend.write(&format!("{prefix}/{file}"), buf.freeze())?;
    backend.write(&format!("{prefix}/{METADATA_FILE}"), Bytes::from(meta.to_bytes()))?;
    crate::integrity::commit_checkpoint(backend, prefix)?;
    Ok(meta)
}

/// Parse a safetensors blob back into named tensors (round-trip validation
/// and the evaluation-task consumer side).
pub fn parse_safetensors(data: &Bytes) -> Result<BTreeMap<String, Tensor>> {
    if data.len() < 8 {
        return Err(BcpError::Corrupt("safetensors blob too short".into()));
    }
    let hlen = u64::from_le_bytes(data[..8].try_into().unwrap()) as usize;
    if 8 + hlen > data.len() {
        return Err(BcpError::Corrupt("safetensors header exceeds blob".into()));
    }
    let header: BTreeMap<String, serde_json::Value> = serde_json::from_slice(&data[8..8 + hlen])
        .map_err(|e| BcpError::Corrupt(format!("bad safetensors header: {e}")))?;
    let base = 8 + hlen;
    let mut out = BTreeMap::new();
    for (name, spec) in header {
        if name == "__metadata__" {
            continue;
        }
        let dtype_str = spec["dtype"].as_str().unwrap_or("");
        let dtype = match dtype_str {
            "F64" => DType::F64,
            "F32" => DType::F32,
            "F16" => DType::F16,
            "BF16" => DType::BF16,
            "I64" => DType::I64,
            "I32" => DType::I32,
            "I16" => DType::I16,
            "U8" => DType::U8,
            "BOOL" => DType::Bool,
            other => return Err(BcpError::Corrupt(format!("unknown dtype {other}"))),
        };
        let shape: Vec<usize> = spec["shape"]
            .as_array()
            .ok_or_else(|| BcpError::Corrupt("shape not an array".into()))?
            .iter()
            .map(|v| v.as_u64().unwrap_or(0) as usize)
            .collect();
        let offs = spec["data_offsets"]
            .as_array()
            .ok_or_else(|| BcpError::Corrupt("missing data_offsets".into()))?;
        let (s, e) = (offs[0].as_u64().unwrap() as usize, offs[1].as_u64().unwrap() as usize);
        if base + e > data.len() {
            return Err(BcpError::Corrupt(format!("{name}: payload out of bounds")));
        }
        out.insert(name, Tensor::from_bytes(dtype, shape, data.slice(base + s..base + e))?);
    }
    Ok(out)
}
