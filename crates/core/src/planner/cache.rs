//! Plan and metadata caching (§4.1).
//!
//! "Both the save plans and the global metadata file, although coupled with
//! specific parallelism, remain constant throughout a single training
//! session ... Once established for the first time, the save plans and
//! global metadata file are cached for future reuse, eliminating repetitive
//! planning." Planning a 405B model across 8960 GPUs costs 62 s without the
//! cache — it is the dominant first-save cost in the Table 9 breakdown.

use crate::metadata::GlobalMetadata;
use crate::plan::SavePlan;
use bcp_model::TrainState;
use bcp_tensor::fill::splitmix64;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What one rank caches after a full planning round: its final
/// (deduplicated) save plan and — on the coordinator — the metadata
/// template whose step field is patched per checkpoint.
#[derive(Debug, Clone)]
pub struct CachedSave {
    /// The rank's final save plan.
    pub plan: SavePlan,
    /// The full metadata template (present on the coordinator only).
    pub metadata: Option<GlobalMetadata>,
}

/// Per-process plan cache with hit/miss accounting.
#[derive(Default)]
pub struct PlanCache {
    entries: Mutex<HashMap<u64, Arc<CachedSave>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Cache signature of a rank's state-dict *structure*: FQNs, shapes,
    /// dtypes and shard specs — everything the plan depends on except the
    /// tensor values. Any structural change (new parallelism, different
    /// model) changes the signature and misses the cache.
    pub fn signature(framework: &str, parallelism: &str, rank: usize, state: &TrainState) -> u64 {
        fn mix(h: u64, s: &str) -> u64 {
            s.as_bytes().iter().fold(h, |h, b| splitmix64(h ^ *b as u64))
        }
        let mut h: u64 = splitmix64(rank as u64 ^ 0xCAC4E);
        h = mix(h, framework);
        h = mix(h, parallelism);
        for dict in [&state.model, &state.optimizer] {
            for e in dict.entries.values() {
                h = mix(h, &e.fqn);
                h = mix(h, e.dtype.name());
                for &d in &e.global_shape {
                    h = splitmix64(h ^ d as u64);
                }
                h = mix(h, &format!("{:?}", e.spec));
            }
        }
        h
    }

    /// Look up a cached plan.
    pub fn get(&self, sig: u64) -> Option<Arc<CachedSave>> {
        let got = self.entries.lock().get(&sig).cloned();
        match &got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Insert a freshly planned result.
    pub fn insert(&self, sig: u64, cached: CachedSave) -> Arc<CachedSave> {
        let arc = Arc::new(cached);
        self.entries.lock().insert(sig, arc.clone());
        arc
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Drop all cached plans (e.g. after an in-session model surgery).
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_model::states::{build_train_state, Framework};
    use bcp_model::zoo;
    use bcp_topology::Parallelism;

    #[test]
    fn signature_stable_under_value_changes_but_not_structure() {
        let arch = zoo::tiny_gpt();
        let par = Parallelism::new(2, 1, 1).unwrap();
        let fw = Framework::Megatron { distributed_optimizer: false };
        let mut a = build_train_state(&arch, fw, par, 0, true);
        let sig1 = PlanCache::signature("megatron", &par.describe(), 0, &a);
        // Train a few steps: values change, structure does not.
        bcp_model::TrainerConfig::default().run(&mut a, 0, 3);
        let sig2 = PlanCache::signature("megatron", &par.describe(), 0, &a);
        assert_eq!(sig1, sig2);
        // Different rank, parallelism, or framework changes the signature.
        let b = build_train_state(&arch, fw, par, 1, false);
        assert_ne!(sig1, PlanCache::signature("megatron", &par.describe(), 1, &b));
        assert_ne!(sig1, PlanCache::signature("megatron", "TP=1,DP=2,PP=1", 0, &a));
        assert_ne!(sig1, PlanCache::signature("fsdp", &par.describe(), 0, &a));
    }

    #[test]
    fn hit_miss_accounting() {
        let cache = PlanCache::new();
        assert!(cache.get(42).is_none());
        cache.insert(42, CachedSave { plan: SavePlan::default(), metadata: None });
        assert!(cache.get(42).is_some());
        assert_eq!(cache.stats(), (1, 1));
        cache.clear();
        assert!(cache.get(42).is_none());
    }
}
