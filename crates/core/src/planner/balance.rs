//! Optimized plan generation (§4.1): workload-balanced save deduplication
//! and redundant-read elimination.

use crate::plan::{LoadPlan, ReadItem, SavePlan};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How duplicated (replicated) shards are assigned to a saving rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DedupStrategy {
    /// ByteCheckpoint: Worst-Fit — each shard goes to the candidate rank
    /// with the smallest cumulative assigned bytes ("assigning the current
    /// tensor shard to the rank with the smallest cumulative tensor shard
    /// size").
    WorstFit,
    /// DCP/MCP baseline: "designating the first DP group to save all model
    /// states" — always the lowest-ranked candidate, creating stragglers.
    FirstReplica,
}

/// Outcome summary of save-plan deduplication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DedupReport {
    /// Duplicate items dropped.
    pub duplicates_removed: usize,
    /// Final assigned bytes per rank (index = position in `plans`).
    pub bytes_per_rank: Vec<u64>,
}

impl DedupReport {
    /// Max-over-mean load imbalance (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let max = self.bytes_per_rank.iter().copied().max().unwrap_or(0) as f64;
        let nonzero = self.bytes_per_rank.iter().filter(|&&b| b > 0).count().max(1);
        let mean = self.bytes_per_rank.iter().sum::<u64>() as f64 / nonzero as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Deduplicate replicated shards across ranks' save plans, in place.
///
/// Two items are replicas when they name the same (category, fqn, box).
/// Exactly one candidate keeps each shard; the rest drop it. Groups are
/// processed largest-first so Worst-Fit packs well.
pub fn dedup_save_plans(plans: &mut [SavePlan], strategy: DedupStrategy) -> DedupReport {
    // key -> (nbytes, candidate plan indices)
    type Key = (crate::plan::Category, String, Vec<usize>, Vec<usize>);
    let mut groups: BTreeMap<Key, (u64, Vec<usize>)> = BTreeMap::new();
    for (pi, plan) in plans.iter().enumerate() {
        for item in &plan.items {
            let key = (
                item.category,
                item.shard.fqn.clone(),
                item.shard.offsets.clone(),
                item.shard.lengths.clone(),
            );
            let entry = groups.entry(key).or_insert((item.nbytes, Vec::new()));
            entry.1.push(pi);
        }
    }
    let mut ordered: Vec<(Key, (u64, Vec<usize>))> = groups.into_iter().collect();
    // Largest shards first (classic Worst-Fit-Decreasing), name as tiebreak.
    ordered.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then_with(|| a.0.cmp(&b.0)));

    let mut load = vec![0u64; plans.len()];
    let mut owners: BTreeMap<Key, usize> = BTreeMap::new();
    let mut duplicates_removed = 0usize;
    for (key, (nbytes, mut candidates)) in ordered {
        candidates.sort_unstable();
        candidates.dedup();
        let owner = match strategy {
            DedupStrategy::FirstReplica => candidates[0],
            DedupStrategy::WorstFit => {
                *candidates.iter().min_by_key(|&&c| (load[c], c)).expect("non-empty candidate set")
            }
        };
        duplicates_removed += candidates.len() - 1;
        load[owner] += nbytes;
        owners.insert(key, owner);
    }
    for (pi, plan) in plans.iter_mut().enumerate() {
        plan.items.retain(|item| {
            let key = (
                item.category,
                item.shard.fqn.clone(),
                item.shard.offsets.clone(),
                item.shard.lengths.clone(),
            );
            owners.get(&key) == Some(&pi)
        });
    }
    DedupReport { duplicates_removed, bytes_per_rank: load }
}

/// Who reads a deduplicated item and who receives it over the interconnect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssignedLoadPlan {
    /// Executing rank.
    pub rank: usize,
    /// Items this rank reads from storage (for itself and/or for peers).
    pub reads: Vec<ReadItem>,
    /// For each read, the peer ranks that need the same source data,
    /// parallel to `reads` (empty = nobody else).
    pub send_to: Vec<Vec<usize>>,
    /// Items this rank receives from a peer instead of reading:
    /// `(source_rank, item-with-local-dest)`.
    pub recvs: Vec<(usize, ReadItem)>,
}

impl AssignedLoadPlan {
    /// Bytes this rank fetches from storage.
    pub fn read_bytes(&self) -> u64 {
        self.reads.iter().map(|i| i.fetch_range().1).sum()
    }
}

/// Eliminate repetitive tensor reading across ranks (§4.1): items with
/// identical sources are read once — by the Worst-Fit-chosen requester — and
/// forwarded to the rest over the interconnect (all-to-all in the engine).
pub fn eliminate_redundant_reads(plans: &[LoadPlan]) -> Vec<AssignedLoadPlan> {
    type Key = (crate::plan::Category, String, Vec<usize>, Vec<usize>, String);
    // key -> list of (plan index, item clone)
    let mut groups: BTreeMap<Key, Vec<(usize, ReadItem)>> = BTreeMap::new();
    for (pi, plan) in plans.iter().enumerate() {
        for item in &plan.items {
            groups.entry(item.source_key()).or_default().push((pi, item.clone()));
        }
    }
    let mut ordered: Vec<(Key, Vec<(usize, ReadItem)>)> = groups.into_iter().collect();
    ordered.sort_by(|a, b| {
        let ab = a.1[0].1.fetch_range().1;
        let bb = b.1[0].1.fetch_range().1;
        bb.cmp(&ab).then_with(|| a.0.cmp(&b.0))
    });

    let mut out: Vec<AssignedLoadPlan> = plans
        .iter()
        .map(|p| AssignedLoadPlan {
            rank: p.rank,
            reads: Vec::new(),
            send_to: Vec::new(),
            recvs: Vec::new(),
        })
        .collect();
    let mut load = vec![0u64; plans.len()];
    for (_key, members) in ordered {
        let mut candidates: Vec<usize> = members.iter().map(|(pi, _)| *pi).collect();
        candidates.sort_unstable();
        candidates.dedup();
        let reader = *candidates.iter().min_by_key(|&&c| (load[c], c)).expect("non-empty");
        let bytes = members[0].1.fetch_range().1;
        load[reader] += bytes;
        // The reader keeps its own dest version; peers become receivers.
        let reader_item =
            members.iter().find(|(pi, _)| *pi == reader).expect("reader is a requester").1.clone();
        let reader_rank = plans[reader].rank;
        let mut recipients = Vec::new();
        for (pi, item) in &members {
            if *pi == reader {
                // If the reader requested the same source twice (two dest
                // pieces), extra copies land in recvs from itself.
                continue;
            }
            recipients.push(plans[*pi].rank);
            out[*pi].recvs.push((reader_rank, item.clone()));
        }
        // Duplicate dest pieces on the reader itself.
        for (pi, item) in &members {
            if *pi == reader && item.dest_local_elem_start != reader_item.dest_local_elem_start {
                out[*pi].recvs.push((reader_rank, item.clone()));
            }
        }
        recipients.sort_unstable();
        recipients.dedup();
        out[reader].reads.push(reader_item);
        out[reader].send_to.push(recipients);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::local_save_plan;
    use bcp_model::states::{build_train_state, Framework};
    use bcp_model::zoo;
    use bcp_topology::Parallelism;

    fn ddp_plans(dp: usize) -> Vec<SavePlan> {
        let arch = zoo::tiny_gpt();
        let par = Parallelism::data_parallel(dp).unwrap();
        (0..dp)
            .map(|r| {
                local_save_plan(r, &build_train_state(&arch, Framework::Ddp, par, r, false), "cpu")
            })
            .collect()
    }

    #[test]
    fn worst_fit_balances_replicated_saves() {
        let mut plans = ddp_plans(4);
        let per_rank_before = plans[0].total_bytes();
        let report = dedup_save_plans(&mut plans, DedupStrategy::WorstFit);
        // Every shard saved exactly once.
        let total: u64 = plans.iter().map(|p| p.total_bytes()).sum();
        assert_eq!(total, per_rank_before);
        assert!(report.duplicates_removed > 0);
        // Balanced: max/mean below 1.5 (first-replica would be 4.0).
        assert!(report.imbalance() < 1.5, "imbalance {}", report.imbalance());
    }

    #[test]
    fn first_replica_piles_everything_on_rank0() {
        let mut plans = ddp_plans(4);
        let report = dedup_save_plans(&mut plans, DedupStrategy::FirstReplica);
        assert!(plans[0].total_bytes() > 0);
        for p in &plans[1..] {
            assert_eq!(p.total_bytes(), 0, "only rank 0 should save in the baseline");
        }
        assert!(report.imbalance() >= 1.0);
    }

    #[test]
    fn dedup_keeps_unique_shards_everywhere() {
        // Megatron TP=2: grid shards are unique per tp index; nothing from a
        // different box may be dropped.
        let arch = zoo::tiny_gpt();
        let par = Parallelism::new(2, 2, 1).unwrap();
        let fw = Framework::Megatron { distributed_optimizer: true };
        let mut plans: Vec<SavePlan> = (0..4)
            .map(|r| local_save_plan(r, &build_train_state(&arch, fw, par, r, false), "cpu"))
            .collect();
        let key_of = |i: &crate::plan::WriteItem| {
            (i.category, i.shard.fqn.clone(), i.shard.offsets.clone(), i.shard.lengths.clone())
        };
        let before_keys: std::collections::BTreeSet<_> =
            plans.iter().flat_map(|p| p.items.iter().map(key_of)).collect();
        let before: u64 = plans.iter().map(|p| p.total_bytes()).sum();
        let report = dedup_save_plans(&mut plans, DedupStrategy::WorstFit);
        let after: u64 = plans.iter().map(|p| p.total_bytes()).sum();
        // DP replicas (and TP-replicated LayerNorms) were dropped...
        assert!(after < before);
        assert!(report.duplicates_removed > 0);
        // ...but every distinct shard survives exactly once.
        let mut after_keys = std::collections::BTreeSet::new();
        for p in &plans {
            for i in &p.items {
                assert!(after_keys.insert(key_of(i)), "{} saved twice", i.shard.fqn);
            }
        }
        assert_eq!(before_keys, after_keys);
    }

    #[test]
    fn zero_redundancy_after_dedup() {
        let mut plans = ddp_plans(3);
        dedup_save_plans(&mut plans, DedupStrategy::WorstFit);
        let mut seen = std::collections::HashSet::new();
        for p in &plans {
            for i in &p.items {
                let key = (i.category, i.shard.fqn.clone(), i.shard.offsets.clone());
                assert!(seen.insert(key), "shard saved twice: {}", i.shard.fqn);
            }
        }
    }

    #[test]
    fn redundant_reads_are_eliminated_and_forwarded() {
        // Three identical load plans (DP replicas loading the same model).
        let item = ReadItem {
            category: crate::plan::Category::Model,
            fqn: "w".into(),
            dtype: bcp_tensor::DType::F32,
            file: "model_0.bin".into(),
            payload_offset: 0,
            stored_offsets: vec![0],
            stored_lengths: vec![128],
            isect_offsets: vec![0],
            isect_lengths: vec![128],
            dest_offsets: vec![0],
            dest_lengths: vec![128],
            dest_local_elem_start: 0,
        };
        let plans: Vec<LoadPlan> =
            (0..3).map(|r| LoadPlan { rank: r, items: vec![item.clone()] }).collect();
        let assigned = eliminate_redundant_reads(&plans);
        let total_reads: usize = assigned.iter().map(|a| a.reads.len()).sum();
        assert_eq!(total_reads, 1, "one storage read for three requesters");
        let reader = assigned.iter().find(|a| !a.reads.is_empty()).unwrap();
        assert_eq!(reader.send_to[0].len(), 2);
        for a in &assigned {
            if a.rank != reader.rank {
                assert_eq!(a.recvs.len(), 1);
                assert_eq!(a.recvs[0].0, reader.rank);
            }
        }
    }

    #[test]
    fn distinct_sources_read_independently() {
        let mk = |rank: usize, file: &str| LoadPlan {
            rank,
            items: vec![ReadItem {
                category: crate::plan::Category::Model,
                fqn: "w".into(),
                dtype: bcp_tensor::DType::F32,
                file: file.into(),
                payload_offset: 0,
                stored_offsets: vec![0],
                stored_lengths: vec![4],
                isect_offsets: vec![0],
                isect_lengths: vec![4],
                dest_offsets: vec![0],
                dest_lengths: vec![4],
                dest_local_elem_start: 0,
            }],
        };
        let assigned = eliminate_redundant_reads(&[mk(0, "a.bin"), mk(1, "b.bin")]);
        assert_eq!(assigned[0].reads.len(), 1);
        assert_eq!(assigned[1].reads.len(), 1);
        assert!(assigned.iter().all(|a| a.recvs.is_empty()));
    }

    #[test]
    fn read_balancing_spreads_load() {
        // 4 replicas requesting 8 distinct shards: each rank should read ~2.
        let mut plans: Vec<LoadPlan> =
            (0..4).map(|r| LoadPlan { rank: r, items: vec![] }).collect();
        for s in 0..8usize {
            for p in plans.iter_mut() {
                p.items.push(ReadItem {
                    category: crate::plan::Category::Model,
                    fqn: format!("t{s}"),
                    dtype: bcp_tensor::DType::F32,
                    file: "model_0.bin".into(),
                    payload_offset: (s * 1024) as u64,
                    stored_offsets: vec![0],
                    stored_lengths: vec![256],
                    isect_offsets: vec![0],
                    isect_lengths: vec![256],
                    dest_offsets: vec![0],
                    dest_lengths: vec![256],
                    dest_local_elem_start: 0,
                });
            }
        }
        let assigned = eliminate_redundant_reads(&plans);
        for a in &assigned {
            assert_eq!(a.reads.len(), 2, "rank {} reads {}", a.rank, a.reads.len());
        }
    }
}
