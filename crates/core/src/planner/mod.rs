//! The Planner layer: framework adapters over the shared planning core.
//!
//! "We implement a tailored planner for each training framework to extract
//! information from these specifications and generate plans" (§3.1). The
//! heavy lifting — ShardMeta generation, decomposition, dedup/balancing,
//! byte-offset assignment — is framework-agnostic and lives in
//! [`crate::plan`], [`crate::decompose`] and [`balance`]; each framework
//! planner contributes validation of its sharding conventions and naming.

pub mod balance;
pub mod cache;

use crate::plan::{local_save_plan, SavePlan};
use crate::{BcpError, Result};
use bcp_model::{Framework, TrainState};
use bcp_topology::{Parallelism, ShardSpec};

/// A framework adapter: validates that a state dict follows the framework's
/// sharding conventions before planning, and names itself for metadata.
pub trait FrameworkPlanner: Send + Sync {
    /// Framework name recorded in the global metadata file.
    fn name(&self) -> &'static str;

    /// Validate the state dict against the framework's conventions.
    fn validate(&self, state: &TrainState, par: Parallelism, rank: usize) -> Result<()>;

    /// Build the rank's local save plan (shared implementation by default).
    fn local_save_plan(&self, rank: usize, state: &TrainState) -> Result<SavePlan> {
        Ok(local_save_plan(rank, state, &format!("cuda:{rank}")))
    }
}

/// Megatron-LM planner: 3D parallelism, grid-sharded weights, optionally
/// FlatOfBox distributed-optimizer states.
pub struct MegatronPlanner;

/// FSDP planner: pure DP, flat-parameter (irregular) sharding.
pub struct FsdpPlanner;

/// DDP planner: fully replicated states.
pub struct DdpPlanner;

/// veScale planner: DTensor grid placements on a (dp, tp) mesh.
pub struct VeScalePlanner;

impl FrameworkPlanner for MegatronPlanner {
    fn name(&self) -> &'static str {
        "megatron"
    }

    fn validate(&self, state: &TrainState, par: Parallelism, rank: usize) -> Result<()> {
        par.coords(rank).map_err(|_| BcpError::Plan(format!("rank {rank} outside {par}")))?;
        for e in state.model.entries.values() {
            if matches!(e.spec, ShardSpec::Flat { .. }) {
                return Err(BcpError::Plan(format!(
                    "{}: Megatron model weights are grid-sharded, found Flat",
                    e.fqn
                )));
            }
        }
        Ok(())
    }
}

impl FrameworkPlanner for FsdpPlanner {
    fn name(&self) -> &'static str {
        "fsdp"
    }

    fn validate(&self, state: &TrainState, par: Parallelism, _rank: usize) -> Result<()> {
        if par.tp != 1 || par.pp != 1 {
            return Err(BcpError::Plan(format!("FSDP requires pure DP, got {par}")));
        }
        // Flat shards (native FSDP) and grid chunks (post-all-gather DCP
        // regularization) are both legitimate; Megatron's flattened-TP-box
        // sharding is not something FSDP can produce.
        for e in state.model.entries.values().chain(state.optimizer.entries.values()) {
            if matches!(e.spec, ShardSpec::FlatOfBox { .. }) {
                return Err(BcpError::Plan(format!(
                    "{}: FSDP cannot hold Megatron distributed-optimizer shards",
                    e.fqn
                )));
            }
        }
        Ok(())
    }
}

impl FrameworkPlanner for DdpPlanner {
    fn name(&self) -> &'static str {
        "ddp"
    }

    fn validate(&self, state: &TrainState, _par: Parallelism, _rank: usize) -> Result<()> {
        for e in state.model.entries.values().chain(state.optimizer.entries.values()) {
            if e.spec != ShardSpec::Replicated {
                return Err(BcpError::Plan(format!("{}: DDP state must be replicated", e.fqn)));
            }
        }
        Ok(())
    }
}

impl FrameworkPlanner for VeScalePlanner {
    fn name(&self) -> &'static str {
        "vescale"
    }

    fn validate(&self, _state: &TrainState, par: Parallelism, _rank: usize) -> Result<()> {
        if par.pp != 1 {
            return Err(BcpError::Plan(format!(
                "veScale substrate models a (dp, tp) mesh; got {par}"
            )));
        }
        Ok(())
    }
}

/// Resolve the planner for a framework (the dispatch the API layer does when
/// users pass a framework name).
pub fn planner_for(framework: Framework) -> Box<dyn FrameworkPlanner> {
    match framework {
        Framework::Megatron { .. } => Box::new(MegatronPlanner),
        Framework::Fsdp { .. } => Box::new(FsdpPlanner),
        Framework::Ddp => Box::new(DdpPlanner),
        Framework::VeScale => Box::new(VeScalePlanner),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_model::states::build_train_state;
    use bcp_model::zoo;

    #[test]
    fn planners_accept_their_own_frameworks_states() {
        let arch = zoo::tiny_gpt();
        let cases: Vec<(Framework, Parallelism)> = vec![
            (
                Framework::Megatron { distributed_optimizer: true },
                Parallelism::new(2, 2, 2).unwrap(),
            ),
            (Framework::Fsdp { zero3: true }, Parallelism::data_parallel(4).unwrap()),
            (Framework::Ddp, Parallelism::data_parallel(2).unwrap()),
            (Framework::VeScale, Parallelism::new(2, 2, 1).unwrap()),
        ];
        for (fw, par) in cases {
            let planner = planner_for(fw);
            for rank in 0..par.world_size() {
                let state = build_train_state(&arch, fw, par, rank, false);
                planner.validate(&state, par, rank).unwrap_or_else(|e| {
                    panic!("{} rejected its own state at rank {rank}: {e}", planner.name())
                });
                let plan = planner.local_save_plan(rank, &state).unwrap();
                assert!(!plan.items.is_empty());
            }
        }
    }

    #[test]
    fn planners_reject_foreign_states() {
        let arch = zoo::tiny_gpt();
        // FSDP state under the DDP planner: flat shards are not replicated.
        let par = Parallelism::data_parallel(2).unwrap();
        let fsdp_state = build_train_state(&arch, Framework::Fsdp { zero3: true }, par, 0, false);
        assert!(DdpPlanner.validate(&fsdp_state, par, 0).is_err());
        // FSDP planner rejects 3D parallelism.
        let par3d = Parallelism::new(2, 1, 2).unwrap();
        let megatron_state = build_train_state(
            &arch,
            Framework::Megatron { distributed_optimizer: false },
            par3d,
            0,
            false,
        );
        assert!(FsdpPlanner.validate(&megatron_state, par3d, 0).is_err());
        // veScale planner rejects PP.
        assert!(VeScalePlanner.validate(&megatron_state, par3d, 0).is_err());
    }
}
