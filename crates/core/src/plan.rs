//! Save and load plans: what each rank writes where, and reads from where.
//!
//! Plans are the currency between the Planner layer and the Execution
//! Engine (Fig. 4). They are deterministic — byte offsets are computed at
//! planning time from the frame format, so the coordinator can build the
//! global metadata file *before* any I/O happens, and plans can be cached
//! and reused across checkpoints (§4.1).

use crate::decompose::shard_metas;
use crate::format;
use crate::metadata::{BasicMeta, ByteMeta, GlobalMetadata, ShardMeta, TensorShardEntry};
use crate::{BcpError, Result};
use bcp_model::{StateDict, TrainState};
use bcp_tensor::DType;
use serde::{Deserialize, Serialize};

/// Which state dictionary an item belongs to; determines the storage file
/// ("each rank generates ... a model state file, an optimizer state file").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Model weights.
    Model,
    /// Optimizer state.
    Optimizer,
}

impl Category {
    /// Storage file for this category written by `rank`.
    pub fn file_for(self, rank: usize) -> String {
        match self {
            Category::Model => format!("model_{rank}.bin"),
            Category::Optimizer => format!("optim_{rank}.bin"),
        }
    }

    /// Short name for monitoring.
    pub fn name(self) -> &'static str {
        match self {
            Category::Model => "model",
            Category::Optimizer => "optimizer",
        }
    }
}

/// One tensor-shard write: a contiguous slice of the rank's local shard
/// destined for one frame of a storage file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WriteItem {
    /// Model vs optimizer.
    pub category: Category,
    /// Where the payload sits in the global tensor.
    pub shard: ShardMeta,
    /// Runtime recovery metadata.
    pub basic: BasicMeta,
    /// Element offset of this piece within the rank's local shard storage
    /// (decomposed irregular shards yield several consecutive pieces).
    pub local_elem_start: usize,
    /// Payload size in bytes.
    pub nbytes: u64,
}

/// A rank's save plan: ordered write items per category. Order is the
/// serialization order, which fixes every byte offset.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SavePlan {
    /// The executing rank.
    pub rank: usize,
    /// Items in serialization order.
    pub items: Vec<WriteItem>,
}

impl SavePlan {
    /// Total payload bytes this rank will upload.
    pub fn total_bytes(&self) -> u64 {
        self.items.iter().map(|i| i.nbytes).sum()
    }

    /// Compute the `ByteMeta` of every item, walking files in plan order.
    pub fn byte_metas(&self) -> Vec<ByteMeta> {
        let mut cursors: std::collections::BTreeMap<String, u64> = Default::default();
        let mut out = Vec::with_capacity(self.items.len());
        for item in &self.items {
            let file = item.category.file_for(self.rank);
            let cursor = cursors.entry(file.clone()).or_insert(0);
            let header = format::header_len(&item.shard) as u64;
            out.push(ByteMeta { file, offset: *cursor + header, length: item.nbytes });
            *cursor += format::frame_len(&item.shard, item.nbytes as usize) as u64;
        }
        out
    }
}

/// One tensor-shard read: fetch a byte range of a stored frame, carve the
/// intersection box out of it, and write it into the local target shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadItem {
    /// Model vs optimizer.
    pub category: Category,
    /// Tensor identity.
    pub fqn: String,
    /// Element dtype (from the saved `BasicMeta`).
    pub dtype: DType,
    /// Storage file holding the saved shard.
    pub file: String,
    /// Byte offset of the saved shard's payload in the file.
    pub payload_offset: u64,
    /// The saved shard's box (global coordinates).
    pub stored_offsets: Vec<usize>,
    /// Lengths of the saved shard's box.
    pub stored_lengths: Vec<usize>,
    /// Intersection box between saved shard and target piece (global).
    pub isect_offsets: Vec<usize>,
    /// Intersection lengths.
    pub isect_lengths: Vec<usize>,
    /// The target piece's box (global coordinates).
    pub dest_offsets: Vec<usize>,
    /// The target piece's lengths.
    pub dest_lengths: Vec<usize>,
    /// Element offset of the target piece within the local shard storage.
    pub dest_local_elem_start: usize,
}

impl ReadItem {
    /// Number of elements in the intersection.
    pub fn isect_numel(&self) -> usize {
        self.isect_lengths.iter().product()
    }

    /// Bytes of actual tensor data this item moves.
    pub fn isect_bytes(&self) -> u64 {
        (self.isect_numel() * self.dtype.size()) as u64
    }

    /// The minimal contiguous byte range of the file covering the
    /// intersection: `(absolute_offset, length)`. This is what the engine
    /// fetches (possibly split across reader threads).
    pub fn fetch_range(&self) -> (u64, u64) {
        let es = self.dtype.size() as u64;
        // Flat element range of the intersection within the stored box.
        let rel_off: Vec<usize> =
            self.isect_offsets.iter().zip(&self.stored_offsets).map(|(i, s)| i - s).collect();
        let first = bcp_tensor::layout::ravel_index(&rel_off, &self.stored_lengths) as u64;
        let last_coord: Vec<usize> =
            rel_off.iter().zip(&self.isect_lengths).map(|(o, l)| o + l - 1).collect();
        let last = bcp_tensor::layout::ravel_index(&last_coord, &self.stored_lengths) as u64;
        (self.payload_offset + first * es, (last - first + 1) * es)
    }

    /// Deduplication key: two items with the same key fetch identical data
    /// (only their destination differs).
    pub fn source_key(&self) -> (Category, String, Vec<usize>, Vec<usize>, String) {
        (
            self.category,
            self.fqn.clone(),
            self.isect_offsets.clone(),
            self.isect_lengths.clone(),
            self.file.clone(),
        )
    }
}

/// A rank's load plan.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LoadPlan {
    /// The executing rank.
    pub rank: usize,
    /// Items (arbitrary order; the engine pipelines them).
    pub items: Vec<ReadItem>,
}

impl LoadPlan {
    /// Total fetched bytes (before redundancy elimination).
    pub fn total_fetch_bytes(&self) -> u64 {
        self.items.iter().map(|i| i.fetch_range().1).sum()
    }
}

/// Build a rank's local save plan from its state dicts (Planner step:
/// "creates ShardMeta for each tensor shard based on the worker's rank and
/// framework-specific sharding specification").
pub fn local_save_plan(rank: usize, state: &TrainState, device: &str) -> SavePlan {
    let mut items = Vec::new();
    push_dict_items(&mut items, &state.model, Category::Model, device);
    push_dict_items(&mut items, &state.optimizer, Category::Optimizer, device);
    SavePlan { rank, items }
}

fn push_dict_items(items: &mut Vec<WriteItem>, dict: &StateDict, category: Category, device: &str) {
    for entry in dict.entries.values() {
        let metas = shard_metas(&entry.fqn, &entry.global_shape, &entry.spec);
        let mut local_cursor = 0usize;
        for shard in metas {
            let n = shard.numel();
            items.push(WriteItem {
                category,
                shard,
                basic: BasicMeta::contiguous(entry.dtype, entry.global_shape.clone(), device),
                local_elem_start: local_cursor,
                nbytes: (n * entry.dtype.size()) as u64,
            });
            local_cursor += n;
        }
    }
}

/// Build a rank's local load plan: for each target shard, query the
/// TensorShardToBasicByteMap and emit one [`ReadItem`] per overlapping saved
/// segment (Fig. 8 step 2). Fails if any target element is uncovered.
pub fn local_load_plan(rank: usize, state: &TrainState, meta: &GlobalMetadata) -> Result<LoadPlan> {
    let mut items = Vec::new();
    plan_dict_reads(&mut items, &state.model, Category::Model, meta)?;
    plan_dict_reads(&mut items, &state.optimizer, Category::Optimizer, meta)?;
    Ok(LoadPlan { rank, items })
}

fn plan_dict_reads(
    items: &mut Vec<ReadItem>,
    dict: &StateDict,
    category: Category,
    meta: &GlobalMetadata,
) -> Result<()> {
    for entry in dict.entries.values() {
        let pieces = shard_metas(&entry.fqn, &entry.global_shape, &entry.spec);
        let mut local_cursor = 0usize;
        for piece in pieces {
            let mut hits = meta.overlapping_shards(&entry.fqn, &piece.offsets, &piece.lengths);
            // A checkpoint saved without deduplication (baselines, or DP
            // replicas saved verbatim) contains byte-identical shards under
            // several files; reading any one replica suffices.
            let mut seen_boxes = std::collections::HashSet::new();
            hits.retain(|(_, (io, il))| seen_boxes.insert((io.clone(), il.clone())));
            let covered: usize = hits.iter().map(|(_, (_, l))| l.iter().product::<usize>()).sum();
            if covered != piece.numel() {
                return Err(BcpError::Missing(format!(
                    "{}: target box {:?}/{:?} covered {covered}/{} elements",
                    entry.fqn,
                    piece.offsets,
                    piece.lengths,
                    piece.numel()
                )));
            }
            for (saved, (io, il)) in hits {
                if saved.basic.dtype != entry.dtype {
                    return Err(BcpError::Plan(format!(
                        "{}: dtype mismatch: saved {}, requested {}",
                        entry.fqn, saved.basic.dtype, entry.dtype
                    )));
                }
                items.push(ReadItem {
                    category,
                    fqn: entry.fqn.clone(),
                    dtype: entry.dtype,
                    file: saved.byte.file.clone(),
                    payload_offset: saved.byte.offset,
                    stored_offsets: saved.shard.offsets.clone(),
                    stored_lengths: saved.shard.lengths.clone(),
                    isect_offsets: io,
                    isect_lengths: il,
                    dest_offsets: piece.offsets.clone(),
                    dest_lengths: piece.lengths.clone(),
                    dest_local_elem_start: local_cursor,
                });
            }
            local_cursor += piece.numel();
        }
    }
    Ok(())
}

/// Build the tensor section of the global metadata from deduplicated plans.
pub fn build_tensor_map(
    plans: &[SavePlan],
) -> std::collections::BTreeMap<String, Vec<TensorShardEntry>> {
    let mut map: std::collections::BTreeMap<String, Vec<TensorShardEntry>> = Default::default();
    for plan in plans {
        for (item, byte) in plan.items.iter().zip(plan.byte_metas()) {
            map.entry(item.shard.fqn.clone()).or_default().push(TensorShardEntry {
                shard: item.shard.clone(),
                basic: item.basic.clone(),
                byte,
            });
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_model::states::{build_train_state, Framework};
    use bcp_model::zoo;
    use bcp_topology::Parallelism;

    #[test]
    fn save_plan_covers_all_local_bytes() {
        let arch = zoo::tiny_gpt();
        let par = Parallelism::new(2, 1, 2).unwrap();
        let fw = Framework::Megatron { distributed_optimizer: false };
        for rank in 0..par.world_size() {
            let state = build_train_state(&arch, fw, par, rank, false);
            let plan = local_save_plan(rank, &state, "cuda:0");
            let plan_bytes = plan.total_bytes();
            let state_bytes = state.model.local_bytes() + state.optimizer.local_bytes();
            assert_eq!(plan_bytes, state_bytes, "rank {rank}");
        }
    }

    #[test]
    fn irregular_entries_become_multiple_consecutive_items() {
        let arch = zoo::tiny_gpt();
        let par = Parallelism::data_parallel(3).unwrap();
        let state = build_train_state(&arch, Framework::Fsdp { zero3: true }, par, 1, false);
        let plan = local_save_plan(1, &state, "cuda:1");
        // Some fqn must appear with multiple items whose local offsets chain.
        let mut by_fqn: std::collections::BTreeMap<&str, Vec<&WriteItem>> = Default::default();
        for item in &plan.items {
            by_fqn.entry(item.shard.fqn.as_str()).or_default().push(item);
        }
        let multi = by_fqn.values().find(|v| v.len() > 1).expect("an irregular shard exists");
        let mut cursor = 0;
        for item in multi {
            assert_eq!(item.local_elem_start, cursor);
            cursor += item.shard.numel();
        }
    }

    #[test]
    fn byte_metas_walk_frame_layout() {
        let arch = zoo::tiny_gpt();
        let par = Parallelism::data_parallel(1).unwrap();
        let state = build_train_state(&arch, Framework::Ddp, par, 0, false);
        let plan = local_save_plan(0, &state, "cpu");
        let metas = plan.byte_metas();
        // Offsets are strictly increasing within each file and payloads
        // never overlap.
        let mut last_end: std::collections::BTreeMap<&str, u64> = Default::default();
        for (item, bm) in plan.items.iter().zip(&metas) {
            let end = last_end.entry(bm.file.as_str()).or_insert(0);
            assert!(bm.offset >= *end, "overlapping frames in {}", bm.file);
            *end = bm.offset + bm.length + 4; // + trailing CRC
            assert_eq!(bm.length, item.nbytes);
        }
    }

    #[test]
    fn load_plan_round_trip_same_parallelism() {
        let arch = zoo::tiny_gpt();
        let par = Parallelism::new(2, 1, 1).unwrap();
        let fw = Framework::Megatron { distributed_optimizer: false };
        // Save plans from both ranks -> metadata.
        let plans: Vec<SavePlan> = (0..2)
            .map(|r| local_save_plan(r, &build_train_state(&arch, fw, par, r, false), "cpu"))
            .collect();
        let mut meta = GlobalMetadata::new("megatron", 0, &par.describe(), 2);
        meta.tensor_map = build_tensor_map(&plans);
        meta.validate().unwrap();
        // Load plan for the same sharding: every item is an exact box match.
        let state = build_train_state(&arch, fw, par, 0, false);
        let plan = local_load_plan(0, &state, &meta).unwrap();
        for item in &plan.items {
            assert_eq!(item.isect_offsets, item.dest_offsets);
            assert_eq!(item.isect_lengths, item.dest_lengths);
        }
        // But not every item reads its own rank's file: replicated tensors
        // were saved once by whichever rank (no dedup applied here, so both
        // ranks saved them — duplicates exist in the map).
    }

    #[test]
    fn load_plan_fails_on_uncovered_target() {
        let arch = zoo::tiny_gpt();
        let par = Parallelism::data_parallel(1).unwrap();
        let meta = GlobalMetadata::new("ddp", 0, &par.describe(), 1); // empty map
        let state = build_train_state(&arch, Framework::Ddp, par, 0, false);
        let err = local_load_plan(0, &state, &meta).unwrap_err();
        assert!(matches!(err, BcpError::Missing(_)));
    }

    #[test]
    fn fetch_range_covers_intersection_tightly() {
        // Stored box (4, 8) at payload offset 100; intersection = rows 1..3,
        // cols 2..6 (f32). First elem = (1,2) -> flat 10; last = (2,5) ->
        // flat 21. Range = offset 100 + 40, len (21-10+1)*4 = 48.
        let item = ReadItem {
            category: Category::Model,
            fqn: "w".into(),
            dtype: DType::F32,
            file: "model_0.bin".into(),
            payload_offset: 100,
            stored_offsets: vec![0, 0],
            stored_lengths: vec![4, 8],
            isect_offsets: vec![1, 2],
            isect_lengths: vec![2, 4],
            dest_offsets: vec![1, 2],
            dest_lengths: vec![2, 4],
            dest_local_elem_start: 0,
        };
        assert_eq!(item.fetch_range(), (100 + 40, 48));
        assert_eq!(item.isect_bytes(), 32);
    }
}
