//! Per-step telemetry persistence (§5.3).
//!
//! After a checkpoint commits, every rank snapshots its private metrics hub
//! into a [`RankTelemetry`] line, the coordinator gathers all lines, and the
//! artifact is written *next to the checkpoint* through the same storage
//! backend as the data itself (`_telemetry.jsonl` for saves,
//! `_telemetry_load.jsonl` for loads). `bcpctl report` reconstructs heat
//! maps, breakdowns, critical paths, and alerts entirely offline from these
//! artifacts — no live process required.
//!
//! Persistence is strictly best-effort and happens only *after* the
//! `COMPLETE` marker exists: a torn save never leaves a telemetry file
//! behind (so GC of torn steps needs no special casing), and a telemetry
//! write failure degrades observability without failing the checkpoint.

use crate::integrity::FailureLog;
use crate::{BcpError, Result};
use bcp_collectives::Communicator;
use bcp_monitor::{FailureExcerpt, MetricsHub, RankTelemetry, StepTelemetry};
use bcp_storage::DynBackend;
use bytes::Bytes;

/// Snapshot one rank's contribution to the step artifact from its private
/// hub and failure log. Only records and spans stamped with `step` *and*
/// belonging to `op` (spans: root ancestor named `op`; flat records: name
/// under the op's prefix) are included, so back-to-back steps — and a save
/// then a load of the same step — through one `Checkpointer` stay separated.
pub fn collect_rank_telemetry(
    hub: &MetricsHub,
    log: &FailureLog,
    rank: usize,
    step: u64,
    op: &str,
) -> RankTelemetry {
    hub.drain();
    let barrier = format!("sync/{op}_barrier");
    let op_prefix = format!("{op}/");
    let records = hub
        .flat_records()
        .into_iter()
        .filter(|r| r.step == step && r.rank == rank)
        .filter(|r| r.name.starts_with(&op_prefix) || r.name == barrier)
        .collect();
    let stepped: Vec<_> =
        hub.spans().into_iter().filter(|s| s.step == step && s.rank == rank).collect();
    let names: std::collections::HashMap<u64, (Option<u64>, String)> =
        stepped.iter().map(|s| (s.id, (s.parent, s.name.clone()))).collect();
    let root_name = |mut id: u64| -> String {
        loop {
            match names.get(&id) {
                Some((Some(parent), _)) if names.contains_key(parent) => id = *parent,
                Some((_, name)) => return name.clone(),
                None => return String::new(),
            }
        }
    };
    // Roots are named exactly `op` in the workflow; orphaned phase spans
    // (direct engine use, no workflow root) still qualify by prefix.
    let spans = stepped
        .iter()
        .filter(|s| {
            let root = root_name(s.id);
            root == op || root.starts_with(&op_prefix) || root == barrier
        })
        .cloned()
        .collect();
    let failures = log
        .records()
        .into_iter()
        .filter(|f| f.rank == rank)
        .map(|f| FailureExcerpt {
            rank: f.rank,
            stage: f.stage,
            path: f.path,
            attempt: f.attempt,
            error: f.error,
            retried: f.retried,
        })
        .collect();
    RankTelemetry {
        rank,
        step,
        op: op.to_string(),
        records,
        spans,
        failures,
        dropped_records: hub.dropped_records(),
    }
}

/// Gather every rank's [`RankTelemetry`] at the coordinator and write the
/// JSONL artifact `{prefix}/{file}` through `backend`. Collective: every
/// member of `comm` must call it (telemetry must therefore be enabled
/// uniformly across ranks).
pub fn persist_step_telemetry(
    comm: &Communicator,
    backend: &DynBackend,
    prefix: &str,
    mine: RankTelemetry,
    file: &str,
) -> Result<()> {
    let coordinator = comm.members()[0];
    if let Some(lines) = comm.gather(coordinator, mine)? {
        let doc = StepTelemetry { ranks: lines };
        backend
            .write(&format!("{prefix}/{file}"), Bytes::from(doc.to_jsonl()))
            .map_err(BcpError::Storage)?;
    }
    Ok(())
}

/// Read a persisted step artifact back, if present. Returns `Ok(None)` when
/// the step has no artifact (telemetry disabled, or saved by an older
/// version) and `Err` only on storage/parse failures.
pub fn read_step_telemetry(
    backend: &DynBackend,
    prefix: &str,
    file: &str,
) -> Result<Option<StepTelemetry>> {
    let path = format!("{prefix}/{file}");
    if !backend.exists(&path).map_err(BcpError::Storage)? {
        return Ok(None);
    }
    let raw = backend.read(&path).map_err(BcpError::Storage)?;
    let text = String::from_utf8(raw.to_vec())
        .map_err(|_| BcpError::Corrupt(format!("{path} is not UTF-8")))?;
    StepTelemetry::from_jsonl(&text)
        .map(Some)
        .map_err(|e| BcpError::Corrupt(format!("{path}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrity::FailureRecord;
    use bcp_collectives::{Backend, CommWorld};
    use bcp_storage::MemoryBackend;
    use std::sync::Arc;

    #[test]
    fn collect_filters_by_step_and_maps_failures() {
        let hub = MetricsHub::new();
        let sink = hub.sink();
        drop(sink.span("save/dump", 0, 7).bytes(64));
        drop(sink.span("save/dump", 0, 8)); // different step: excluded
        let log = FailureLog::new();
        log.log(FailureRecord {
            rank: 0,
            stage: "save/upload".into(),
            path: Some("ckpt/x.bin".into()),
            attempt: 1,
            error: "timeout".into(),
            retried: true,
        });
        log.log(FailureRecord {
            rank: 3,
            stage: "save/upload".into(),
            path: None,
            attempt: 1,
            error: "other rank".into(),
            retried: false,
        });
        let t = collect_rank_telemetry(&hub, &log, 0, 7, "save");
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].step, 7);
        assert_eq!(t.failures.len(), 1);
        assert_eq!(t.failures[0].path.as_deref(), Some("ckpt/x.bin"));
        assert_eq!(t.op, "save");
    }

    #[test]
    fn persist_and_read_roundtrip_across_ranks() {
        let world = CommWorld::new(2, Backend::Flat);
        let backend: DynBackend = Arc::new(MemoryBackend::new());
        let handles: Vec<_> = (0..2)
            .map(|rank| {
                let comm = world.communicator(rank).unwrap();
                let backend = backend.clone();
                std::thread::spawn(move || {
                    let hub = MetricsHub::new();
                    drop(hub.sink().span("save/dump", rank, 5).bytes(128));
                    let mine = collect_rank_telemetry(&hub, &FailureLog::new(), rank, 5, "save");
                    persist_step_telemetry(&comm, &backend, "job/step_5", mine, "_telemetry.jsonl")
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap().unwrap();
        }
        let doc = read_step_telemetry(&backend, "job/step_5", "_telemetry.jsonl")
            .unwrap()
            .expect("artifact written");
        assert_eq!(doc.ranks.len(), 2);
        assert_eq!(doc.step(), Some(5));
        assert!(read_step_telemetry(&backend, "job/step_9", "_telemetry.jsonl").unwrap().is_none());
    }
}
