//! Offline checkpoint verification ("scrub"): the full-sweep integrity
//! check behind `bcpctl scrub` and the verified-fallback load path.
//!
//! A scrub walks a checkpoint prefix and proves the commit protocol's
//! promise end to end: the global metadata parses and validates, every
//! [`crate::ByteMeta`] points at a real file, every storage file decodes
//! into CRC-verified frames, every referenced payload region lands exactly
//! on a frame payload, and every file under the prefix is accounted for.
//! Orphans (files nothing references) are reported but do not dirty a
//! step — extra observability artifacts must not fail CI.

use crate::format::{decode_frames, header_len, Frame};
use crate::integrity::is_committed;
use crate::manager::CheckpointManager;
use crate::metadata::{GlobalMetadata, TensorShardEntry, COMPLETE_MARKER, METADATA_FILE};
use crate::Result;
use bcp_monitor::{TELEMETRY_LOAD_FILE, TELEMETRY_SAVE_FILE};
use bcp_storage::DynBackend;
use std::collections::{BTreeMap, BTreeSet};

/// Classification of one scrub finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueKind {
    /// A referenced file does not exist.
    MissingFile,
    /// The global metadata is unreadable, unparsable, or fails validation.
    BadMetadata,
    /// A storage file fails frame decoding or CRC verification.
    BadFrame,
    /// A `ByteMeta` range does not land on a decoded frame payload.
    RangeMismatch,
    /// A file under the prefix that nothing references (benign).
    Orphan,
}

impl std::fmt::Display for IssueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            IssueKind::MissingFile => "missing-file",
            IssueKind::BadMetadata => "bad-metadata",
            IssueKind::BadFrame => "bad-frame",
            IssueKind::RangeMismatch => "range-mismatch",
            IssueKind::Orphan => "orphan",
        };
        f.write_str(s)
    }
}

/// One scrub finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubIssue {
    /// Full path of the offending object.
    pub path: String,
    /// What is wrong.
    pub kind: IssueKind,
    /// Human-readable detail.
    pub detail: String,
}

/// Result of scrubbing one step.
#[derive(Debug, Clone)]
pub struct ScrubReport {
    /// The step scrubbed.
    pub step: u64,
    /// Its full prefix.
    pub prefix: String,
    /// Whether the `COMPLETE` marker was present.
    pub committed: bool,
    /// Everything found wrong (orphans included).
    pub issues: Vec<ScrubIssue>,
    /// Number of files whose existence/decoding was checked.
    pub files_checked: usize,
    /// Number of frames whose CRC verified.
    pub frames_verified: usize,
}

impl ScrubReport {
    /// Whether the step verifies: no issues besides benign orphans.
    pub fn is_clean(&self) -> bool {
        self.issues.iter().all(|i| i.kind == IssueKind::Orphan)
    }

    /// The non-orphan issues (what fails CI / triggers fallback).
    pub fn defects(&self) -> Vec<&ScrubIssue> {
        self.issues.iter().filter(|i| i.kind != IssueKind::Orphan).collect()
    }

    /// One-line summary for logs and CLI output.
    pub fn summary(&self) -> String {
        let defects = self.defects().len();
        let orphans = self.issues.len() - defects;
        format!(
            "step {}: {} files, {} frames verified, {} defect(s), {} orphan(s){}",
            self.step,
            self.files_checked,
            self.frames_verified,
            defects,
            orphans,
            if self.committed { "" } else { " [uncommitted]" }
        )
    }
}

/// Scrub one checkpoint prefix. Collects issues instead of failing fast;
/// only infrastructure errors (the backend itself failing) return `Err`.
pub fn scrub_step(backend: &DynBackend, prefix: &str, step: u64) -> Result<ScrubReport> {
    let mut report = ScrubReport {
        step,
        prefix: prefix.to_string(),
        committed: is_committed(backend, prefix)?,
        issues: Vec::new(),
        files_checked: 0,
        frames_verified: 0,
    };
    let present: BTreeSet<String> = backend.list(&format!("{prefix}/"))?.into_iter().collect();
    let meta_path = format!("{prefix}/{METADATA_FILE}");

    // 1. Metadata must exist, parse, and validate.
    let meta = if present.contains(&meta_path) {
        report.files_checked += 1;
        match backend.read(&meta_path) {
            Ok(bytes) => match GlobalMetadata::from_bytes(&bytes) {
                Ok(meta) => {
                    if let Err(e) = meta.validate() {
                        report.issues.push(ScrubIssue {
                            path: meta_path.clone(),
                            kind: IssueKind::BadMetadata,
                            detail: e,
                        });
                    }
                    if meta.step != step {
                        report.issues.push(ScrubIssue {
                            path: meta_path.clone(),
                            kind: IssueKind::BadMetadata,
                            detail: format!(
                                "metadata step {} does not match prefix step {step}",
                                meta.step
                            ),
                        });
                    }
                    Some(meta)
                }
                Err(e) => {
                    report.issues.push(ScrubIssue {
                        path: meta_path.clone(),
                        kind: IssueKind::BadMetadata,
                        detail: e,
                    });
                    None
                }
            },
            Err(e) => {
                report.issues.push(ScrubIssue {
                    path: meta_path.clone(),
                    kind: IssueKind::BadMetadata,
                    detail: format!("unreadable: {e}"),
                });
                None
            }
        }
    } else {
        report.issues.push(ScrubIssue {
            path: meta_path.clone(),
            kind: IssueKind::MissingFile,
            detail: "global metadata file is missing".into(),
        });
        None
    };

    let mut known: BTreeSet<String> = BTreeSet::new();
    known.insert(meta_path);
    known.insert(format!("{prefix}/{COMPLETE_MARKER}"));
    known.insert(format!("{prefix}/{TELEMETRY_SAVE_FILE}"));
    known.insert(format!("{prefix}/{TELEMETRY_LOAD_FILE}"));

    if let Some(meta) = &meta {
        // 2. Group tensor references by storage file.
        let mut by_file: BTreeMap<String, Vec<(&str, &TensorShardEntry)>> = BTreeMap::new();
        for (fqn, entries) in &meta.tensor_map {
            for e in entries {
                by_file.entry(e.byte.file.clone()).or_default().push((fqn.as_str(), e));
            }
        }

        // 3. Every referenced storage file must exist, decode into
        // CRC-verified frames, and cover every ByteMeta range with a frame
        // payload at exactly the recorded offset/length.
        for (file, refs) in &by_file {
            let path = format!("{prefix}/{file}");
            known.insert(path.clone());
            if !present.contains(&path) {
                report.issues.push(ScrubIssue {
                    path,
                    kind: IssueKind::MissingFile,
                    detail: format!("{} shard(s) reference this missing file", refs.len()),
                });
                continue;
            }
            report.files_checked += 1;
            let data = backend.read(&path)?;
            let frames = match decode_frames(&data) {
                Ok(f) => f,
                Err(e) => {
                    report.issues.push(ScrubIssue {
                        path,
                        kind: IssueKind::BadFrame,
                        detail: e.to_string(),
                    });
                    continue;
                }
            };
            report.frames_verified += frames.len();
            // Recompute each frame's payload location by walking the file.
            let mut payloads: BTreeMap<(u64, u64), &Frame> = BTreeMap::new();
            let mut pos = 0u64;
            for f in &frames {
                let off = pos + header_len(&f.shard) as u64;
                payloads.insert((off, f.payload.len() as u64), f);
                pos = off + f.payload.len() as u64 + 4;
            }
            for &(fqn, entry) in refs {
                let (offset, length) = (entry.byte.offset, entry.byte.length);
                match payloads.get(&(offset, length)) {
                    None => report.issues.push(ScrubIssue {
                        path: path.clone(),
                        kind: IssueKind::RangeMismatch,
                        detail: format!(
                            "{fqn}: recorded payload [{offset}, {}) does not match any \
                             decoded frame payload",
                            offset + length
                        ),
                    }),
                    // The frame header is not covered by the payload CRC, so
                    // cross-check it against the metadata: a flipped fqn
                    // byte or forged shard coordinates cannot hide.
                    Some(frame)
                        if frame.shard.fqn != fqn
                            || frame.shard != entry.shard
                            || frame.dtype != entry.basic.dtype =>
                    {
                        report.issues.push(ScrubIssue {
                            path: path.clone(),
                            kind: IssueKind::BadFrame,
                            detail: format!(
                                "{fqn}: frame header at payload offset {offset} disagrees \
                                 with checkpoint metadata"
                            ),
                        });
                    }
                    Some(_) => {}
                }
            }
            if frames.len() != refs.len() {
                report.issues.push(ScrubIssue {
                    path: path.clone(),
                    kind: IssueKind::BadFrame,
                    detail: format!(
                        "file holds {} frame(s) but metadata references {}",
                        frames.len(),
                        refs.len()
                    ),
                });
            }
        }

        // 4. Loader and extra-state files: existence checks.
        let mut aux: Vec<String> = Vec::new();
        if let Some(f) = &meta.loader_map.replicated_file {
            aux.push(f.clone());
        }
        aux.extend(meta.loader_map.shards.iter().map(|s| s.file.clone()));
        aux.extend(meta.extra_files.values().cloned());
        for file in aux {
            let path = format!("{prefix}/{file}");
            known.insert(path.clone());
            if present.contains(&path) {
                report.files_checked += 1;
            } else {
                report.issues.push(ScrubIssue {
                    path,
                    kind: IssueKind::MissingFile,
                    detail: "referenced by loader/extra map but absent".into(),
                });
            }
        }
    }

    // 5. Everything else under the prefix is an orphan.
    for path in &present {
        if !known.contains(path) {
            report.issues.push(ScrubIssue {
                path: path.clone(),
                kind: IssueKind::Orphan,
                detail: "file not referenced by checkpoint metadata".into(),
            });
        }
    }
    Ok(report)
}

/// Scrub every step under a job root, ascending. Uncommitted steps are
/// included (marked in the report) so `bcpctl scrub` can name torn debris;
/// callers decide whether those count as failures.
pub fn scrub_tree(backend: &DynBackend, root: &str) -> Result<Vec<ScrubReport>> {
    let mgr = CheckpointManager::new(backend.clone(), root);
    let mut reports = Vec::new();
    for c in mgr.list()? {
        reports.push(scrub_step(backend, &c.prefix, c.step)?);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::{BasicMeta, ByteMeta, ShardMeta, TensorShardEntry};
    use bcp_storage::MemoryBackend;
    use bcp_tensor::DType;
    use bytes::Bytes;
    use std::sync::Arc;

    /// Build a minimal real checkpoint: one shard, one frame file, valid
    /// metadata, committed marker.
    fn build_checkpoint(backend: &DynBackend, root: &str, step: u64) -> (String, String) {
        let prefix = format!("{root}/step_{step}");
        let shard = ShardMeta { fqn: "w".into(), offsets: vec![0, 0], lengths: vec![2, 4] };
        let payload: Vec<u8> = (0..32).collect(); // 8 elements × f32
        let (frame, payload_off) = crate::format::encode_frame(&shard, DType::F32, &payload);
        backend.write(&format!("{prefix}/model_0.bin"), frame.freeze()).unwrap();
        let mut meta = GlobalMetadata::new("ddp", step, "TP=1,DP=1,PP=1", 1);
        meta.tensor_map.entry("w".into()).or_default().push(TensorShardEntry {
            shard,
            basic: BasicMeta::contiguous(DType::F32, vec![2, 4], "cpu"),
            byte: ByteMeta { file: "model_0.bin".into(), offset: payload_off, length: 32 },
        });
        backend.write(&format!("{prefix}/{METADATA_FILE}"), Bytes::from(meta.to_bytes())).unwrap();
        backend.write(&format!("{prefix}/{COMPLETE_MARKER}"), Bytes::from_static(b"ok")).unwrap();
        (prefix.clone(), format!("{prefix}/model_0.bin"))
    }

    fn mem() -> DynBackend {
        Arc::new(MemoryBackend::new())
    }

    #[test]
    fn clean_checkpoint_scrubs_clean() {
        let b = mem();
        let (prefix, _) = build_checkpoint(&b, "job", 10);
        let r = scrub_step(&b, &prefix, 10).unwrap();
        assert!(r.is_clean(), "unexpected issues: {:?}", r.issues);
        assert!(r.committed);
        assert_eq!(r.frames_verified, 1);
        assert!(r.files_checked >= 2);
    }

    #[test]
    fn bit_flip_in_shard_is_named() {
        let b = mem();
        let (prefix, shard_file) = build_checkpoint(&b, "job", 10);
        let mut bytes = b.read(&shard_file).unwrap().to_vec();
        let payload_at = bytes.len() - 10; // inside the payload, before CRC
        bytes[payload_at] ^= 0x01;
        b.write(&shard_file, Bytes::from(bytes)).unwrap();
        let r = scrub_step(&b, &prefix, 10).unwrap();
        assert!(!r.is_clean());
        let defect = &r.defects()[0];
        assert_eq!(defect.kind, IssueKind::BadFrame);
        assert_eq!(defect.path, shard_file, "defect must name the corrupt shard file");
    }

    #[test]
    fn header_fqn_flip_is_caught_despite_valid_crc() {
        let b = mem();
        let (prefix, shard_file) = build_checkpoint(&b, "job", 10);
        let mut bytes = b.read(&shard_file).unwrap().to_vec();
        // Flip a bit inside the frame's fqn bytes (offset 6 = after magic +
        // fqn_len): the payload CRC still verifies, only the header lies.
        bytes[6] ^= 0x01;
        b.write(&shard_file, Bytes::from(bytes)).unwrap();
        let r = scrub_step(&b, &prefix, 10).unwrap();
        assert!(!r.is_clean());
        assert!(r
            .defects()
            .iter()
            .any(|i| i.kind == IssueKind::BadFrame && i.detail.contains("header")));
    }

    #[test]
    fn missing_shard_file_is_reported() {
        let b = mem();
        let (prefix, shard_file) = build_checkpoint(&b, "job", 10);
        b.delete(&shard_file).unwrap();
        let r = scrub_step(&b, &prefix, 10).unwrap();
        assert!(r
            .defects()
            .iter()
            .any(|i| i.kind == IssueKind::MissingFile && i.path == shard_file));
    }

    #[test]
    fn byte_meta_offset_mismatch_is_reported() {
        let b = mem();
        let (prefix, _) = build_checkpoint(&b, "job", 10);
        let meta_path = format!("{prefix}/{METADATA_FILE}");
        let mut meta = GlobalMetadata::from_bytes(&b.read(&meta_path).unwrap()).unwrap();
        meta.tensor_map.get_mut("w").unwrap()[0].byte.offset += 1;
        b.write(&meta_path, Bytes::from(meta.to_bytes())).unwrap();
        let r = scrub_step(&b, &prefix, 10).unwrap();
        assert!(r.defects().iter().any(|i| i.kind == IssueKind::RangeMismatch));
    }

    #[test]
    fn corrupt_metadata_is_reported() {
        let b = mem();
        let (prefix, _) = build_checkpoint(&b, "job", 10);
        b.write(&format!("{prefix}/{METADATA_FILE}"), Bytes::from_static(b"{ not json")).unwrap();
        let r = scrub_step(&b, &prefix, 10).unwrap();
        assert!(r.defects().iter().any(|i| i.kind == IssueKind::BadMetadata));
    }

    #[test]
    fn orphans_are_benign() {
        let b = mem();
        let (prefix, _) = build_checkpoint(&b, "job", 10);
        b.write(&format!("{prefix}/stray.tmp"), Bytes::from_static(b"junk")).unwrap();
        let r = scrub_step(&b, &prefix, 10).unwrap();
        assert!(r.is_clean());
        assert!(r.issues.iter().any(|i| i.kind == IssueKind::Orphan));
    }

    #[test]
    fn tree_scrub_covers_all_steps() {
        let b = mem();
        build_checkpoint(&b, "job", 10);
        let (_, f20) = build_checkpoint(&b, "job", 20);
        let mut bytes = b.read(&f20).unwrap().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // corrupt the stored CRC
        b.write(&f20, Bytes::from(bytes)).unwrap();
        let reports = scrub_tree(&b, "job").unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports[0].is_clean());
        assert!(!reports[1].is_clean());
    }
}
