//! # bcp-core — the ByteCheckpoint system (the paper's contribution)
//!
//! A unified checkpointing system for large-foundation-model training:
//! parallelism-agnostic checkpoint representation with automatic load-time
//! resharding, a generic save/load workflow over multiple training
//! frameworks and storage backends, and full-stack I/O optimizations.
//!
//! Module map (paper section → module):
//!
//! | Paper | Module |
//! |---|---|
//! | §3.2 ShardMeta/BasicMeta/ByteMeta, global metadata file | [`metadata`] |
//! | §3.2 irregular tensor decomposition (Fig. 7) | [`decompose`] |
//! | §3.1/§3.3 planners per framework | [`planner`] |
//! | §4.1 balanced dedup, redundant-read elimination, plan cache | [`planner::balance`], [`planner::cache`] |
//! | §4.2 fully asynchronous engine pipelines | [`engine`] |
//! | §3.3 load-time resharding workflow (Fig. 8) | [`workflow`] |
//! | §3.3/Fig. 9 dataloader resharding | [`loader_reshard`] |
//! | Appendix B integrity barrier, retries, failure logging | [`integrity`] |
//! | Appendix B stage-level crash injection for recovery tests | [`fault`] |
//! | tiered recovery: peer-replicated hot-tier checkpoints | [`hottier`] |
//! | §3.1 `bytecheckpoint.save` / `.load` API (Fig. 5) | [`api`] |
//! | §5.3 persisted per-step telemetry artifacts | [`telemetry`] |
//! | Appendix F safetensors export | [`export`] |
//! | §2.1/§5.1 retention & garbage collection | [`manager`] |
//! | Appendix B crash-consistency exploration | [`crashsim`] |
//! | Appendix B offline verification (`bcpctl scrub`) | [`scrub`] |
//!
//! The real execution engine moves real bytes through real storage backends;
//! the same planner outputs also drive `bcp-sim`'s paper-scale virtual-time
//! experiments.

pub mod api;
pub mod crashsim;
pub mod decompose;
pub mod engine;
pub mod export;
pub mod fault;
pub mod format;
pub mod hottier;
pub mod integrity;
pub mod loader_reshard;
pub mod manager;
pub mod metadata;
pub mod plan;
pub mod planner;
pub mod registry;
pub mod scrub;
pub mod spec;
pub mod telemetry;
pub mod workflow;

pub use api::{
    Checkpointer, CheckpointerBuilder, LoadOutcome, LoadRequest, LoaderTarget, SaveRequest,
};
pub use crashsim::{enumerate_crash_states, CrashState};
pub use fault::{FaultHook, FaultPlan};
#[allow(deprecated)]
pub use hottier::HotTierOptions;
pub use hottier::{HotTierConfig, TierBreakdown};
pub use manager::QuarantinedStep;
pub use metadata::{BasicMeta, ByteMeta, GlobalMetadata, ShardMeta, TensorShardEntry};
pub use plan::{Category, ReadItem, SavePlan, WriteItem};
pub use registry::BackendRegistry;
pub use scrub::{scrub_step, scrub_tree, IssueKind, ScrubIssue, ScrubReport};
pub use spec::{JobQuota, JobSpec, Session};

/// Errors surfaced by the checkpointing system.
#[derive(Debug)]
pub enum BcpError {
    /// Storage backend failure (after retries were exhausted, if any).
    Storage(bcp_storage::StorageError),
    /// Collective communication failure (peer death, timeout).
    Collective(bcp_collectives::CollectiveError),
    /// Tensor-level failure (shape/dtype mismatch during resharding).
    Tensor(bcp_tensor::TensorError),
    /// The checkpoint is malformed or incomplete.
    Corrupt(String),
    /// The requested state cannot be satisfied from the checkpoint (e.g. a
    /// target shard has no overlapping saved data).
    Missing(String),
    /// Planner-level validation failure (framework/parallelism mismatch).
    Plan(String),
    /// An injected crash fired at a pipeline stage (fault-injection tests).
    Crashed {
        /// Rank that "died".
        rank: usize,
        /// Pipeline stage at which the crash fired.
        stage: String,
    },
}

impl std::fmt::Display for BcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BcpError::Storage(e) => write!(f, "storage: {e}"),
            BcpError::Collective(e) => write!(f, "collective: {e}"),
            BcpError::Tensor(e) => write!(f, "tensor: {e}"),
            BcpError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            BcpError::Missing(m) => write!(f, "missing data: {m}"),
            BcpError::Plan(m) => write!(f, "planning error: {m}"),
            BcpError::Crashed { rank, stage } => {
                write!(f, "injected crash: rank {rank} died at {stage}")
            }
        }
    }
}

impl std::error::Error for BcpError {}

impl From<bcp_storage::StorageError> for BcpError {
    fn from(e: bcp_storage::StorageError) -> Self {
        BcpError::Storage(e)
    }
}

impl From<bcp_collectives::CollectiveError> for BcpError {
    fn from(e: bcp_collectives::CollectiveError) -> Self {
        BcpError::Collective(e)
    }
}

impl From<bcp_tensor::TensorError> for BcpError {
    fn from(e: bcp_tensor::TensorError) -> Self {
        BcpError::Tensor(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, BcpError>;
