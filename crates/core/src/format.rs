//! Storage-file wire format.
//!
//! Each rank's storage file is a sequence of self-describing *frames*, one
//! per saved `ShardMeta`. The global metadata's [`crate::ByteMeta`] points
//! directly at frame *payloads*, so loading never parses frame headers on
//! the fast path — but the headers plus per-frame CRC32 make every file
//! independently verifiable and recoverable (integrity, Appendix B).
//!
//! Frame layout (little-endian):
//!
//! ```text
//! magic   u32   0xB1C7_0001 ("BCP frame v1")
//! fqn_len u16   | fqn bytes (UTF-8)
//! dtype   u8    (DType::name index)
//! rank    u8    number of dims
//! offsets u64 × rank
//! lengths u64 × rank
//! paylen  u64
//! payload ...   raw little-endian element bytes
//! crc32   u32   over the payload
//! ```

use crate::metadata::ShardMeta;
use crate::{BcpError, Result};
use bcp_tensor::checksum::crc32;
use bcp_tensor::DType;
use bytes::{BufMut, Bytes, BytesMut};

/// Frame magic number.
pub const FRAME_MAGIC: u32 = 0xB1C7_0001;

const DTYPE_CODES: [DType; 9] = [
    DType::F64,
    DType::F32,
    DType::F16,
    DType::BF16,
    DType::I64,
    DType::I32,
    DType::I16,
    DType::U8,
    DType::Bool,
];

fn dtype_code(dt: DType) -> u8 {
    DTYPE_CODES.iter().position(|&d| d == dt).expect("all dtypes listed") as u8
}

fn dtype_from_code(c: u8) -> Option<DType> {
    DTYPE_CODES.get(c as usize).copied()
}

/// Byte length of a frame header for `shard` (everything before the
/// payload). Planning uses this to precompute [`crate::ByteMeta`] offsets
/// without serializing anything.
pub fn header_len(shard: &ShardMeta) -> usize {
    4 + 2 + shard.fqn.len() + 1 + 1 + 16 * shard.offsets.len() + 8
}

/// Total byte length of a frame with the given payload size.
pub fn frame_len(shard: &ShardMeta, payload_len: usize) -> usize {
    header_len(shard) + payload_len + 4
}

/// A parsed frame (borrowing nothing; payload is a cheap `Bytes` slice).
#[derive(Debug, Clone)]
pub struct Frame {
    /// Which shard the payload belongs to.
    pub shard: ShardMeta,
    /// Element dtype of the payload.
    pub dtype: DType,
    /// Raw little-endian element bytes.
    pub payload: Bytes,
}

/// Serialize a frame *header* only (everything before the payload) for a
/// payload of `payload_len` bytes. The single-copy save path writes the
/// header and the (pooled) payload as separate gather segments, so the
/// payload bytes are never copied into a frame buffer.
pub fn encode_frame_header(shard: &ShardMeta, dtype: DType, payload_len: usize) -> BytesMut {
    let rank = shard.offsets.len();
    let mut buf = BytesMut::with_capacity(header_len(shard));
    buf.put_u32_le(FRAME_MAGIC);
    buf.put_u16_le(shard.fqn.len() as u16);
    buf.put_slice(shard.fqn.as_bytes());
    buf.put_u8(dtype_code(dtype));
    buf.put_u8(rank as u8);
    for &o in &shard.offsets {
        buf.put_u64_le(o as u64);
    }
    for &l in &shard.lengths {
        buf.put_u64_le(l as u64);
    }
    buf.put_u64_le(payload_len as u64);
    debug_assert_eq!(buf.len(), header_len(shard));
    buf
}

/// Serialize one frame; returns the byte offset of the payload *within the
/// returned buffer* (the engine adds the file-level base offset to build the
/// [`crate::ByteMeta`]).
pub fn encode_frame(shard: &ShardMeta, dtype: DType, payload: &[u8]) -> (BytesMut, u64) {
    let mut buf = encode_frame_header(shard, dtype, payload.len());
    buf.reserve(payload.len() + 4);
    let payload_offset = buf.len() as u64;
    buf.put_slice(payload);
    buf.put_u32_le(crc32(payload));
    (buf, payload_offset)
}

/// Parse all frames in a storage file, verifying CRCs. This is the recovery
/// path (and what the conformance/corruption tests exercise); normal loads
/// use `ByteMeta` offsets.
pub fn decode_frames(data: &Bytes) -> Result<Vec<Frame>> {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    let err = |m: String| BcpError::Corrupt(m);
    let need = |pos: usize, n: usize, len: usize| -> Result<()> {
        if pos + n > len {
            Err(BcpError::Corrupt(format!("truncated frame at byte {pos}")))
        } else {
            Ok(())
        }
    };
    while pos < data.len() {
        need(pos, 8, data.len())?;
        let magic = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
        if magic != FRAME_MAGIC {
            return Err(err(format!("bad frame magic {magic:#x} at byte {pos}")));
        }
        pos += 4;
        let fqn_len = u16::from_le_bytes(data[pos..pos + 2].try_into().unwrap()) as usize;
        pos += 2;
        need(pos, fqn_len + 2, data.len())?;
        let fqn = std::str::from_utf8(&data[pos..pos + fqn_len])
            .map_err(|_| err("frame fqn is not UTF-8".into()))?
            .to_string();
        pos += fqn_len;
        let dtype = dtype_from_code(data[pos]).ok_or_else(|| err("bad dtype code".into()))?;
        let rank = data[pos + 1] as usize;
        pos += 2;
        need(pos, 16 * rank + 8, data.len())?;
        let mut offsets = Vec::with_capacity(rank);
        let mut lengths = Vec::with_capacity(rank);
        for _ in 0..rank {
            offsets.push(u64::from_le_bytes(data[pos..pos + 8].try_into().unwrap()) as usize);
            pos += 8;
        }
        for _ in 0..rank {
            lengths.push(u64::from_le_bytes(data[pos..pos + 8].try_into().unwrap()) as usize);
            pos += 8;
        }
        let paylen64 = u64::from_le_bytes(data[pos..pos + 8].try_into().unwrap());
        pos += 8;
        // A forged paylen near u64::MAX would wrap `paylen + 4` and sail
        // past the bounds check; reject anything larger than the bytes
        // actually present before converting to usize.
        if paylen64 > (data.len() - pos) as u64 {
            return Err(err(format!("frame payload length {paylen64} exceeds file at byte {pos}")));
        }
        let paylen = paylen64 as usize;
        need(pos, paylen + 4, data.len())?;
        let payload = data.slice(pos..pos + paylen);
        pos += paylen;
        let stored_crc = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
        pos += 4;
        if crc32(&payload) != stored_crc {
            return Err(err(format!("CRC mismatch for {fqn}")));
        }
        frames.push(Frame { shard: ShardMeta { fqn, offsets, lengths }, dtype, payload });
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(fqn: &str) -> ShardMeta {
        ShardMeta { fqn: fqn.into(), offsets: vec![2, 0], lengths: vec![1, 4] }
    }

    #[test]
    fn frame_round_trip() {
        let payload: Vec<u8> = (0..16).collect();
        let (buf, off) = encode_frame(&meta("layers.0.w"), DType::F32, &payload);
        assert_eq!(&buf[off as usize..off as usize + 16], &payload[..]);
        let frames = decode_frames(&buf.freeze()).unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].shard, meta("layers.0.w"));
        assert_eq!(frames[0].dtype, DType::F32);
        assert_eq!(&frames[0].payload[..], &payload[..]);
    }

    #[test]
    fn multiple_frames_concatenate() {
        let mut file = BytesMut::new();
        for i in 0..3 {
            let payload = vec![i as u8; 8];
            let (buf, _) = encode_frame(&meta(&format!("t{i}")), DType::I64, &payload);
            file.extend_from_slice(&buf);
        }
        let frames = decode_frames(&file.freeze()).unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[2].shard.fqn, "t2");
    }

    #[test]
    fn corruption_detected() {
        let (buf, off) = encode_frame(&meta("x"), DType::U8, &[1, 2, 3, 4]);
        let mut corrupted = buf.to_vec();
        corrupted[off as usize + 1] ^= 0xFF;
        let err = decode_frames(&Bytes::from(corrupted)).unwrap_err();
        assert!(matches!(err, BcpError::Corrupt(m) if m.contains("CRC")));
    }

    #[test]
    fn truncation_detected() {
        let (buf, _) = encode_frame(&meta("x"), DType::U8, &[1, 2, 3, 4]);
        let truncated = Bytes::copy_from_slice(&buf[..buf.len() - 6]);
        assert!(matches!(decode_frames(&truncated), Err(BcpError::Corrupt(_))));
    }

    #[test]
    fn forged_huge_paylen_is_corrupt_not_panic() {
        // Craft a valid header, then overwrite paylen with u64::MAX: the
        // old `paylen + 4` bounds check wrapped and the slice panicked.
        let m = meta("x");
        let (buf, _) = encode_frame(&m, DType::U8, &[1, 2, 3, 4]);
        let mut forged = buf.to_vec();
        let paylen_at = header_len(&m) - 8;
        forged[paylen_at..paylen_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = decode_frames(&Bytes::from(forged)).unwrap_err();
        assert!(matches!(err, BcpError::Corrupt(m) if m.contains("payload length")));
    }

    #[test]
    fn bad_magic_detected() {
        let data = Bytes::from_static(&[0u8; 32]);
        assert!(matches!(decode_frames(&data), Err(BcpError::Corrupt(m)) if m.contains("magic")));
    }

    #[test]
    fn header_len_matches_encoder() {
        let payload = vec![9u8; 12];
        let m = meta("layers.17.mlp.down.weight");
        let (buf, off) = encode_frame(&m, DType::BF16, &payload);
        assert_eq!(off as usize, header_len(&m));
        assert_eq!(buf.len(), frame_len(&m, payload.len()));
    }

    #[test]
    fn all_dtypes_round_trip_codes() {
        for dt in DTYPE_CODES {
            assert_eq!(dtype_from_code(dtype_code(dt)), Some(dt));
        }
        assert_eq!(dtype_from_code(100), None);
    }
}
