//! Irregular tensor decomposition (§3.2, Fig. 7).
//!
//! ZeRO-style sharding flattens tensors and slices them 1-D, so a rank's
//! slice "often cannot be directly represented using n-dimensional shapes
//! and offsets". The alternatives are (a) all-gather the shards into full
//! tensors before saving — DCP's approach, which blocks training on
//! communication — or (b) ByteCheckpoint's approach: decompose the flat
//! range into a *sequence of regular boxes* and store one `ShardMeta` per
//! box, at zero communication cost.
//!
//! The decomposition of a flat range over a row-major shape is recursive:
//! a partial head row (recursing into the row's own shape), a body of whole
//! rows, and a partial tail row. The resulting boxes are contiguous and
//! in-order in the flat address space — which is what lets the save engine
//! serialize them as consecutive slices of the local 1-D shard without any
//! data movement.

use crate::metadata::ShardMeta;
use bcp_topology::ShardSpec;

/// An n-D box as (offsets, lengths).
pub type Box_ = (Vec<usize>, Vec<usize>);

/// Decompose the flat element range `[start, start+len)` of a row-major
/// tensor with `shape` into regular boxes, in flat order.
pub fn decompose_flat_range(shape: &[usize], start: usize, len: usize) -> Vec<Box_> {
    let mut out = Vec::new();
    decompose_into(shape, start, len, &mut out);
    out
}

fn decompose_into(shape: &[usize], start: usize, len: usize, out: &mut Vec<Box_>) {
    if len == 0 {
        return;
    }
    let total: usize = shape.iter().product();
    assert!(start + len <= total, "range [{start}, {}) exceeds {total}", start + len);
    if shape.is_empty() {
        out.push((vec![], vec![]));
        return;
    }
    if shape.len() == 1 {
        out.push((vec![start], vec![len]));
        return;
    }
    let row: usize = shape[1..].iter().product();
    if row == 0 {
        return; // zero-sized inner dims: nothing to store
    }
    let mut start = start;
    let mut len = len;
    // Head: partial first row.
    let head_in_row = start % row;
    if head_in_row != 0 {
        let head_len = (row - head_in_row).min(len);
        let r0 = start / row;
        let mut sub = Vec::new();
        decompose_into(&shape[1..], head_in_row, head_len, &mut sub);
        for (off, lenv) in sub {
            let mut o = Vec::with_capacity(shape.len());
            let mut l = Vec::with_capacity(shape.len());
            o.push(r0);
            l.push(1);
            o.extend(off);
            l.extend(lenv);
            out.push((o, l));
        }
        start += head_len;
        len -= head_len;
    }
    if len == 0 {
        return;
    }
    // Body: whole rows.
    let n_rows = len / row;
    if n_rows > 0 {
        let r0 = start / row;
        let mut o = Vec::with_capacity(shape.len());
        let mut l = Vec::with_capacity(shape.len());
        o.push(r0);
        l.push(n_rows);
        for &d in &shape[1..] {
            o.push(0);
            l.push(d);
        }
        out.push((o, l));
        start += n_rows * row;
        len -= n_rows * row;
    }
    // Tail: partial last row.
    if len > 0 {
        let r0 = start / row;
        let mut sub = Vec::new();
        decompose_into(&shape[1..], 0, len, &mut sub);
        for (off, lenv) in sub {
            let mut o = Vec::with_capacity(shape.len());
            let mut l = Vec::with_capacity(shape.len());
            o.push(r0);
            l.push(1);
            o.extend(off);
            l.extend(lenv);
            out.push((o, l));
        }
    }
}

/// The `ShardMeta`s representing a rank's local shard of `fqn` under `spec`.
///
/// Regular specs yield one entry; flat specs are decomposed (multiple
/// `ShardMeta` entries represent a single irregular shard, as the paper
/// describes). Returned in local-storage order: the k-th entry's payload is
/// the next `numel` elements of the local shard's flat storage.
pub fn shard_metas(fqn: &str, global_shape: &[usize], spec: &ShardSpec) -> Vec<ShardMeta> {
    let boxes: Vec<Box_> = match spec {
        ShardSpec::Replicated | ShardSpec::Grid(_) => {
            let (off, len) = spec.grid_box(global_shape).expect("valid grid spec");
            vec![(off, len)]
        }
        ShardSpec::Flat { offset, length } => decompose_flat_range(global_shape, *offset, *length),
        ShardSpec::FlatOfBox { box_offsets, box_lengths, offset, length } => {
            // Decompose within the sub-box, then translate to global coords.
            decompose_flat_range(box_lengths, *offset, *length)
                .into_iter()
                .map(|(off, len)| {
                    let o = off.iter().zip(box_offsets).map(|(a, b)| a + b).collect();
                    (o, len)
                })
                .collect()
        }
    };
    boxes
        .into_iter()
        .filter(|(_, l)| l.iter().product::<usize>() > 0)
        .map(|(offsets, lengths)| ShardMeta { fqn: fqn.to_string(), offsets, lengths })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_tensor::layout::{contiguous_strides, numel, ravel_index};
    use proptest::prelude::*;

    /// Flat index of the first element of a box.
    fn box_start(shape: &[usize], b: &Box_) -> usize {
        ravel_index(&b.0, shape)
    }

    #[test]
    fn paper_fig7_tensor_b() {
        // Tensor B: shape (3, 2); rank 0 holds flat [0, 3): decomposes into
        // the full first row plus the first element of the second row.
        let boxes = decompose_flat_range(&[3, 2], 0, 3);
        assert_eq!(boxes, vec![(vec![0, 0], vec![1, 2]), (vec![1, 0], vec![1, 1])]);
        // Rank 1 holds [3, 6): second element of row 1 plus the whole row 2.
        let boxes = decompose_flat_range(&[3, 2], 3, 3);
        assert_eq!(boxes, vec![(vec![1, 1], vec![1, 1]), (vec![2, 0], vec![1, 2])]);
    }

    #[test]
    fn whole_tensor_is_one_box() {
        assert_eq!(decompose_flat_range(&[3, 4], 0, 12), vec![(vec![0, 0], vec![3, 4])]);
        assert_eq!(decompose_flat_range(&[7], 0, 7), vec![(vec![0], vec![7])]);
    }

    #[test]
    fn empty_range_is_empty() {
        assert!(decompose_flat_range(&[3, 4], 5, 0).is_empty());
    }

    #[test]
    fn three_dims_head_body_tail() {
        // shape (2,3,4): range [5, 21): head = rest of row (0,1) [1..4],
        // then rows (0,2), (1,0..2) as bodies/full rows, tail (1,2)[0..1].
        let boxes = decompose_flat_range(&[2, 3, 4], 5, 16);
        // Verify exact partition rather than exact box list.
        let shape = [2usize, 3, 4];
        let mut covered = vec![false; numel(&shape)];
        for (off, len) in &boxes {
            for i in 0..numel(len) {
                let local = bcp_tensor::layout::unravel_index(i, len);
                let global: Vec<usize> = local.iter().zip(off).map(|(a, b)| a + b).collect();
                let flat = ravel_index(&global, &shape);
                assert!(!covered[flat], "double cover at {flat}");
                covered[flat] = true;
            }
        }
        let covered_idx: Vec<usize> =
            covered.iter().enumerate().filter(|(_, &c)| c).map(|(i, _)| i).collect();
        assert_eq!(covered_idx, (5..21).collect::<Vec<_>>());
    }

    #[test]
    fn boxes_are_in_flat_order() {
        let shape = [4usize, 5, 3];
        let boxes = decompose_flat_range(&shape, 7, 40);
        let mut cursor = 7usize;
        for b in &boxes {
            assert_eq!(box_start(&shape, b), cursor, "boxes must be consecutive in flat order");
            cursor += numel(&b.1);
        }
        assert_eq!(cursor, 47);
    }

    #[test]
    fn box_count_is_small() {
        // The decomposition should produce at most ~2*rank+1 boxes, not one
        // per element ("slightly increases the metadata size").
        let shape = [100usize, 100];
        let boxes = decompose_flat_range(&shape, 37, 5000);
        assert!(boxes.len() <= 3, "2-D range needs at most head+body+tail, got {}", boxes.len());
        let shape3 = [10usize, 10, 10];
        let boxes = decompose_flat_range(&shape3, 123, 456);
        assert!(boxes.len() <= 5, "3-D should stay small, got {}", boxes.len());
    }

    #[test]
    fn shard_metas_for_grid_and_flat() {
        let metas = shard_metas("w", &[4, 4], &ShardSpec::dim(0, 2, 1));
        assert_eq!(metas.len(), 1);
        assert_eq!(metas[0].offsets, vec![2, 0]);

        let metas = shard_metas("w", &[3, 2], &ShardSpec::Flat { offset: 0, length: 3 });
        assert_eq!(metas.len(), 2);

        // FlatOfBox: TP shard rows 2..4 of (4,6), flat range [3, 9) of it.
        let metas = shard_metas(
            "w",
            &[4, 6],
            &ShardSpec::FlatOfBox {
                box_offsets: vec![2, 0],
                box_lengths: vec![2, 6],
                offset: 3,
                length: 6,
            },
        );
        // Head: row 0 of box cols 3..6 => global (2, 3..6); body/tail: row 1
        // cols 0..3 => global (3, 0..3).
        assert_eq!(metas.len(), 2);
        assert_eq!((metas[0].offsets.clone(), metas[0].lengths.clone()), (vec![2, 3], vec![1, 3]));
        assert_eq!((metas[1].offsets.clone(), metas[1].lengths.clone()), (vec![3, 0], vec![1, 3]));
    }

    #[test]
    fn zero_length_boxes_filtered() {
        let metas = shard_metas("w", &[4], &ShardSpec::Flat { offset: 4, length: 0 });
        assert!(metas.is_empty());
    }

    proptest! {
        /// Decomposition exactly partitions the range, stays in flat order,
        /// and produces O(rank) boxes per "level".
        #[test]
        fn decomposition_partitions_any_range(
            dims in proptest::collection::vec(1usize..7, 1..4),
            frac_start in 0.0f64..1.0,
            frac_len in 0.0f64..1.0,
        ) {
            let total: usize = dims.iter().product();
            let start = ((total as f64) * frac_start) as usize % total.max(1);
            let len = (((total - start) as f64) * frac_len).ceil() as usize;
            let boxes = decompose_flat_range(&dims, start, len);
            let mut cursor = start;
            for b in &boxes {
                prop_assert_eq!(ravel_index(&b.0, &dims), cursor);
                // Box must fit in bounds.
                for (d, (&o, &l)) in b.0.iter().zip(&b.1).enumerate() {
                    prop_assert!(o + l <= dims[d]);
                }
                cursor += numel(&b.1);
            }
            prop_assert_eq!(cursor, start + len);
            // Bound: head and tail each contribute ≤ (rank-1) boxes, body 1.
            prop_assert!(boxes.len() <= 2 * dims.len() + 1);
            let _ = contiguous_strides(&dims);
        }
    }
}
