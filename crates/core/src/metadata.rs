//! The decoupled checkpoint representation (§3.2, Fig. 6).
//!
//! "For model and optimizer state representation, we separate each tensor
//! shard's metadata from its numerical values and consolidate all the
//! metadata into one global file." A tensor shard's metadata has three
//! parts: [`BasicMeta`] (runtime recovery info), [`ShardMeta`] (position in
//! the global tensor), and [`ByteMeta`] (location in a storage file). The
//! [`GlobalMetadata`] file carries the `TensorShardToBasicByteMap` and the
//! `LoaderShardToByteMap`.

use bcp_tensor::DType;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Position of a (regular) tensor shard in its global tensor: "an index
/// tuple (fqn, nD_offsets, nD_lengths)". Irregular shards are decomposed
/// into several of these (one [`TensorShardEntry`] each).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShardMeta {
    /// Fully qualified tensor name.
    pub fqn: String,
    /// Offsets of the shard along each global axis.
    pub offsets: Vec<usize>,
    /// Lengths of the shard along each global axis.
    pub lengths: Vec<usize>,
}

impl ShardMeta {
    /// Number of elements in this shard.
    pub fn numel(&self) -> usize {
        self.lengths.iter().product()
    }

    /// Intersection with another box of the same tensor, as global offsets
    /// and lengths.
    pub fn intersect(&self, other: &ShardMeta) -> Option<(Vec<usize>, Vec<usize>)> {
        bcp_tensor::layout::intersect_boxes(
            &self.offsets,
            &self.lengths,
            &other.offsets,
            &other.lengths,
        )
    }
}

/// "Essential information of individual tensor shards such as stride and
/// device, critical for recovering the runtime state."
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BasicMeta {
    /// Element dtype.
    pub dtype: DType,
    /// Global tensor shape (the shard's parent).
    pub global_shape: Vec<usize>,
    /// Row-major strides of the global tensor, in elements.
    pub stride: Vec<usize>,
    /// Device string of the worker that saved the shard (e.g. `"cuda:3"`).
    pub device: String,
    /// Whether the tensor required gradients at save time.
    pub requires_grad: bool,
}

impl BasicMeta {
    /// Construct for a tensor with contiguous row-major layout.
    pub fn contiguous(
        dtype: DType,
        global_shape: Vec<usize>,
        device: impl Into<String>,
    ) -> BasicMeta {
        let stride = bcp_tensor::layout::contiguous_strides(&global_shape);
        BasicMeta { dtype, global_shape, stride, device: device.into(), requires_grad: true }
    }
}

/// "The byte start offset and length of each tensor shard within the
/// storage file."
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ByteMeta {
    /// Storage file (relative to the checkpoint prefix).
    pub file: String,
    /// Byte offset of the shard payload within the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub length: u64,
}

/// One saved tensor shard: the triple the TensorShardToBasicByteMap stores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorShardEntry {
    /// Position of the shard in the global tensor.
    pub shard: ShardMeta,
    /// Runtime recovery info.
    pub basic: BasicMeta,
    /// Storage location.
    pub byte: ByteMeta,
}

/// Entry of the LoaderShardToByteMap: which file holds which dataloader
/// shard's states.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoaderShardFileEntry {
    /// DP rank whose reader states the file holds.
    pub dp_rank: usize,
    /// Read worker index within the rank.
    pub worker: usize,
    /// File path relative to the checkpoint prefix.
    pub file: String,
}

/// Dataloader section of the global metadata: replicated states saved once
/// (by global rank 0's loader), sharded states in individual files.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LoaderMap {
    /// File holding the replicated dataloader state, if a dataloader was
    /// checkpointed.
    pub replicated_file: Option<String>,
    /// Per-(dp, worker) sharded state files.
    pub shards: Vec<LoaderShardFileEntry>,
}

/// The global metadata file (Fig. 6): one per checkpoint, consolidating all
/// tensor metadata plus the dataloader and extra-state file indexes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalMetadata {
    /// Format version for forward compatibility.
    pub version: u32,
    /// Framework that produced the checkpoint (informational — loading is
    /// framework-agnostic by design).
    pub framework: String,
    /// Global training step of the snapshot.
    pub step: u64,
    /// Source parallelism description (informational).
    pub source_parallelism: String,
    /// Number of ranks that participated in the save.
    pub source_world_size: usize,
    /// TensorShardToBasicByteMap: fqn → saved shard entries.
    pub tensor_map: BTreeMap<String, Vec<TensorShardEntry>>,
    /// LoaderShardToByteMap.
    pub loader_map: LoaderMap,
    /// Per-rank extra-state files (packed byte objects).
    pub extra_files: BTreeMap<usize, String>,
}

/// One overlap-query hit: the saved entry and the intersection box
/// `(offsets, lengths)` in global coordinates.
pub type OverlapHit<'a> = (&'a TensorShardEntry, (Vec<usize>, Vec<usize>));

/// Current metadata format version.
pub const METADATA_VERSION: u32 = 1;

/// File name of the global metadata within a checkpoint prefix.
pub const METADATA_FILE: &str = "global_metadata.json";

/// File name of the commit marker written after the integrity barrier.
pub const COMPLETE_MARKER: &str = "COMPLETE";

impl GlobalMetadata {
    /// Empty metadata for a new checkpoint.
    pub fn new(framework: &str, step: u64, parallelism: &str, world: usize) -> GlobalMetadata {
        GlobalMetadata {
            version: METADATA_VERSION,
            framework: framework.to_string(),
            step,
            source_parallelism: parallelism.to_string(),
            source_world_size: world,
            tensor_map: BTreeMap::new(),
            loader_map: LoaderMap::default(),
            extra_files: BTreeMap::new(),
        }
    }

    /// Serialize to the storage representation (JSON).
    pub fn to_bytes(&self) -> Vec<u8> {
        serde_json::to_vec_pretty(self).expect("metadata serializes")
    }

    /// Parse from storage bytes.
    pub fn from_bytes(data: &[u8]) -> Result<GlobalMetadata, String> {
        let meta: GlobalMetadata =
            serde_json::from_slice(data).map_err(|e| format!("metadata parse error: {e}"))?;
        if meta.version != METADATA_VERSION {
            return Err(format!("unsupported metadata version {}", meta.version));
        }
        Ok(meta)
    }

    /// All saved shards of `fqn` that overlap the query box, with the
    /// intersection of each (Fig. 8 step 2: "identifying matching segments
    /// between the saved tensor shards and the sharding specification of new
    /// shards").
    pub fn overlapping_shards<'a>(
        &'a self,
        fqn: &str,
        offsets: &[usize],
        lengths: &[usize],
    ) -> Vec<OverlapHit<'a>> {
        let Some(entries) = self.tensor_map.get(fqn) else {
            return Vec::new();
        };
        let query = ShardMeta {
            fqn: fqn.to_string(),
            offsets: offsets.to_vec(),
            lengths: lengths.to_vec(),
        };
        entries.iter().filter_map(|e| e.shard.intersect(&query).map(|i| (e, i))).collect()
    }

    /// Total payload bytes across all tensor shards.
    pub fn total_tensor_bytes(&self) -> u64 {
        self.tensor_map.values().flatten().map(|e| e.byte.length).sum()
    }

    /// Sanity-check invariants: every entry's box fits its global shape and
    /// byte length matches the element count. Returns the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (fqn, entries) in &self.tensor_map {
            for e in entries {
                if e.shard.fqn != *fqn {
                    return Err(format!("{fqn}: entry carries mismatched fqn {}", e.shard.fqn));
                }
                if !bcp_tensor::layout::box_in_bounds(
                    &e.basic.global_shape,
                    &e.shard.offsets,
                    &e.shard.lengths,
                ) {
                    return Err(format!("{fqn}: shard box out of bounds"));
                }
                let expect = (e.shard.numel() * e.basic.dtype.size()) as u64;
                if e.byte.length != expect {
                    return Err(format!(
                        "{fqn}: byte length {} != expected {expect}",
                        e.byte.length
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_meta() -> GlobalMetadata {
        let mut m = GlobalMetadata::new("megatron", 100, "TP=2,DP=1,PP=1", 2);
        for i in 0..2usize {
            m.tensor_map.entry("w".into()).or_default().push(TensorShardEntry {
                shard: ShardMeta { fqn: "w".into(), offsets: vec![2 * i, 0], lengths: vec![2, 4] },
                basic: BasicMeta::contiguous(DType::F32, vec![4, 4], format!("cuda:{i}")),
                byte: ByteMeta { file: format!("model_{i}.bin"), offset: 16, length: 32 },
            });
        }
        m
    }

    #[test]
    fn round_trip_through_bytes() {
        let m = sample_meta();
        let bytes = m.to_bytes();
        let back = GlobalMetadata::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut m = sample_meta();
        m.version = 99;
        let err = GlobalMetadata::from_bytes(&m.to_bytes()).unwrap_err();
        assert!(err.contains("version"));
        assert!(GlobalMetadata::from_bytes(b"not json").is_err());
    }

    #[test]
    fn overlap_query_finds_matching_segments() {
        let m = sample_meta();
        // Query the middle two rows: overlaps both shards, one row each.
        let hits = m.overlapping_shards("w", &[1, 0], &[2, 4]);
        assert_eq!(hits.len(), 2);
        let (_, (off0, len0)) = &hits[0];
        assert_eq!((off0.as_slice(), len0.as_slice()), ([1, 0].as_slice(), [1, 4].as_slice()));
        // Query outside any shard: nothing. Unknown fqn: nothing.
        assert!(m.overlapping_shards("w", &[4, 0], &[0, 4]).is_empty());
        assert!(m.overlapping_shards("nope", &[0, 0], &[1, 1]).is_empty());
    }

    #[test]
    fn validation_catches_corruption() {
        let mut m = sample_meta();
        assert!(m.validate().is_ok());
        m.tensor_map.get_mut("w").unwrap()[0].byte.length = 31;
        assert!(m.validate().unwrap_err().contains("byte length"));
        let mut m2 = sample_meta();
        m2.tensor_map.get_mut("w").unwrap()[1].shard.offsets = vec![3, 0];
        assert!(m2.validate().unwrap_err().contains("out of bounds"));
    }

    #[test]
    fn total_bytes_sums_payloads() {
        assert_eq!(sample_meta().total_tensor_bytes(), 64);
    }
}
