//! Stage-level crash injection (Appendix B's failure model, made testable).
//!
//! The paper's integrity argument is that "the failure of any single worker"
//! at *any* point of the save pipeline must never produce a checkpoint that
//! loads as valid. To test that claim exhaustively, the save/load workflows
//! are instrumented with named fault points — `"save/plan"`,
//! `"save/upload"`, `"save/commit"`, … — and a [`FaultPlan`] declares which
//! rank "dies" at which stage. When a planned crash fires, the hook marks
//! the rank failed in its communicator (so peers' collectives abort with
//! `PeerFailed` instead of hanging) and the pipeline returns
//! [`crate::BcpError::Crashed`], modelling a process that is simply gone.
//!
//! Production code runs with an empty plan: every fault point is a single
//! `is_empty` check.

use crate::{BcpError, Result};
use std::sync::Arc;

/// Named fault points of the save pipeline, in execution order. The matrix
/// test in `crates/core/tests/recovery.rs` kills a rank at each of these and
/// asserts the torn step never commits.
pub const SAVE_STAGES: &[&str] = &[
    "save/plan",
    "save/capture",
    "save/serialize",
    "save/upload",
    "save/loader",
    "save/extra",
    "save/barrier",
    "save/metadata",
    "save/commit",
];

/// Named fault points of the load pipeline, in execution order.
pub const LOAD_STAGES: &[&str] = &["load/metadata", "load/read", "load/barrier"];

/// A declarative crash schedule: which rank dies at which pipeline stage.
///
/// ```
/// use bcp_core::fault::FaultPlan;
/// let plan = FaultPlan::new().kill(2, "save/upload").kill(0, "save/commit");
/// assert!(plan.matches(2, "save/upload"));
/// assert!(!plan.matches(2, "save/commit"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    kills: Vec<(usize, String)>,
}

impl FaultPlan {
    /// An empty plan: no injected crashes.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule `rank` to crash when it reaches `stage`.
    pub fn kill(mut self, rank: usize, stage: impl Into<String>) -> FaultPlan {
        self.kills.push((rank, stage.into()));
        self
    }

    /// Whether this plan kills `rank` at `stage`.
    pub fn matches(&self, rank: usize, stage: &str) -> bool {
        self.kills.iter().any(|(r, s)| *r == rank && s == stage)
    }

    /// Whether no crashes are scheduled.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
    }
}

/// A per-rank handle over a [`FaultPlan`], carried through the pipelines.
///
/// `check(stage)` is called at every fault point; when the plan schedules a
/// crash there for this rank, the `on_kill` callback fires first (the
/// workflow uses it to mark the rank failed in its communicator) and the
/// call returns [`BcpError::Crashed`].
#[derive(Clone)]
pub struct FaultHook {
    plan: FaultPlan,
    rank: usize,
    on_kill: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl FaultHook {
    /// A hook that never fires — for direct engine calls and benches.
    pub fn inert(rank: usize) -> FaultHook {
        FaultHook { plan: FaultPlan::new(), rank, on_kill: None }
    }

    /// A hook over `plan` for `rank`.
    pub fn new(plan: FaultPlan, rank: usize) -> FaultHook {
        FaultHook { plan, rank, on_kill: None }
    }

    /// Attach a callback fired when a crash triggers, before the error
    /// returns (e.g. declare this rank dead to its peers).
    pub fn with_on_kill(mut self, f: impl Fn() + Send + Sync + 'static) -> FaultHook {
        self.on_kill = Some(Arc::new(f));
        self
    }

    /// Fault point: returns `Err(Crashed)` when the plan kills this rank at
    /// `stage`, otherwise `Ok(())`.
    pub fn check(&self, stage: &str) -> Result<()> {
        if self.plan.is_empty() || !self.plan.matches(self.rank, stage) {
            return Ok(());
        }
        if let Some(f) = &self.on_kill {
            f();
        }
        Err(BcpError::Crashed { rank: self.rank, stage: stage.to_string() })
    }
}

impl std::fmt::Debug for FaultHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultHook")
            .field("plan", &self.plan)
            .field("rank", &self.rank)
            .field("on_kill", &self.on_kill.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn plan_matches_only_scheduled_kills() {
        let plan = FaultPlan::new().kill(2, "save/upload").kill(0, "save/commit");
        assert!(plan.matches(2, "save/upload"));
        assert!(plan.matches(0, "save/commit"));
        assert!(!plan.matches(2, "save/commit"));
        assert!(!plan.matches(1, "save/upload"));
        assert!(FaultPlan::new().is_empty() && !plan.is_empty());
    }

    #[test]
    fn hook_fires_on_kill_then_errors() {
        let fired = Arc::new(AtomicUsize::new(0));
        let counter = fired.clone();
        let hook =
            FaultHook::new(FaultPlan::new().kill(3, "save/upload"), 3).with_on_kill(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        hook.check("save/plan").unwrap();
        assert_eq!(fired.load(Ordering::Relaxed), 0);
        let err = hook.check("save/upload").unwrap_err();
        assert!(matches!(err, BcpError::Crashed { rank: 3, ref stage } if stage == "save/upload"));
        assert_eq!(fired.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn inert_hook_never_fires() {
        let hook = FaultHook::inert(0);
        for stage in SAVE_STAGES.iter().chain(LOAD_STAGES) {
            hook.check(stage).unwrap();
        }
    }
}
