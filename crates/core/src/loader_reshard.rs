//! Dataloader state loading and resharding (§3.3, Fig. 9) wired into the
//! checkpoint workflow.
//!
//! The holders of dataloader state (workers whose non-DP coordinates are 0)
//! read the replicated file plus every sharded file listed in the
//! LoaderShardToByteMap, reshard them to the new (dp, workers) shape via
//! `bcp-dataloader`'s merge/re-stripe algorithm, and keep their own shard.

use crate::metadata::GlobalMetadata;
use crate::{BcpError, Result};
use bcp_dataloader::{reshard_states, LoaderReplicatedState, LoaderShardState};
use bcp_storage::DynBackend;

/// Load and reshard dataloader states for `target_dp_rank` under the target
/// `(new_dp, new_workers_per_rank)` shape. Returns `None` when the
/// checkpoint carries no dataloader state.
pub fn load_loader_states(
    backend: &DynBackend,
    prefix: &str,
    meta: &GlobalMetadata,
    new_dp: usize,
    new_workers_per_rank: usize,
    target_dp_rank: usize,
) -> Result<Option<(LoaderReplicatedState, LoaderShardState)>> {
    let Some(rep_file) = &meta.loader_map.replicated_file else {
        return Ok(None);
    };
    let rep_bytes = backend.read(&format!("{prefix}/{rep_file}"))?;
    let replicated = LoaderReplicatedState::unpack(&rep_bytes).ok_or_else(|| {
        BcpError::Corrupt(format!("unreadable replicated loader file {rep_file}"))
    })?;

    // Reassemble each old DP rank's shard from its per-worker files.
    let mut old: Vec<LoaderShardState> = (0..replicated.dp_size)
        .map(|dp| LoaderShardState { dp_rank: dp, readers: Vec::new(), next_worker: 0 })
        .collect();
    let mut entries = meta.loader_map.shards.clone();
    entries.sort_by_key(|e| (e.dp_rank, e.worker));
    for entry in &entries {
        let data = backend.read(&format!("{prefix}/{}", entry.file))?;
        let piece = LoaderShardState::unpack(&data).ok_or_else(|| {
            BcpError::Corrupt(format!("unreadable loader shard file {}", entry.file))
        })?;
        if entry.dp_rank >= old.len() {
            return Err(BcpError::Corrupt(format!(
                "loader shard file {} references dp rank {} outside dp size {}",
                entry.file, entry.dp_rank, replicated.dp_size
            )));
        }
        old[entry.dp_rank].next_worker = piece.next_worker;
        old[entry.dp_rank].readers.extend(piece.readers);
    }
    for (dp, shard) in old.iter().enumerate() {
        if shard.readers.len() != replicated.workers_per_rank {
            return Err(BcpError::Corrupt(format!(
                "dp rank {dp} has {} reader files, expected {}",
                shard.readers.len(),
                replicated.workers_per_rank
            )));
        }
    }

    let (new_replicated, mut new_shards) =
        reshard_states(&replicated, &old, new_dp, new_workers_per_rank);
    if target_dp_rank >= new_shards.len() {
        return Err(BcpError::Plan(format!(
            "target dp rank {target_dp_rank} outside new dp size {new_dp}"
        )));
    }
    Ok(Some((new_replicated, new_shards.swap_remove(target_dp_rank))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_dataloader::{DataSource, Dataloader};
    use bcp_storage::MemoryBackend;
    use bytes::Bytes;
    use std::sync::Arc;

    fn replicated(dp: usize, workers: usize) -> LoaderReplicatedState {
        LoaderReplicatedState {
            workers_per_rank: workers,
            dp_size: dp,
            sources: vec![DataSource { name: "web".into(), ratio: 1.0, seed: 5 }],
            context_window: 4096,
        }
    }

    /// Store loader files the way the save workflow does.
    fn store(
        backend: &DynBackend,
        prefix: &str,
        rep: &LoaderReplicatedState,
        shards: &[LoaderShardState],
    ) -> GlobalMetadata {
        let mut meta = GlobalMetadata::new("fsdp", 0, "TP=1,DP=2,PP=1", rep.dp_size);
        backend
            .write(&format!("{prefix}/loader/replicated.json"), Bytes::from(rep.pack()))
            .unwrap();
        meta.loader_map.replicated_file = Some("loader/replicated.json".into());
        for shard in shards {
            for (w, reader) in shard.readers.iter().enumerate() {
                let single = LoaderShardState {
                    dp_rank: shard.dp_rank,
                    readers: vec![reader.clone()],
                    next_worker: shard.next_worker,
                };
                let file = format!("loader/dp{}_w{w}.json", shard.dp_rank);
                backend.write(&format!("{prefix}/{file}"), Bytes::from(single.pack())).unwrap();
                meta.loader_map.shards.push(crate::metadata::LoaderShardFileEntry {
                    dp_rank: shard.dp_rank,
                    worker: w,
                    file,
                });
            }
        }
        meta
    }

    #[test]
    fn round_trip_same_shape_is_exact() {
        let backend: DynBackend = Arc::new(MemoryBackend::new());
        let rep = replicated(2, 2);
        let mut loaders: Vec<Dataloader> =
            (0..2).map(|r| Dataloader::new(rep.clone(), r)).collect();
        for dl in &mut loaders {
            for _ in 0..4 {
                dl.next_batch();
            }
        }
        let shards: Vec<LoaderShardState> = loaders.iter().map(|l| l.shard_state()).collect();
        let meta = store(&backend, "ckpt", &rep, &shards);

        let (new_rep, shard1) =
            load_loader_states(&backend, "ckpt", &meta, 2, 2, 1).unwrap().unwrap();
        assert_eq!(new_rep, rep);
        assert_eq!(shard1, shards[1]);
        // Resumed loader continues identically to the uninterrupted one.
        let mut resumed = Dataloader::from_states(new_rep, shard1);
        assert_eq!(resumed.next_batch(), loaders[1].next_batch());
    }

    #[test]
    fn resharded_loading_changes_shape() {
        let backend: DynBackend = Arc::new(MemoryBackend::new());
        let rep = replicated(2, 2);
        let mut loaders: Vec<Dataloader> =
            (0..2).map(|r| Dataloader::new(rep.clone(), r)).collect();
        for dl in &mut loaders {
            for _ in 0..3 {
                dl.next_batch();
            }
        }
        let shards: Vec<LoaderShardState> = loaders.iter().map(|l| l.shard_state()).collect();
        let meta = store(&backend, "ckpt", &rep, &shards);
        let (new_rep, shard) =
            load_loader_states(&backend, "ckpt", &meta, 4, 1, 3).unwrap().unwrap();
        assert_eq!(new_rep.dp_size, 4);
        assert_eq!(new_rep.workers_per_rank, 1);
        assert_eq!(shard.dp_rank, 3);
        assert_eq!(shard.readers.len(), 1);
    }

    #[test]
    fn missing_loader_section_returns_none() {
        let backend: DynBackend = Arc::new(MemoryBackend::new());
        let meta = GlobalMetadata::new("ddp", 0, "TP=1,DP=1,PP=1", 1);
        assert!(load_loader_states(&backend, "ckpt", &meta, 1, 1, 0).unwrap().is_none());
    }

    #[test]
    fn corrupt_loader_file_detected() {
        let backend: DynBackend = Arc::new(MemoryBackend::new());
        let rep = replicated(1, 1);
        let dl = Dataloader::new(rep.clone(), 0);
        let meta = store(&backend, "ckpt", &rep, &[dl.shard_state()]);
        backend.write("ckpt/loader/dp0_w0.json", Bytes::from_static(b"garbage")).unwrap();
        assert!(matches!(
            load_loader_states(&backend, "ckpt", &meta, 1, 1, 0),
            Err(BcpError::Corrupt(_))
        ));
    }
}
