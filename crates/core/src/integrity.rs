//! Integrity guarantee: retries, failure logging, and the commit protocol
//! (Appendix B).
//!
//! "A complete checkpoint consists of multiple files stored by different
//! workers. The failure of any single worker can corrupt the entire
//! checkpoint." The protections:
//!
//! * Upload/download **retries** with failure logging "which records the
//!   exact stage of failure within the checkpoint saving/loading pipelines".
//! * An **asynchronous tree-based barrier** (provided by
//!   `bcp-collectives`' tree backend) after which the coordinator commits
//!   the checkpoint by writing the global metadata file and a `COMPLETE`
//!   marker. Loads refuse checkpoints without the marker, so a torn save is
//!   never observed as a valid checkpoint.

use crate::metadata::COMPLETE_MARKER;
use crate::{BcpError, Result};
use bcp_storage::{DynBackend, StorageError};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One logged failure inside a checkpoint pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureRecord {
    /// Rank where the failure happened.
    pub rank: usize,
    /// Pipeline stage name (e.g. `"save/upload"`).
    pub stage: String,
    /// Path involved, when applicable.
    pub path: Option<String>,
    /// Attempt number (1-based).
    pub attempt: u32,
    /// Error description.
    pub error: String,
    /// Whether a retry followed.
    pub retried: bool,
}

/// Collects [`FailureRecord`]s across engine threads.
#[derive(Debug, Default)]
pub struct FailureLog {
    records: Mutex<Vec<FailureRecord>>,
}

impl FailureLog {
    /// Empty log.
    pub fn new() -> FailureLog {
        FailureLog::default()
    }

    /// Append a record.
    pub fn log(&self, rec: FailureRecord) {
        self.records.lock().push(rec);
    }

    /// Snapshot of everything logged.
    pub fn records(&self) -> Vec<FailureRecord> {
        self.records.lock().clone()
    }

    /// Number of failures logged.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Whether nothing failed.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }
}

/// Retry policy for storage operations.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum attempts (1 = no retry).
    pub max_attempts: u32,
    /// Base backoff; attempt `k` waits `base * k`.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 3, backoff: Duration::from_millis(10) }
    }
}

/// Run a storage operation under the retry policy, logging every failure
/// with its pipeline stage.
pub fn with_retries<T>(
    policy: RetryPolicy,
    log: &FailureLog,
    rank: usize,
    stage: &str,
    path: Option<&str>,
    mut op: impl FnMut() -> std::result::Result<T, StorageError>,
) -> Result<T> {
    let mut attempt = 0;
    loop {
        attempt += 1;
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                let retried = attempt < policy.max_attempts;
                log.log(FailureRecord {
                    rank,
                    stage: stage.to_string(),
                    path: path.map(str::to_string),
                    attempt,
                    error: e.to_string(),
                    retried,
                });
                if !retried {
                    return Err(BcpError::Storage(e));
                }
                std::thread::sleep(policy.backoff * attempt);
            }
        }
    }
}

/// Commit a checkpoint: write the `COMPLETE` marker under `prefix`.
/// Called by the coordinator after the integrity barrier has confirmed that
/// every rank finished its uploads.
pub fn commit_checkpoint(backend: &DynBackend, prefix: &str) -> Result<()> {
    backend
        .write(&format!("{prefix}/{COMPLETE_MARKER}"), bytes::Bytes::from_static(b"ok"))
        .map_err(BcpError::Storage)
}

/// Whether a checkpoint at `prefix` was committed.
pub fn is_committed(backend: &DynBackend, prefix: &str) -> Result<bool> {
    backend
        .exists(&format!("{prefix}/{COMPLETE_MARKER}"))
        .map_err(BcpError::Storage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_storage::{FlakyBackend, MemoryBackend, StorageBackend};
    use bcp_storage::flaky::FailureMode;
    use std::sync::Arc;

    #[test]
    fn retries_absorb_transient_failures_and_log_them() {
        let flaky = FlakyBackend::new(Arc::new(MemoryBackend::new()), FailureMode::Writes, 2);
        let log = FailureLog::new();
        let data = bytes::Bytes::from_static(b"payload");
        let result = with_retries(
            RetryPolicy { max_attempts: 3, backoff: Duration::from_millis(1) },
            &log,
            5,
            "save/upload",
            Some("f.bin"),
            || flaky.write("f.bin", data.clone()),
        );
        assert!(result.is_ok());
        assert_eq!(log.len(), 2);
        let recs = log.records();
        assert_eq!(recs[0].stage, "save/upload");
        assert_eq!(recs[0].rank, 5);
        assert!(recs[0].retried);
        assert_eq!(recs[1].attempt, 2);
    }

    #[test]
    fn exhausted_retries_surface_the_error() {
        let flaky = FlakyBackend::new(Arc::new(MemoryBackend::new()), FailureMode::Writes, 10);
        let log = FailureLog::new();
        let result = with_retries(
            RetryPolicy { max_attempts: 2, backoff: Duration::from_millis(1) },
            &log,
            0,
            "save/upload",
            None,
            || flaky.write("g.bin", bytes::Bytes::new()),
        );
        assert!(matches!(result, Err(BcpError::Storage(_))));
        let recs = log.records();
        assert_eq!(recs.len(), 2);
        assert!(!recs[1].retried);
    }

    #[test]
    fn commit_marker_round_trip() {
        let backend: DynBackend = Arc::new(MemoryBackend::new());
        assert!(!is_committed(&backend, "ckpt/step_5").unwrap());
        commit_checkpoint(&backend, "ckpt/step_5").unwrap();
        assert!(is_committed(&backend, "ckpt/step_5").unwrap());
    }
}
