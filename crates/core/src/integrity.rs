//! Integrity guarantee: retry policies, failure logging, failover
//! accounting, and the commit protocol (Appendix B).
//!
//! "A complete checkpoint consists of multiple files stored by different
//! workers. The failure of any single worker can corrupt the entire
//! checkpoint." The protections:
//!
//! * Upload/download **retries** under a configurable [`RetryPolicy`] —
//!   exponential backoff with deterministic jitter, an attempt cap, and an
//!   optional overall deadline — with failure logging "which records the
//!   exact stage of failure within the checkpoint saving/loading
//!   pipelines". Retries sleep through a [`RetryClock`] so tests can verify
//!   the exact backoff schedule on a virtual clock ([`TestClock`]).
//! * **Failover accounting**: when a [`FallbackBackend`] trips over to its
//!   secondary tier after retry exhaustion, [`record_failovers`] routes the
//!   downgrade into the [`FailureLog`] and the `MetricsSink` so operators
//!   see the degradation, not just the eventual success.
//! * An **asynchronous tree-based barrier** (provided by
//!   `bcp-collectives`' tree backend) after which the coordinator commits
//!   the checkpoint by writing the global metadata file and a `COMPLETE`
//!   marker. Loads refuse checkpoints without the marker, so a torn save is
//!   never observed as a valid checkpoint; `CheckpointManager::gc_torn`
//!   reclaims the partial files on restart.

use crate::metadata::COMPLETE_MARKER;
use crate::{BcpError, Result};
use bcp_monitor::{MetricRecord, MetricsSink};
use bcp_storage::fallback::FallbackBackend;
use bcp_storage::{DynBackend, StorageError};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One logged failure inside a checkpoint pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureRecord {
    /// Rank where the failure happened.
    pub rank: usize,
    /// Pipeline stage name (e.g. `"save/upload"`).
    pub stage: String,
    /// Path involved, when applicable.
    pub path: Option<String>,
    /// Attempt number (1-based).
    pub attempt: u32,
    /// Error description.
    pub error: String,
    /// Whether a retry followed.
    pub retried: bool,
}

/// Collects [`FailureRecord`]s across engine threads.
#[derive(Debug, Default)]
pub struct FailureLog {
    records: Mutex<Vec<FailureRecord>>,
}

impl FailureLog {
    /// Empty log.
    pub fn new() -> FailureLog {
        FailureLog::default()
    }

    /// Append a record.
    pub fn log(&self, rec: FailureRecord) {
        self.records.lock().push(rec);
    }

    /// Snapshot of everything logged.
    pub fn records(&self) -> Vec<FailureRecord> {
        self.records.lock().clone()
    }

    /// Number of failures logged.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// Whether nothing failed.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }
}

/// Retry policy for storage operations: exponential backoff with
/// deterministic jitter, capped attempts, and an optional overall deadline.
///
/// The wait before retry `k` (1-based) is
/// `min(base * multiplier^(k-1), max_backoff)`, scaled down by up to
/// `jitter` (a fraction in `[0, 1]`) using a hash of `(rank, stage, path,
/// attempt)` — deterministic per call site, de-correlated across ranks so a
/// thundering herd of retries spreads out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Growth factor applied per retry (1.0 = fixed delay).
    pub multiplier: f64,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
    /// Fraction of each backoff randomized away (0.0 = fully deterministic).
    pub jitter: f64,
    /// Overall budget: give up early if the next backoff would exceed it.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(10),
            multiplier: 2.0,
            max_backoff: Duration::from_secs(1),
            jitter: 0.25,
            deadline: None,
        }
    }
}

impl RetryPolicy {
    /// No retries: fail on the first error.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// Fixed delay between attempts (the seed's original behaviour).
    pub fn fixed(max_attempts: u32, delay: Duration) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base: delay,
            multiplier: 1.0,
            max_backoff: delay,
            jitter: 0.0,
            deadline: None,
        }
    }

    /// Exponential backoff doubling from `base`, default cap and jitter.
    pub fn exponential(max_attempts: u32, base: Duration) -> RetryPolicy {
        RetryPolicy { max_attempts, base, ..RetryPolicy::default() }
    }

    /// Same policy with an overall deadline.
    pub fn with_deadline(self, deadline: Duration) -> RetryPolicy {
        RetryPolicy { deadline: Some(deadline), ..self }
    }

    /// Same policy with a different jitter fraction (clamped to `[0, 1]`).
    pub fn with_jitter(self, jitter: f64) -> RetryPolicy {
        RetryPolicy { jitter: jitter.clamp(0.0, 1.0), ..self }
    }

    /// Same policy with a different per-backoff cap.
    pub fn with_max_backoff(self, max_backoff: Duration) -> RetryPolicy {
        RetryPolicy { max_backoff, ..self }
    }

    /// The wait before retrying after failed attempt `attempt` (1-based).
    /// Deterministic in `(self, attempt, seed)`.
    pub fn backoff_for(&self, attempt: u32, seed: u64) -> Duration {
        let exp = self.base.as_secs_f64() * self.multiplier.powi(attempt.saturating_sub(1) as i32);
        let capped = exp.min(self.max_backoff.as_secs_f64());
        let scale = if self.jitter > 0.0 {
            let u = splitmix64(seed.wrapping_add(attempt as u64)) as f64 / (u64::MAX as f64 + 1.0);
            1.0 - self.jitter.clamp(0.0, 1.0) * u
        } else {
            1.0
        };
        Duration::from_secs_f64((capped * scale).max(0.0))
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the retry call site, the jitter seed.
fn site_seed(rank: usize, stage: &str, path: Option<&str>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(&rank.to_le_bytes());
    eat(stage.as_bytes());
    eat(path.unwrap_or("").as_bytes());
    h
}

/// Clock abstraction for the retry loop, so tests can verify the exact
/// backoff schedule without real sleeping.
pub trait RetryClock: Send + Sync {
    /// Monotonic elapsed time since some fixed origin.
    fn now(&self) -> Duration;
    /// Wait for `d`.
    fn sleep(&self, d: Duration);
}

/// The real clock: `Instant` + `thread::sleep`.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl Default for SystemClock {
    fn default() -> SystemClock {
        SystemClock { origin: Instant::now() }
    }
}

impl RetryClock for SystemClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A virtual clock: `sleep` advances `now` instantly and records the
/// requested duration, so tests assert the exact backoff schedule.
#[derive(Debug, Default)]
pub struct TestClock {
    now: Mutex<Duration>,
    sleeps: Mutex<Vec<Duration>>,
}

impl TestClock {
    /// A virtual clock at t = 0 with no sleeps recorded.
    pub fn new() -> TestClock {
        TestClock::default()
    }

    /// Advance virtual time without recording a sleep (models work taking
    /// time between attempts).
    pub fn advance(&self, d: Duration) {
        *self.now.lock() += d;
    }

    /// Every sleep requested so far, in order.
    pub fn sleeps(&self) -> Vec<Duration> {
        self.sleeps.lock().clone()
    }
}

impl RetryClock for TestClock {
    fn now(&self) -> Duration {
        *self.now.lock()
    }

    fn sleep(&self, d: Duration) {
        *self.now.lock() += d;
        self.sleeps.lock().push(d);
    }
}

/// Run a storage operation under the retry policy on the real clock.
pub fn with_retries<T>(
    policy: RetryPolicy,
    log: &FailureLog,
    rank: usize,
    stage: &str,
    path: Option<&str>,
    op: impl FnMut() -> std::result::Result<T, StorageError>,
) -> Result<T> {
    with_retries_on(&SystemClock::default(), policy, log, rank, stage, path, op)
}

/// Run a storage operation under the retry policy, logging every failure
/// with its pipeline stage. Gives up when the attempt cap is reached or
/// when the next backoff would overrun the policy's deadline (measured on
/// `clock` from entry to this function).
pub fn with_retries_on<T>(
    clock: &dyn RetryClock,
    policy: RetryPolicy,
    log: &FailureLog,
    rank: usize,
    stage: &str,
    path: Option<&str>,
    mut op: impl FnMut() -> std::result::Result<T, StorageError>,
) -> Result<T> {
    let seed = site_seed(rank, stage, path);
    let start = clock.now();
    let mut attempt = 0;
    loop {
        attempt += 1;
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                let backoff = policy.backoff_for(attempt, seed);
                let within_deadline = policy
                    .deadline
                    .is_none_or(|d| clock.now().saturating_sub(start) + backoff <= d);
                let retried = attempt < policy.max_attempts && within_deadline;
                log.log(FailureRecord {
                    rank,
                    stage: stage.to_string(),
                    path: path.map(str::to_string),
                    attempt,
                    error: e.to_string(),
                    retried,
                });
                if !retried {
                    return Err(BcpError::Storage(e));
                }
                clock.sleep(backoff);
            }
        }
    }
}

/// Stage name under which primary→secondary failovers are logged.
pub const FAILOVER_STAGE: &str = "storage/failover";

/// Wire a [`FallbackBackend`]'s trip event into the failure log and the
/// metrics stream: the downgrade shows up as a [`FailureRecord`] with stage
/// [`FAILOVER_STAGE`] and as a `MetricRecord` of the same name, so both the
/// post-mortem log and live dashboards see the degradation.
pub fn record_failovers(
    backend: &FallbackBackend,
    log: Arc<FailureLog>,
    sink: MetricsSink,
    rank: usize,
) {
    backend.set_observer(Arc::new(move |event| {
        log.log(FailureRecord {
            rank,
            stage: FAILOVER_STAGE.to_string(),
            path: Some(event.path.clone()),
            attempt: event.failures,
            error: format!(
                "primary backend degraded after {} failures; writes now target the fallback tier",
                event.failures
            ),
            retried: true,
        });
        sink.record(MetricRecord {
            name: FAILOVER_STAGE.to_string(),
            rank,
            step: 0,
            duration: Duration::ZERO,
            io_bytes: 0,
            path: Some(event.path.clone()),
        });
    }));
}

/// Commit a checkpoint: write the `COMPLETE` marker under `prefix`.
/// Called by the coordinator after the integrity barrier has confirmed that
/// every rank finished its uploads.
pub fn commit_checkpoint(backend: &DynBackend, prefix: &str) -> Result<()> {
    backend
        .write(&format!("{prefix}/{COMPLETE_MARKER}"), bytes::Bytes::from_static(b"ok"))
        .map_err(BcpError::Storage)
}

/// Whether a checkpoint at `prefix` was committed.
pub fn is_committed(backend: &DynBackend, prefix: &str) -> Result<bool> {
    backend.exists(&format!("{prefix}/{COMPLETE_MARKER}")).map_err(BcpError::Storage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcp_storage::flaky::FailureMode;
    use bcp_storage::{FlakyBackend, MemoryBackend, StorageBackend};
    use std::sync::Arc;

    #[test]
    fn retries_absorb_transient_failures_and_log_them() {
        let flaky = FlakyBackend::new(Arc::new(MemoryBackend::new()), FailureMode::Writes, 2);
        let log = FailureLog::new();
        let data = bytes::Bytes::from_static(b"payload");
        let result = with_retries(
            RetryPolicy::fixed(3, Duration::from_millis(1)),
            &log,
            5,
            "save/upload",
            Some("f.bin"),
            || flaky.write("f.bin", data.clone()),
        );
        assert!(result.is_ok());
        assert_eq!(log.len(), 2);
        let recs = log.records();
        assert_eq!(recs[0].stage, "save/upload");
        assert_eq!(recs[0].rank, 5);
        assert!(recs[0].retried);
        assert_eq!(recs[1].attempt, 2);
    }

    #[test]
    fn exhausted_retries_surface_the_error() {
        let flaky = FlakyBackend::new(Arc::new(MemoryBackend::new()), FailureMode::Writes, 10);
        let log = FailureLog::new();
        let result = with_retries(
            RetryPolicy::fixed(2, Duration::from_millis(1)),
            &log,
            0,
            "save/upload",
            None,
            || flaky.write("g.bin", bytes::Bytes::new()),
        );
        assert!(matches!(result, Err(BcpError::Storage(_))));
        let recs = log.records();
        assert_eq!(recs.len(), 2);
        assert!(!recs[1].retried);
    }

    #[test]
    fn exponential_backoff_schedule_is_exact_on_a_test_clock() {
        let clock = TestClock::new();
        let policy = RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(10),
            multiplier: 2.0,
            max_backoff: Duration::from_secs(1),
            jitter: 0.0,
            deadline: None,
        };
        let log = FailureLog::new();
        let result: Result<()> = with_retries_on(&clock, policy, &log, 0, "s", None, || {
            Err(StorageError::Io("down".into()))
        });
        assert!(result.is_err());
        assert_eq!(
            clock.sleeps(),
            vec![Duration::from_millis(10), Duration::from_millis(20), Duration::from_millis(40),],
            "3 sleeps between 4 attempts, doubling from the base"
        );
        assert_eq!(clock.now(), Duration::from_millis(70));
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn max_backoff_caps_the_schedule() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base: Duration::from_millis(10),
            multiplier: 2.0,
            max_backoff: Duration::from_millis(25),
            jitter: 0.0,
            deadline: None,
        };
        assert_eq!(policy.backoff_for(1, 0), Duration::from_millis(10));
        assert_eq!(policy.backoff_for(2, 0), Duration::from_millis(20));
        assert_eq!(policy.backoff_for(3, 0), Duration::from_millis(25));
        assert_eq!(policy.backoff_for(9, 0), Duration::from_millis(25));
    }

    #[test]
    fn jitter_is_deterministic_per_site_and_varies_across_sites() {
        let policy = RetryPolicy::default().with_jitter(0.5);
        let a1 = policy.backoff_for(1, site_seed(0, "save/upload", Some("f.bin")));
        let a2 = policy.backoff_for(1, site_seed(0, "save/upload", Some("f.bin")));
        let b = policy.backoff_for(1, site_seed(1, "save/upload", Some("f.bin")));
        assert_eq!(a1, a2, "same site, same attempt: identical backoff");
        assert_ne!(a1, b, "different rank: de-correlated backoff");
        // Jitter only shrinks the backoff, never grows it.
        assert!(a1 <= policy.base && b <= policy.base);
        assert!(a1 >= Duration::from_secs_f64(policy.base.as_secs_f64() * 0.5));
    }

    #[test]
    fn deadline_cuts_retries_short() {
        let clock = TestClock::new();
        let policy = RetryPolicy {
            max_attempts: 10,
            base: Duration::from_millis(10),
            multiplier: 2.0,
            max_backoff: Duration::from_secs(1),
            jitter: 0.0,
            deadline: Some(Duration::from_millis(35)),
        };
        let log = FailureLog::new();
        let result: Result<()> = with_retries_on(&clock, policy, &log, 0, "s", None, || {
            Err(StorageError::Io("down".into()))
        });
        assert!(result.is_err());
        // 10ms + 20ms fit in the 35ms budget; the third backoff (40ms)
        // would overrun it, so the loop gives up after 3 attempts.
        assert_eq!(clock.sleeps(), vec![Duration::from_millis(10), Duration::from_millis(20)]);
        let recs = log.records();
        assert_eq!(recs.len(), 3);
        assert!(!recs[2].retried);
    }

    #[test]
    fn failover_is_recorded_in_log_and_metrics() {
        let hub = bcp_monitor::MetricsHub::new();
        let primary: DynBackend = Arc::new(FlakyBackend::new(
            Arc::new(MemoryBackend::new()),
            FailureMode::Writes,
            u32::MAX,
        ));
        let secondary: DynBackend = Arc::new(MemoryBackend::new());
        let fb = FallbackBackend::with_threshold(primary, secondary, 2);
        let log = Arc::new(FailureLog::new());
        record_failovers(&fb, log.clone(), hub.sink(), 7);

        let backend: DynBackend = Arc::new(fb);
        let data = bytes::Bytes::from_static(b"x");
        with_retries(
            RetryPolicy::fixed(3, Duration::from_millis(1)),
            &log,
            7,
            "save/upload",
            Some("f.bin"),
            || backend.write("f.bin", data.clone()),
        )
        .expect("failover absorbs the dead primary");

        let recs = log.records();
        assert!(recs.iter().any(|r| r.stage == FAILOVER_STAGE && r.rank == 7));
        let metrics = hub.records();
        assert!(metrics.iter().any(|m| m.name == FAILOVER_STAGE && m.rank == 7));
    }

    #[test]
    fn commit_marker_round_trip() {
        let backend: DynBackend = Arc::new(MemoryBackend::new());
        assert!(!is_committed(&backend, "ckpt/step_5").unwrap());
        commit_checkpoint(&backend, "ckpt/step_5").unwrap();
        assert!(is_committed(&backend, "ckpt/step_5").unwrap());
    }
}
